#include "openflow/match.hpp"

#include <algorithm>
#include <cstdio>

#include "openflow/flow_key.hpp"

namespace hw::ofp {
namespace {

Result<MacAddress> read_mac(ByteReader& r) {
  auto raw = r.raw(6);
  if (!raw) return raw.error();
  std::array<std::uint8_t, 6> octets{};
  std::copy(raw.value().begin(), raw.value().end(), octets.begin());
  return MacAddress{octets};
}

}  // namespace

Match Match::from_packet(const net::ParsedPacket& p, std::uint16_t in_port) {
  Match m;
  m.wildcards = 0;
  m.in_port = in_port;
  m.dl_src = p.eth.src;
  m.dl_dst = p.eth.dst;
  m.dl_vlan = 0xffff;  // untagged
  m.dl_type = p.eth.ethertype;

  if (p.ip) {
    m.nw_tos = static_cast<std::uint8_t>(p.ip->dscp & 0xfc);
    m.nw_proto = p.ip->protocol;
    m.nw_src = p.ip->src;
    m.nw_dst = p.ip->dst;
    if (p.udp) {
      m.tp_src = p.udp->src_port;
      m.tp_dst = p.udp->dst_port;
    } else if (p.tcp) {
      m.tp_src = p.tcp->src_port;
      m.tp_dst = p.tcp->dst_port;
    } else if (p.icmp) {
      // OF1.0: ICMP type/code go in tp_src/tp_dst.
      m.tp_src = static_cast<std::uint16_t>(p.icmp->type);
      m.tp_dst = p.icmp->code;
    }
  } else if (p.arp) {
    // OF1.0 matches ARP via nw fields: opcode in nw_proto, IPs in nw_src/dst.
    m.nw_proto = static_cast<std::uint8_t>(p.arp->op);
    m.nw_src = p.arp->sender_ip;
    m.nw_dst = p.arp->target_ip;
  }
  return m;
}

Match& Match::with_in_port(std::uint16_t port) {
  in_port = port;
  wildcards &= ~Wildcards::kInPort;
  return *this;
}
Match& Match::with_dl_src(MacAddress mac) {
  dl_src = mac;
  wildcards &= ~Wildcards::kDlSrc;
  return *this;
}
Match& Match::with_dl_dst(MacAddress mac) {
  dl_dst = mac;
  wildcards &= ~Wildcards::kDlDst;
  return *this;
}
Match& Match::with_dl_type(std::uint16_t type) {
  dl_type = type;
  wildcards &= ~Wildcards::kDlType;
  return *this;
}
Match& Match::with_nw_proto(std::uint8_t proto) {
  nw_proto = proto;
  wildcards &= ~Wildcards::kNwProto;
  return *this;
}
Match& Match::with_nw_src(Ipv4Address addr, int prefix_len) {
  nw_src = addr;
  const std::uint32_t ignored = static_cast<std::uint32_t>(32 - prefix_len);
  wildcards = (wildcards & ~Wildcards::kNwSrcMask) |
              (ignored << Wildcards::kNwSrcShift);
  return *this;
}
Match& Match::with_nw_dst(Ipv4Address addr, int prefix_len) {
  nw_dst = addr;
  const std::uint32_t ignored = static_cast<std::uint32_t>(32 - prefix_len);
  wildcards = (wildcards & ~Wildcards::kNwDstMask) |
              (ignored << Wildcards::kNwDstShift);
  return *this;
}
Match& Match::with_tp_src(std::uint16_t port) {
  tp_src = port;
  wildcards &= ~Wildcards::kTpSrc;
  return *this;
}
Match& Match::with_tp_dst(std::uint16_t port) {
  tp_dst = port;
  wildcards &= ~Wildcards::kTpDst;
  return *this;
}

// The three pattern relations all reduce to one operation on the packed
// form: mask both keys with the relevant FlowMask and compare words. This is
// the single matching code path the classifier, the stats filters and the
// strict flow-mod comparisons share.

bool Match::covers(const Match& pkt) const {
  const FlowMask mask = FlowMask::from_wildcards(wildcards);
  return apply(mask, FlowKey::from_match(*this)) ==
         apply(mask, FlowKey::from_match(pkt));
}

bool Match::same_pattern(const Match& other) const {
  if (wildcards != other.wildcards) return false;
  const FlowMask mask = FlowMask::from_wildcards(wildcards);
  return apply(mask, FlowKey::from_match(*this)) ==
         apply(mask, FlowKey::from_match(other));
}

bool Match::overlaps(const Match& other) const {
  // Two patterns overlap iff they agree on the bits both consider relevant:
  // the intersection of the masks. For the nw fields this is exactly "agree
  // under the looser of the two prefixes".
  const FlowMask a = FlowMask::from_wildcards(wildcards);
  const FlowMask b = FlowMask::from_wildcards(other.wildcards);
  FlowMask common;
  for (std::size_t i = 0; i < FlowKey::kWords; ++i) common.w[i] = a.w[i] & b.w[i];
  return apply(common, FlowKey::from_match(*this)) ==
         apply(common, FlowKey::from_match(other));
}

void Match::serialize(ByteWriter& w) const {
  w.u32(wildcards);
  w.u16(in_port);
  w.raw(dl_src.octets().data(), 6);
  w.raw(dl_dst.octets().data(), 6);
  w.u16(dl_vlan);
  w.u8(dl_vlan_pcp);
  w.u8(0);  // pad
  w.u16(dl_type);
  w.u8(nw_tos);
  w.u8(nw_proto);
  w.zeros(2);  // pad
  w.u32(nw_src.value());
  w.u32(nw_dst.value());
  w.u16(tp_src);
  w.u16(tp_dst);
}

Result<Match> Match::parse(ByteReader& r) {
  Match m;
  auto wc = r.u32();
  if (!wc) return wc.error();
  m.wildcards = wc.value() & Wildcards::kAll;
  auto in_port = r.u16();
  if (!in_port) return in_port.error();
  m.in_port = in_port.value();
  auto src = read_mac(r);
  if (!src) return src.error();
  m.dl_src = src.value();
  auto dst = read_mac(r);
  if (!dst) return dst.error();
  m.dl_dst = dst.value();
  auto vlan = r.u16();
  if (!vlan) return vlan.error();
  m.dl_vlan = vlan.value();
  auto pcp = r.u8();
  if (!pcp) return pcp.error();
  m.dl_vlan_pcp = pcp.value();
  if (auto s = r.skip(1); !s.ok()) return s.error();
  auto type = r.u16();
  if (!type) return type.error();
  m.dl_type = type.value();
  auto tos = r.u8();
  if (!tos) return tos.error();
  m.nw_tos = tos.value();
  auto proto = r.u8();
  if (!proto) return proto.error();
  m.nw_proto = proto.value();
  if (auto s = r.skip(2); !s.ok()) return s.error();
  auto nw_src = r.u32();
  if (!nw_src) return nw_src.error();
  m.nw_src = Ipv4Address{nw_src.value()};
  auto nw_dst = r.u32();
  if (!nw_dst) return nw_dst.error();
  m.nw_dst = Ipv4Address{nw_dst.value()};
  auto tp_src = r.u16();
  if (!tp_src) return tp_src.error();
  m.tp_src = tp_src.value();
  auto tp_dst = r.u16();
  if (!tp_dst) return tp_dst.error();
  m.tp_dst = tp_dst.value();
  return m;
}

std::string Match::to_string() const {
  std::string out = "{";
  auto field = [&](const char* name, const std::string& value, bool wildcarded) {
    if (wildcarded) return;
    if (out.size() > 1) out += ", ";
    out += name;
    out += "=";
    out += value;
  };
  field("in_port", std::to_string(in_port), wildcards & Wildcards::kInPort);
  field("dl_src", dl_src.to_string(), wildcards & Wildcards::kDlSrc);
  field("dl_dst", dl_dst.to_string(), wildcards & Wildcards::kDlDst);
  char hex[8];
  std::snprintf(hex, sizeof hex, "0x%04x", dl_type);
  field("dl_type", hex, wildcards & Wildcards::kDlType);
  field("nw_proto", std::to_string(nw_proto), wildcards & Wildcards::kNwProto);
  if (nw_src_ignored_bits() < 32) {
    field("nw_src",
          nw_src.to_string() + "/" + std::to_string(32 - nw_src_ignored_bits()),
          false);
  }
  if (nw_dst_ignored_bits() < 32) {
    field("nw_dst",
          nw_dst.to_string() + "/" + std::to_string(32 - nw_dst_ignored_bits()),
          false);
  }
  field("tp_src", std::to_string(tp_src), wildcards & Wildcards::kTpSrc);
  field("tp_dst", std::to_string(tp_dst), wildcards & Wildcards::kTpDst);
  if (out.size() == 1) out += "*";
  out += "}";
  return out;
}

}  // namespace hw::ofp
