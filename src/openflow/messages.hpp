// OpenFlow 1.0 (wire version 0x01) protocol messages. The secure channel in
// Figure 5 carries exactly these messages between ovs-vswitchd and NOX; our
// Datapath and Controller always serialize/parse through this codec so the
// byte stream is faithful to the spec even for in-process connections.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/match.hpp"
#include "util/bytes.hpp"

namespace hw::ofp {

inline constexpr std::uint8_t kWireVersion = 0x01;
inline constexpr std::size_t kHeaderSize = 8;
inline constexpr std::uint32_t kNoBuffer = 0xffffffff;

enum class MsgType : std::uint8_t {
  Hello = 0,
  Error = 1,
  EchoRequest = 2,
  EchoReply = 3,
  FeaturesRequest = 5,
  FeaturesReply = 6,
  PacketIn = 10,
  FlowRemoved = 11,
  PortStatus = 12,
  PacketOut = 13,
  FlowMod = 14,
  StatsRequest = 16,
  StatsReply = 17,
  BarrierRequest = 18,
  BarrierReply = 19,
};

// ---------------------------------------------------------------------------
// Symmetric / setup messages

struct Hello {};
struct EchoRequest {
  Bytes data;
};
struct EchoReply {
  Bytes data;
};
struct FeaturesRequest {};
struct BarrierRequest {};
struct BarrierReply {};

enum class ErrorType : std::uint16_t {
  HelloFailed = 0,
  BadRequest = 1,
  BadAction = 2,
  FlowModFailed = 3,
};

struct ErrorMsg {
  ErrorType type = ErrorType::BadRequest;
  std::uint16_t code = 0;
  Bytes data;  // at least the header of the offending message
};

/// Physical port description (ofp_phy_port, 48 bytes).
struct PhyPort {
  std::uint16_t port_no = 0;
  MacAddress hw_addr;
  std::string name;  // up to 15 chars + NUL on the wire
  std::uint32_t config = 0;
  std::uint32_t state = 0;
  std::uint32_t curr = 0;
};

struct FeaturesReply {
  std::uint64_t datapath_id = 0;
  std::uint32_t n_buffers = 256;
  std::uint8_t n_tables = 1;
  std::uint32_t capabilities = 0;
  std::uint32_t actions = 0xfff;
  std::vector<PhyPort> ports;
};

// ---------------------------------------------------------------------------
// Asynchronous messages (datapath → controller)

enum class PacketInReason : std::uint8_t { NoMatch = 0, Action = 1 };

struct PacketIn {
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t total_len = 0;
  std::uint16_t in_port = 0;
  PacketInReason reason = PacketInReason::NoMatch;
  Bytes data;  // possibly truncated to miss_send_len
};

enum class FlowRemovedReason : std::uint8_t {
  IdleTimeout = 0,
  HardTimeout = 1,
  Delete = 2,
};

struct FlowRemoved {
  Match match;
  std::uint64_t cookie = 0;
  std::uint16_t priority = 0;
  FlowRemovedReason reason = FlowRemovedReason::IdleTimeout;
  std::uint32_t duration_sec = 0;
  std::uint32_t duration_nsec = 0;
  std::uint16_t idle_timeout = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

enum class PortReason : std::uint8_t { Add = 0, Delete = 1, Modify = 2 };

struct PortStatus {
  PortReason reason = PortReason::Add;
  PhyPort desc;
};

// ---------------------------------------------------------------------------
// Controller → datapath messages

struct PacketOut {
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t in_port = port_no(Port::None);
  ActionList actions;
  Bytes data;  // used when buffer_id == kNoBuffer
};

enum class FlowModCommand : std::uint16_t {
  Add = 0,
  Modify = 1,
  ModifyStrict = 2,
  Delete = 3,
  DeleteStrict = 4,
};

struct FlowModFlags {
  static constexpr std::uint16_t kSendFlowRem = 1 << 0;
  static constexpr std::uint16_t kCheckOverlap = 1 << 1;
};

struct FlowMod {
  Match match;
  std::uint64_t cookie = 0;
  FlowModCommand command = FlowModCommand::Add;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint16_t priority = 0x8000;
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t out_port = port_no(Port::None);  // filter for DELETE
  std::uint16_t flags = 0;
  ActionList actions;
};

// ---------------------------------------------------------------------------
// Statistics

enum class StatsType : std::uint16_t {
  Desc = 0,
  Flow = 1,
  Aggregate = 2,
  Table = 3,
  Port = 4,
};

struct FlowStatsRequest {
  Match match;          // filter
  std::uint8_t table_id = 0xff;
  std::uint16_t out_port = port_no(Port::None);
};

struct FlowStatsEntry {
  std::uint8_t table_id = 0;
  Match match;
  std::uint32_t duration_sec = 0;
  std::uint32_t duration_nsec = 0;
  std::uint16_t priority = 0;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint64_t cookie = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  ActionList actions;
};

struct PortStatsRequest {
  std::uint16_t port_no = 0xffff;  // OFPP_NONE = all ports
};

struct PortStatsEntry {
  std::uint16_t port_no = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;
};

struct AggregateStatsReplyBody {
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::uint32_t flow_count = 0;
};

struct DescStats {
  std::string mfr_desc = "Homework project";
  std::string hw_desc = "simulated datapath";
  std::string sw_desc = "hw_ofp";
  std::string serial_num = "0";
  std::string dp_desc = "Homework home router";
};

struct StatsRequest {
  StatsType type = StatsType::Desc;
  std::variant<std::monostate, FlowStatsRequest, PortStatsRequest> body;
};

/// OFPSF_REPLY_MORE: further STATS_REPLY messages follow for the same xid.
inline constexpr std::uint16_t kStatsReplyMore = 0x0001;

struct StatsReply {
  StatsType type = StatsType::Desc;
  std::uint16_t flags = 0;  // kStatsReplyMore on all but the last fragment
  std::variant<std::monostate, DescStats, std::vector<FlowStatsEntry>,
               AggregateStatsReplyBody, std::vector<PortStatsEntry>>
      body;
};

// ---------------------------------------------------------------------------

using Message =
    std::variant<Hello, ErrorMsg, EchoRequest, EchoReply, FeaturesRequest,
                 FeaturesReply, PacketIn, FlowRemoved, PortStatus, PacketOut,
                 FlowMod, StatsRequest, StatsReply, BarrierRequest, BarrierReply>;

/// A framed message: header xid + payload variant.
struct Envelope {
  std::uint32_t xid = 0;
  Message msg;
};

/// Serializes header + body.
Bytes encode(const Envelope& env);
/// Parses one complete message (the full buffer must be exactly one message).
Result<Envelope> decode(std::span<const std::uint8_t> buf);
/// Peeks the total length of the message starting at `buf` (for stream
/// reassembly); returns 0 if fewer than kHeaderSize bytes are available.
std::size_t peek_length(std::span<const std::uint8_t> buf);

MsgType type_of(const Message& msg);
const char* to_string(MsgType t);

}  // namespace hw::ofp
