#include "openflow/flow_key.hpp"

#include <cstdio>

namespace hw::ofp {
namespace {

MacAddress mac_from_bits(std::uint64_t bits) {
  std::array<std::uint8_t, 6> octets{};
  for (int i = 5; i >= 0; --i) {
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(bits);
    bits >>= 8;
  }
  return MacAddress{octets};
}

/// Prefix mask for an nw field: the OF1.0 encoding counts *ignored* low
/// bits, >= 32 meaning fully wildcarded.
constexpr std::uint64_t nw_mask(int ignored_bits) {
  if (ignored_bits >= 32) return 0;
  const std::uint32_t m = ignored_bits == 0 ? ~0u : (~0u << ignored_bits);
  return m;
}

}  // namespace

FlowKey FlowKey::from_match(const Match& m) {
  FlowKey k;
  k.w[0] = (m.dl_src.to_u64() << 16) | m.in_port;
  k.w[1] = (m.dl_dst.to_u64() << 16) | m.dl_vlan;
  k.w[2] = (std::uint64_t{m.nw_src.value()} << 32) | m.nw_dst.value();
  k.w[3] = (std::uint64_t{m.dl_type} << 48) | (std::uint64_t{m.tp_src} << 32) |
           (std::uint64_t{m.tp_dst} << 16) | (std::uint64_t{m.dl_vlan_pcp} << 8) |
           m.nw_tos;
  k.w[4] = m.nw_proto;
  return k;
}

Match FlowKey::to_match(std::uint32_t wildcards) const {
  Match m;
  m.wildcards = wildcards;
  m.in_port = in_port();
  m.dl_src = mac_from_bits(dl_src_bits());
  m.dl_dst = mac_from_bits(dl_dst_bits());
  m.dl_vlan = dl_vlan();
  m.dl_vlan_pcp = dl_vlan_pcp();
  m.dl_type = dl_type();
  m.nw_tos = nw_tos();
  m.nw_proto = nw_proto();
  m.nw_src = Ipv4Address{nw_src()};
  m.nw_dst = Ipv4Address{nw_dst()};
  m.tp_src = tp_src();
  m.tp_dst = tp_dst();
  return m;
}

std::string FlowKey::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "key{%016llx %016llx %016llx %016llx %02llx}",
                static_cast<unsigned long long>(w[0]),
                static_cast<unsigned long long>(w[1]),
                static_cast<unsigned long long>(w[2]),
                static_cast<unsigned long long>(w[3]),
                static_cast<unsigned long long>(w[4]));
  return buf;
}

FlowMask FlowMask::from_wildcards(std::uint32_t wildcards) {
  const auto exact = [&](std::uint32_t bit) { return (wildcards & bit) == 0; };
  FlowMask m;
  m.w[0] = (exact(Wildcards::kDlSrc) ? 0xffffffffffffull << 16 : 0) |
           (exact(Wildcards::kInPort) ? 0xffffull : 0);
  m.w[1] = (exact(Wildcards::kDlDst) ? 0xffffffffffffull << 16 : 0) |
           (exact(Wildcards::kDlVlan) ? 0xffffull : 0);
  const int src_ignored = static_cast<int>((wildcards & Wildcards::kNwSrcMask) >>
                                           Wildcards::kNwSrcShift);
  const int dst_ignored = static_cast<int>((wildcards & Wildcards::kNwDstMask) >>
                                           Wildcards::kNwDstShift);
  m.w[2] = (nw_mask(src_ignored) << 32) | nw_mask(dst_ignored);
  m.w[3] = (exact(Wildcards::kDlType) ? 0xffffull << 48 : 0) |
           (exact(Wildcards::kTpSrc) ? 0xffffull << 32 : 0) |
           (exact(Wildcards::kTpDst) ? 0xffffull << 16 : 0) |
           (exact(Wildcards::kDlVlanPcp) ? 0xffull << 8 : 0) |
           (exact(Wildcards::kNwTos) ? 0xffull : 0);
  m.w[4] = exact(Wildcards::kNwProto) ? 0xffull : 0;
  return m;
}

}  // namespace hw::ofp
