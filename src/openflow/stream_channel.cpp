#include "openflow/stream_channel.hpp"

#include "openflow/messages.hpp"

namespace hw::ofp {

// ---------------------------------------------------------------------------
// StreamFramer

StreamFramer::HeaderVerdict StreamFramer::check_header(
    std::size_t& frame_len) const {
  if (buffer_.size() < kHeaderSize) return HeaderVerdict::NeedMore;
  const std::size_t len =
      (static_cast<std::size_t>(buffer_[2]) << 8) | buffer_[3];
  if (len < kHeaderSize || len > config_.max_frame) {
    // A length that can't even hold the header (or is absurdly large) means
    // we are not looking at a frame boundary at all: scan for one.
    return HeaderVerdict::Scan;
  }
  if (buffer_[0] != kWireVersion) {
    // Plausible length and a version an actual OpenFlow peer could speak
    // (1.1–1.6): a well-framed message of another version; skipping it whole
    // keeps the stream aligned. Any other version byte is noise — treating
    // its length field as authoritative would let garbage swallow the valid
    // messages behind it, so scan instead.
    if (buffer_[0] < 0x02 || buffer_[0] > 0x06) return HeaderVerdict::Scan;
    frame_len = len;
    return HeaderVerdict::SkipFrame;
  }
  frame_len = len;
  return HeaderVerdict::Ok;
}

void StreamFramer::feed(std::span<const std::uint8_t> data,
                        const FrameSink& sink) {
  if (data.empty()) return;
  const bool had_leftover = !buffer_.empty();
  buffer_.insert(buffer_.end(), data.begin(), data.end());

  std::size_t emitted_this_feed = 0;
  for (;;) {
    std::size_t frame_len = 0;
    switch (check_header(frame_len)) {
      case HeaderVerdict::NeedMore:
        return;
      case HeaderVerdict::Scan: {
        if (!scanning_) {
          metrics_.frames_bad.inc();
          scanning_ = true;
        }
        // Shed one byte and retry: the next plausible header (version byte
        // with a sane length behind it) re-anchors the stream.
        buffer_.erase(buffer_.begin());
        frame_was_split_ = false;
        continue;
      }
      case HeaderVerdict::SkipFrame: {
        if (buffer_.size() < frame_len) return;  // skip once it fully arrives
        metrics_.frames_bad.inc();
        scanning_ = false;
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(frame_len));
        frame_was_split_ = false;
        continue;
      }
      case HeaderVerdict::Ok:
        break;
    }
    if (buffer_.size() < frame_len) {
      // Header is valid but the body hasn't fully arrived: the head frame is
      // now known to span feeds.
      frame_was_split_ = true;
      return;
    }
    scanning_ = false;
    Bytes frame(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(frame_len));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(frame_len));
    metrics_.frames_ok.inc();
    if (frame_was_split_ || (had_leftover && emitted_this_feed == 0)) {
      metrics_.frames_partial.inc();
    }
    frame_was_split_ = false;
    ++emitted_this_feed;
    if (emitted_this_feed == 2) {
      // Two or more frames out of one read: all of them were coalesced.
      metrics_.frames_coalesced.inc(2);
    } else if (emitted_this_feed > 2) {
      metrics_.frames_coalesced.inc();
    }
    sink(frame);
  }
}

void StreamFramer::reset() {
  buffer_.clear();
  scanning_ = false;
  frame_was_split_ = false;
}

// ---------------------------------------------------------------------------
// StreamChannel

StreamChannel::StreamChannel(sim::StreamLink::End& end,
                             StreamFramer::Config framing)
    : end_(end), framer_(framing) {
  end_.on_data([this](std::span<const std::uint8_t> data) {
    framer_.feed(data, [this](const Bytes& frame) {
      if (connected_) dispatch(frame);
    });
  });
}

void StreamChannel::send(const Bytes& encoded) {
  if (!connected_) {
    note_dropped();
    return;
  }
  note_sent(encoded.size());
  end_.send(encoded);
}

// ---------------------------------------------------------------------------
// StreamConnection

StreamConnection::StreamConnection(sim::EventLoop& loop, Config config,
                                   Rng* rng)
    : link_(std::make_unique<sim::StreamLink>(loop, config.link, rng)),
      a_(std::make_unique<StreamChannel>(link_->a(), config.framing)),
      b_(std::make_unique<StreamChannel>(link_->b(), config.framing)) {}

StreamConnection::~StreamConnection() = default;

ChannelEndpoint& StreamConnection::datapath_end() { return *a_; }
ChannelEndpoint& StreamConnection::controller_end() { return *b_; }

void StreamConnection::disconnect() {
  link_->cut();
  a_->mark_disconnected();
  b_->mark_disconnected();
}

void StreamConnection::reconnect() {
  // A reconnect is a fresh TCP stream: whatever half-frame either framer was
  // holding belongs to the dead connection.
  a_->reset_framer();
  b_->reset_framer();
  link_->restore();
  a_->mark_connected();
  b_->mark_connected();
}

bool StreamConnection::connected() const { return link_->connected(); }

}  // namespace hw::ofp
