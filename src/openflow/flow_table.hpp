// The datapath's flow table: priority-ordered wildcard matching with
// idle/hard timeouts and per-entry counters (OpenFlow 1.0 §3).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/match.hpp"
#include "openflow/messages.hpp"
#include "telemetry/metrics.hpp"
#include "util/types.hpp"

namespace hw::ofp {

struct FlowEntry {
  Match match;
  std::uint16_t priority = 0x8000;
  ActionList actions;
  std::uint64_t cookie = 0;
  std::uint16_t idle_timeout = 0;  // seconds; 0 = never
  std::uint16_t hard_timeout = 0;  // seconds; 0 = never
  bool send_flow_removed = false;

  Timestamp install_time = 0;
  Timestamp last_used = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

/// Snapshot view over the table's telemetry instruments.
struct TableStats {
  std::uint64_t lookups = 0;
  std::uint64_t matches = 0;
};

/// Result of applying a FlowMod.
enum class FlowModResult {
  Added,
  Modified,
  Deleted,
  Overlap,   // rejected: OFPFF_CHECK_OVERLAP and an overlapping entry exists
  TableFull,
  NoMatch,   // modify/delete matched nothing (not an error per spec)
};

class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Applies a flow-mod at time `now`. Removed entries (for DELETE) are
  /// appended to `removed` so the datapath can emit flow-removed messages.
  FlowModResult apply(const FlowMod& mod, Timestamp now,
                      std::vector<FlowEntry>* removed = nullptr);

  /// Highest-priority entry covering the packet's exact-match fields, or
  /// nullptr. Updates per-entry counters and refreshes last_used — also for
  /// zero-length packets, which still reset the idle timeout (OF 1.0 §3.4
  /// counts packets, not bytes).
  FlowEntry* lookup(const Match& pkt, Timestamp now, std::size_t bytes);
  /// Read-only lookup without touching counters.
  [[nodiscard]] const FlowEntry* peek(const Match& pkt) const;

  /// Removes entries whose idle/hard timeout has fired by `now`; returns
  /// them together with the timeout reason.
  std::vector<std::pair<FlowEntry, FlowRemovedReason>> expire(Timestamp now);

  /// Entries matching a stats-request filter (match cover + out_port).
  [[nodiscard]] std::vector<const FlowEntry*> query(
      const Match& filter, std::uint16_t out_port = port_no(Port::None)) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] TableStats stats() const {
    return {metrics_.lookups.value(), metrics_.matches.value()};
  }
  /// Lookup latency histogram (nanoseconds) — the instrument ofp_perf and
  /// the MetricsExport table both report from.
  [[nodiscard]] const telemetry::Histogram& lookup_latency() const {
    return metrics_.lookup_ns;
  }

  /// Visits every entry (diagnostics, EXPERIMENTS dumps).
  void for_each(const std::function<void(const FlowEntry&)>& fn) const;

 private:
  [[nodiscard]] bool entry_outputs_to(const FlowEntry& e,
                                      std::uint16_t out_port) const;

  std::size_t capacity_;
  // Kept sorted by descending priority; stable order among equal priorities
  // (later adds go after earlier ones, matching OVS behaviour closely enough).
  std::vector<FlowEntry> entries_;

  struct Instruments {
    telemetry::Counter lookups{"openflow.flow_table.lookups"};
    telemetry::Counter matches{"openflow.flow_table.matches"};
    telemetry::Gauge entries{"openflow.flow_table.entries"};
    telemetry::Histogram lookup_ns{"openflow.flow_table.lookup_ns"};
  } metrics_;
};

}  // namespace hw::ofp
