// The datapath's flow table: a tuple-space-search classifier. Rules are
// grouped into per-mask subtables (one per distinct wildcard bitmap), each a
// hash map from masked FlowKey to a priority-sorted bucket. A lookup probes
// subtables in descending max-priority order and exits early once the best
// hit outranks every remaining subtable — O(#masks) probes instead of the
// O(#rules) linear scan, the same structure Open vSwitch uses (Pfaff et al.,
// NSDI 2015). Semantics are OpenFlow 1.0 §3: priority-ordered wildcard
// matching with idle/hard timeouts and per-entry counters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/flow_key.hpp"
#include "openflow/match.hpp"
#include "openflow/messages.hpp"
#include "snapshot/snapshottable.hpp"
#include "telemetry/metrics.hpp"
#include "util/types.hpp"

namespace hw::ofp {

struct FlowEntry {
  Match match;
  std::uint16_t priority = 0x8000;
  ActionList actions;
  std::uint64_t cookie = 0;
  std::uint16_t idle_timeout = 0;  // seconds; 0 = never
  std::uint16_t hard_timeout = 0;  // seconds; 0 = never
  bool send_flow_removed = false;

  Timestamp install_time = 0;
  Timestamp last_used = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  // Insertion order, kept across replaces. Lookup breaks priority ties in
  // favour of the earliest-installed entry, exactly like a linear scan with
  // a strict "better priority" comparison would.
  std::uint64_t seq = 0;
};

/// Snapshot view over the table's telemetry instruments.
struct TableStats {
  std::uint64_t lookups = 0;
  std::uint64_t matches = 0;
  std::uint64_t subtable_scans = 0;
  std::uint64_t table_full = 0;
};

/// Result of applying a FlowMod.
enum class FlowModResult {
  Added,
  Modified,
  Deleted,
  Overlap,   // rejected: OFPFF_CHECK_OVERLAP and an overlapping entry exists
  TableFull,
  NoMatch,   // modify/delete matched nothing (not an error per spec)
};

class FlowTable final : public snapshot::Snapshottable {
 public:
  explicit FlowTable(std::size_t capacity = 4096,
                     telemetry::MetricRegistry& metrics =
                         telemetry::MetricRegistry::current())
      : capacity_(capacity), metrics_(metrics) {}

  /// Applies a flow-mod at time `now`. Removed entries (for DELETE) are
  /// appended to `removed` so the datapath can emit flow-removed messages.
  FlowModResult apply(const FlowMod& mod, Timestamp now,
                      std::vector<FlowEntry>* removed = nullptr);

  /// Highest-priority entry covering the packet's exact-match fields, or
  /// nullptr. Updates per-entry counters and refreshes last_used — also for
  /// zero-length packets, which still reset the idle timeout (OF 1.0 §3.4
  /// counts packets, not bytes). The FlowKey overload is the fast path; the
  /// Match overload flattens and delegates.
  FlowEntry* lookup(const FlowKey& key, Timestamp now, std::size_t bytes);
  FlowEntry* lookup(const Match& pkt, Timestamp now, std::size_t bytes);
  /// Read-only lookup sharing the exact matching code path with lookup(),
  /// minus every counter update.
  [[nodiscard]] const FlowEntry* peek(const FlowKey& key) const;
  [[nodiscard]] const FlowEntry* peek(const Match& pkt) const;

  /// Counter bookkeeping for a hit served out of the datapath's microflow
  /// cache: the side effects of lookup() without re-running the classifier.
  void record_hit(FlowEntry& entry, Timestamp now, std::size_t bytes);

  /// Removes entries whose idle/hard timeout has fired by `now`; returns
  /// them together with the timeout reason. With `suspend_idle` only hard
  /// timeouts fire — the datapath's fail-safe mode keeps established flows
  /// alive while the controller (which would re-install them) is dead.
  std::vector<std::pair<FlowEntry, FlowRemovedReason>> expire(
      Timestamp now, bool suspend_idle = false);

  /// Drops every entry without emitting flow-removed records (a datapath
  /// cold restart losing its volatile state).
  void clear();

  /// Entries matching a stats-request filter (match cover + out_port),
  /// in descending priority order.
  [[nodiscard]] std::vector<const FlowEntry*> query(
      const Match& filter, std::uint16_t out_port = port_no(Port::None)) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Bumped on every mutation (add/modify/delete/expire). Cached pointers
  /// into the table — the microflow cache's handles — are only valid while
  /// the generation they were read under is current.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  /// Number of live subtables (distinct wildcard patterns). Lookup cost is
  /// proportional to this, not to size().
  [[nodiscard]] std::size_t subtable_count() const { return subtables_.size(); }
  [[nodiscard]] TableStats stats() const {
    return {metrics_.lookups.value(), metrics_.matches.value(),
            metrics_.subtable_scans.value(), metrics_.table_full.value()};
  }
  /// Lookup latency histogram (nanoseconds) — the instrument ofp_perf and
  /// the MetricsExport table both report from.
  [[nodiscard]] const telemetry::Histogram& lookup_latency() const {
    return metrics_.lookup_ns;
  }

  /// Visits every entry in descending priority order (diagnostics,
  /// EXPERIMENTS dumps).
  void for_each(const std::function<void(const FlowEntry&)>& fn) const;

  // -- Snapshottable ('FTBL' chunk) --------------------------------------------
  // Serializes every entry — match, priority, actions, timeouts, counters,
  // install/last-used times, insertion seq — ordered by seq so the encoding
  // is deterministic. Restore rebuilds the subtables from scratch and bumps
  // the generation, which flushes the datapath's microflow cache on its next
  // probe.
  void save(snapshot::Writer& w) const override;
  Status restore(const snapshot::Reader& r) override;

 private:
  /// One tuple-space subtable: every entry added with the same wildcard
  /// bitmap. The bucket key is the entry's FlowKey masked by `mask`; a
  /// bucket holds same-pattern entries at distinct priorities, sorted
  /// descending so front() is the subtable's best candidate for that key.
  struct Subtable {
    std::uint32_t wildcards = 0;
    FlowMask mask;
    std::uint16_t max_priority = 0;
    std::size_t n_entries = 0;
    std::unordered_map<FlowKey, std::vector<FlowEntry>, FlowKeyHash> buckets;
  };

  [[nodiscard]] bool entry_outputs_to(const FlowEntry& e,
                                      std::uint16_t out_port) const;
  [[nodiscard]] Subtable* subtable_for(std::uint32_t wildcards);
  Subtable& create_subtable(std::uint32_t wildcards);
  /// The single matching code path under lookup() and peek(): probe
  /// subtables in descending max-priority order with early exit.
  [[nodiscard]] const FlowEntry* find(const FlowKey& key,
                                      std::uint64_t* scanned) const;
  /// Erases every entry satisfying `pred`; appends them (with `reason` when
  /// collecting for expiry) and restores the subtable invariants.
  bool remove_entries(const std::function<bool(const FlowEntry&)>& pred,
                      const std::function<void(FlowEntry&&)>& sink);
  /// Places a fully populated entry (counters, times and seq preserved) into
  /// its subtable — the restore path's insert, bypassing FlowMod semantics.
  void insert_restored(FlowEntry e);
  void prune_and_resort();
  void sort_subtables();
  void bump_generation();

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t next_seq_ = 0;
  // Kept sorted by descending max_priority so find() can exit early.
  std::vector<std::unique_ptr<Subtable>> subtables_;

  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : lookups{reg, "openflow.flow_table.lookups"},
          matches{reg, "openflow.flow_table.matches"},
          entries{reg, "openflow.flow_table.entries"},
          lookup_ns{reg, "openflow.flow_table.lookup_ns"},
          subtables{reg, "openflow.flow_table.subtables"},
          subtable_scans{reg, "openflow.flow_table.subtable_scans"},
          table_full{reg, "openflow.flow_table.table_full"} {}
    telemetry::Counter lookups;
    telemetry::Counter matches;
    telemetry::Gauge entries;
    telemetry::Histogram lookup_ns;
    telemetry::Gauge subtables;
    telemetry::Counter subtable_scans;
    telemetry::Counter table_full;
  } metrics_;
};

}  // namespace hw::ofp
