#include "openflow/messages.hpp"

#include <algorithm>

namespace hw::ofp {
namespace {

constexpr std::size_t kPhyPortSize = 48;
constexpr std::size_t kDescStrLen = 256;
constexpr std::size_t kSerialNumLen = 32;

void write_phy_port(ByteWriter& w, const PhyPort& p) {
  w.u16(p.port_no);
  w.raw(p.hw_addr.octets().data(), 6);
  w.fixed_string(p.name, 16);
  w.u32(p.config);
  w.u32(p.state);
  w.u32(p.curr);
  w.u32(0);  // advertised
  w.u32(0);  // supported
  w.u32(0);  // peer
}

Result<PhyPort> read_phy_port(ByteReader& r) {
  PhyPort p;
  auto port = r.u16();
  if (!port) return port.error();
  p.port_no = port.value();
  auto mac = r.raw(6);
  if (!mac) return mac.error();
  std::array<std::uint8_t, 6> octets{};
  std::copy(mac.value().begin(), mac.value().end(), octets.begin());
  p.hw_addr = MacAddress{octets};
  auto name = r.fixed_string(16);
  if (!name) return name.error();
  p.name = std::move(name).take();
  auto config = r.u32();
  if (!config) return config.error();
  p.config = config.value();
  auto state = r.u32();
  if (!state) return state.error();
  p.state = state.value();
  auto curr = r.u32();
  if (!curr) return curr.error();
  p.curr = curr.value();
  if (auto s = r.skip(12); !s.ok()) return s.error();
  return p;
}

void encode_body(ByteWriter& w, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello> ||
                      std::is_same_v<T, FeaturesRequest> ||
                      std::is_same_v<T, BarrierRequest> ||
                      std::is_same_v<T, BarrierReply>) {
          // header only
        } else if constexpr (std::is_same_v<T, ErrorMsg>) {
          w.u16(static_cast<std::uint16_t>(m.type));
          w.u16(m.code);
          w.raw(m.data);
        } else if constexpr (std::is_same_v<T, EchoRequest> ||
                             std::is_same_v<T, EchoReply>) {
          w.raw(m.data);
        } else if constexpr (std::is_same_v<T, FeaturesReply>) {
          w.u64(m.datapath_id);
          w.u32(m.n_buffers);
          w.u8(m.n_tables);
          w.zeros(3);
          w.u32(m.capabilities);
          w.u32(m.actions);
          for (const auto& p : m.ports) write_phy_port(w, p);
        } else if constexpr (std::is_same_v<T, PacketIn>) {
          w.u32(m.buffer_id);
          w.u16(m.total_len);
          w.u16(m.in_port);
          w.u8(static_cast<std::uint8_t>(m.reason));
          w.u8(0);
          w.raw(m.data);
        } else if constexpr (std::is_same_v<T, FlowRemoved>) {
          m.match.serialize(w);
          w.u64(m.cookie);
          w.u16(m.priority);
          w.u8(static_cast<std::uint8_t>(m.reason));
          w.u8(0);
          w.u32(m.duration_sec);
          w.u32(m.duration_nsec);
          w.u16(m.idle_timeout);
          w.zeros(2);
          w.u64(m.packet_count);
          w.u64(m.byte_count);
        } else if constexpr (std::is_same_v<T, PortStatus>) {
          w.u8(static_cast<std::uint8_t>(m.reason));
          w.zeros(7);
          write_phy_port(w, m.desc);
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          w.u32(m.buffer_id);
          w.u16(m.in_port);
          ByteWriter actions;
          serialize_actions(actions, m.actions);
          w.u16(static_cast<std::uint16_t>(actions.size()));
          w.raw(actions.bytes());
          w.raw(m.data);
        } else if constexpr (std::is_same_v<T, FlowMod>) {
          m.match.serialize(w);
          w.u64(m.cookie);
          w.u16(static_cast<std::uint16_t>(m.command));
          w.u16(m.idle_timeout);
          w.u16(m.hard_timeout);
          w.u16(m.priority);
          w.u32(m.buffer_id);
          w.u16(m.out_port);
          w.u16(m.flags);
          serialize_actions(w, m.actions);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          w.u16(static_cast<std::uint16_t>(m.type));
          w.u16(0);  // flags
          if (const auto* flow = std::get_if<FlowStatsRequest>(&m.body)) {
            flow->match.serialize(w);
            w.u8(flow->table_id);
            w.u8(0);
            w.u16(flow->out_port);
          } else if (const auto* port = std::get_if<PortStatsRequest>(&m.body)) {
            w.u16(port->port_no);
            w.zeros(6);
          }
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          w.u16(static_cast<std::uint16_t>(m.type));
          w.u16(m.flags);
          if (const auto* desc = std::get_if<DescStats>(&m.body)) {
            w.fixed_string(desc->mfr_desc, kDescStrLen);
            w.fixed_string(desc->hw_desc, kDescStrLen);
            w.fixed_string(desc->sw_desc, kDescStrLen);
            w.fixed_string(desc->serial_num, kSerialNumLen);
            w.fixed_string(desc->dp_desc, kDescStrLen);
          } else if (const auto* flows =
                         std::get_if<std::vector<FlowStatsEntry>>(&m.body)) {
            for (const auto& f : *flows) {
              ByteWriter actions;
              serialize_actions(actions, f.actions);
              const std::uint16_t len =
                  static_cast<std::uint16_t>(88 + actions.size());
              w.u16(len);
              w.u8(f.table_id);
              w.u8(0);
              f.match.serialize(w);
              w.u32(f.duration_sec);
              w.u32(f.duration_nsec);
              w.u16(f.priority);
              w.u16(f.idle_timeout);
              w.u16(f.hard_timeout);
              w.zeros(6);
              w.u64(f.cookie);
              w.u64(f.packet_count);
              w.u64(f.byte_count);
              w.raw(actions.bytes());
            }
          } else if (const auto* agg =
                         std::get_if<AggregateStatsReplyBody>(&m.body)) {
            w.u64(agg->packet_count);
            w.u64(agg->byte_count);
            w.u32(agg->flow_count);
            w.zeros(4);
          } else if (const auto* ports =
                         std::get_if<std::vector<PortStatsEntry>>(&m.body)) {
            for (const auto& p : *ports) {
              w.u16(p.port_no);
              w.zeros(6);
              w.u64(p.rx_packets);
              w.u64(p.tx_packets);
              w.u64(p.rx_bytes);
              w.u64(p.tx_bytes);
              w.u64(p.rx_dropped);
              w.u64(p.tx_dropped);
              w.u64(0);  // rx_errors
              w.u64(0);  // tx_errors
              w.u64(0);  // rx_frame_err
              w.u64(0);  // rx_over_err
              w.u64(0);  // rx_crc_err
              w.u64(0);  // collisions
            }
          }
        }
      },
      msg);
}

Result<Message> decode_body(MsgType type, ByteReader& r) {
  switch (type) {
    case MsgType::Hello:
      return Message{Hello{}};
    case MsgType::FeaturesRequest:
      return Message{FeaturesRequest{}};
    case MsgType::BarrierRequest:
      return Message{BarrierRequest{}};
    case MsgType::BarrierReply:
      return Message{BarrierReply{}};
    case MsgType::Error: {
      ErrorMsg m;
      auto t = r.u16();
      if (!t) return t.error();
      m.type = static_cast<ErrorType>(t.value());
      auto c = r.u16();
      if (!c) return c.error();
      m.code = c.value();
      auto data = r.raw(r.remaining());
      if (!data) return data.error();
      m.data = std::move(data).take();
      return Message{std::move(m)};
    }
    case MsgType::EchoRequest: {
      auto data = r.raw(r.remaining());
      if (!data) return data.error();
      return Message{EchoRequest{std::move(data).take()}};
    }
    case MsgType::EchoReply: {
      auto data = r.raw(r.remaining());
      if (!data) return data.error();
      return Message{EchoReply{std::move(data).take()}};
    }
    case MsgType::FeaturesReply: {
      FeaturesReply m;
      auto dpid = r.u64();
      if (!dpid) return dpid.error();
      m.datapath_id = dpid.value();
      auto nbuf = r.u32();
      if (!nbuf) return nbuf.error();
      m.n_buffers = nbuf.value();
      auto ntab = r.u8();
      if (!ntab) return ntab.error();
      m.n_tables = ntab.value();
      if (auto s = r.skip(3); !s.ok()) return s.error();
      auto caps = r.u32();
      if (!caps) return caps.error();
      m.capabilities = caps.value();
      auto acts = r.u32();
      if (!acts) return acts.error();
      m.actions = acts.value();
      while (r.remaining() >= kPhyPortSize) {
        auto p = read_phy_port(r);
        if (!p) return p.error();
        m.ports.push_back(std::move(p).take());
      }
      return Message{std::move(m)};
    }
    case MsgType::PacketIn: {
      PacketIn m;
      auto buf = r.u32();
      if (!buf) return buf.error();
      m.buffer_id = buf.value();
      auto total = r.u16();
      if (!total) return total.error();
      m.total_len = total.value();
      auto in_port = r.u16();
      if (!in_port) return in_port.error();
      m.in_port = in_port.value();
      auto reason = r.u8();
      if (!reason) return reason.error();
      m.reason = static_cast<PacketInReason>(reason.value());
      if (auto s = r.skip(1); !s.ok()) return s.error();
      auto data = r.raw(r.remaining());
      if (!data) return data.error();
      m.data = std::move(data).take();
      return Message{std::move(m)};
    }
    case MsgType::FlowRemoved: {
      FlowRemoved m;
      auto match = Match::parse(r);
      if (!match) return match.error();
      m.match = match.value();
      auto cookie = r.u64();
      if (!cookie) return cookie.error();
      m.cookie = cookie.value();
      auto prio = r.u16();
      if (!prio) return prio.error();
      m.priority = prio.value();
      auto reason = r.u8();
      if (!reason) return reason.error();
      m.reason = static_cast<FlowRemovedReason>(reason.value());
      if (auto s = r.skip(1); !s.ok()) return s.error();
      auto dsec = r.u32();
      if (!dsec) return dsec.error();
      m.duration_sec = dsec.value();
      auto dnsec = r.u32();
      if (!dnsec) return dnsec.error();
      m.duration_nsec = dnsec.value();
      auto idle = r.u16();
      if (!idle) return idle.error();
      m.idle_timeout = idle.value();
      if (auto s = r.skip(2); !s.ok()) return s.error();
      auto pkts = r.u64();
      if (!pkts) return pkts.error();
      m.packet_count = pkts.value();
      auto bytes = r.u64();
      if (!bytes) return bytes.error();
      m.byte_count = bytes.value();
      return Message{std::move(m)};
    }
    case MsgType::PortStatus: {
      PortStatus m;
      auto reason = r.u8();
      if (!reason) return reason.error();
      m.reason = static_cast<PortReason>(reason.value());
      if (auto s = r.skip(7); !s.ok()) return s.error();
      auto desc = read_phy_port(r);
      if (!desc) return desc.error();
      m.desc = std::move(desc).take();
      return Message{std::move(m)};
    }
    case MsgType::PacketOut: {
      PacketOut m;
      auto buf = r.u32();
      if (!buf) return buf.error();
      m.buffer_id = buf.value();
      auto in_port = r.u16();
      if (!in_port) return in_port.error();
      m.in_port = in_port.value();
      auto alen = r.u16();
      if (!alen) return alen.error();
      auto actions = parse_actions(r, alen.value());
      if (!actions) return actions.error();
      m.actions = std::move(actions).take();
      auto data = r.raw(r.remaining());
      if (!data) return data.error();
      m.data = std::move(data).take();
      return Message{std::move(m)};
    }
    case MsgType::FlowMod: {
      FlowMod m;
      auto match = Match::parse(r);
      if (!match) return match.error();
      m.match = match.value();
      auto cookie = r.u64();
      if (!cookie) return cookie.error();
      m.cookie = cookie.value();
      auto cmd = r.u16();
      if (!cmd) return cmd.error();
      if (cmd.value() > 4) return make_error("FlowMod: bad command");
      m.command = static_cast<FlowModCommand>(cmd.value());
      auto idle = r.u16();
      if (!idle) return idle.error();
      m.idle_timeout = idle.value();
      auto hard = r.u16();
      if (!hard) return hard.error();
      m.hard_timeout = hard.value();
      auto prio = r.u16();
      if (!prio) return prio.error();
      m.priority = prio.value();
      auto buf = r.u32();
      if (!buf) return buf.error();
      m.buffer_id = buf.value();
      auto out_port = r.u16();
      if (!out_port) return out_port.error();
      m.out_port = out_port.value();
      auto flags = r.u16();
      if (!flags) return flags.error();
      m.flags = flags.value();
      auto actions = parse_actions(r, r.remaining());
      if (!actions) return actions.error();
      m.actions = std::move(actions).take();
      return Message{std::move(m)};
    }
    case MsgType::StatsRequest: {
      StatsRequest m;
      auto t = r.u16();
      if (!t) return t.error();
      m.type = static_cast<StatsType>(t.value());
      if (auto s = r.skip(2); !s.ok()) return s.error();  // flags
      if (m.type == StatsType::Flow || m.type == StatsType::Aggregate) {
        FlowStatsRequest body;
        auto match = Match::parse(r);
        if (!match) return match.error();
        body.match = match.value();
        auto table = r.u8();
        if (!table) return table.error();
        body.table_id = table.value();
        if (auto s = r.skip(1); !s.ok()) return s.error();
        auto out_port = r.u16();
        if (!out_port) return out_port.error();
        body.out_port = out_port.value();
        m.body = body;
      } else if (m.type == StatsType::Port) {
        PortStatsRequest body;
        auto port = r.u16();
        if (!port) return port.error();
        body.port_no = port.value();
        if (auto s = r.skip(6); !s.ok()) return s.error();
        m.body = body;
      }
      return Message{std::move(m)};
    }
    case MsgType::StatsReply: {
      StatsReply m;
      auto t = r.u16();
      if (!t) return t.error();
      m.type = static_cast<StatsType>(t.value());
      auto fl = r.u16();
      if (!fl) return fl.error();
      m.flags = fl.value();
      switch (m.type) {
        case StatsType::Desc: {
          DescStats desc;
          auto mfr = r.fixed_string(kDescStrLen);
          if (!mfr) return mfr.error();
          desc.mfr_desc = std::move(mfr).take();
          auto hwd = r.fixed_string(kDescStrLen);
          if (!hwd) return hwd.error();
          desc.hw_desc = std::move(hwd).take();
          auto sw = r.fixed_string(kDescStrLen);
          if (!sw) return sw.error();
          desc.sw_desc = std::move(sw).take();
          auto serial = r.fixed_string(kSerialNumLen);
          if (!serial) return serial.error();
          desc.serial_num = std::move(serial).take();
          auto dp = r.fixed_string(kDescStrLen);
          if (!dp) return dp.error();
          desc.dp_desc = std::move(dp).take();
          m.body = std::move(desc);
          break;
        }
        case StatsType::Flow: {
          std::vector<FlowStatsEntry> flows;
          while (r.remaining() >= 88) {
            FlowStatsEntry f;
            auto len = r.u16();
            if (!len) return len.error();
            if (len.value() < 88) return make_error("FlowStats: bad length");
            auto table = r.u8();
            if (!table) return table.error();
            f.table_id = table.value();
            if (auto s = r.skip(1); !s.ok()) return s.error();
            auto match = Match::parse(r);
            if (!match) return match.error();
            f.match = match.value();
            auto dsec = r.u32();
            if (!dsec) return dsec.error();
            f.duration_sec = dsec.value();
            auto dnsec = r.u32();
            if (!dnsec) return dnsec.error();
            f.duration_nsec = dnsec.value();
            auto prio = r.u16();
            if (!prio) return prio.error();
            f.priority = prio.value();
            auto idle = r.u16();
            if (!idle) return idle.error();
            f.idle_timeout = idle.value();
            auto hard = r.u16();
            if (!hard) return hard.error();
            f.hard_timeout = hard.value();
            if (auto s = r.skip(6); !s.ok()) return s.error();
            auto cookie = r.u64();
            if (!cookie) return cookie.error();
            f.cookie = cookie.value();
            auto pkts = r.u64();
            if (!pkts) return pkts.error();
            f.packet_count = pkts.value();
            auto bytes = r.u64();
            if (!bytes) return bytes.error();
            f.byte_count = bytes.value();
            auto actions = parse_actions(r, len.value() - 88u);
            if (!actions) return actions.error();
            f.actions = std::move(actions).take();
            flows.push_back(std::move(f));
          }
          m.body = std::move(flows);
          break;
        }
        case StatsType::Aggregate: {
          AggregateStatsReplyBody agg;
          auto pkts = r.u64();
          if (!pkts) return pkts.error();
          agg.packet_count = pkts.value();
          auto bytes = r.u64();
          if (!bytes) return bytes.error();
          agg.byte_count = bytes.value();
          auto flows = r.u32();
          if (!flows) return flows.error();
          agg.flow_count = flows.value();
          if (auto s = r.skip(4); !s.ok()) return s.error();
          m.body = agg;
          break;
        }
        case StatsType::Port: {
          std::vector<PortStatsEntry> ports;
          while (r.remaining() >= 104) {
            PortStatsEntry p;
            auto port = r.u16();
            if (!port) return port.error();
            p.port_no = port.value();
            if (auto s = r.skip(6); !s.ok()) return s.error();
            auto rd = [&](std::uint64_t& field) -> Status {
              auto v = r.u64();
              if (!v) return Status::failure(v.error().message);
              field = v.value();
              return {};
            };
            if (auto s = rd(p.rx_packets); !s.ok()) return s.error();
            if (auto s = rd(p.tx_packets); !s.ok()) return s.error();
            if (auto s = rd(p.rx_bytes); !s.ok()) return s.error();
            if (auto s = rd(p.tx_bytes); !s.ok()) return s.error();
            if (auto s = rd(p.rx_dropped); !s.ok()) return s.error();
            if (auto s = rd(p.tx_dropped); !s.ok()) return s.error();
            if (auto s = r.skip(48); !s.ok()) return s.error();
            ports.push_back(p);
          }
          m.body = std::move(ports);
          break;
        }
        default:
          break;
      }
      return Message{std::move(m)};
    }
  }
  return make_error("OF: unknown message type");
}

}  // namespace

MsgType type_of(const Message& msg) {
  return std::visit(
      [](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) return MsgType::Hello;
        else if constexpr (std::is_same_v<T, ErrorMsg>) return MsgType::Error;
        else if constexpr (std::is_same_v<T, EchoRequest>) return MsgType::EchoRequest;
        else if constexpr (std::is_same_v<T, EchoReply>) return MsgType::EchoReply;
        else if constexpr (std::is_same_v<T, FeaturesRequest>) return MsgType::FeaturesRequest;
        else if constexpr (std::is_same_v<T, FeaturesReply>) return MsgType::FeaturesReply;
        else if constexpr (std::is_same_v<T, PacketIn>) return MsgType::PacketIn;
        else if constexpr (std::is_same_v<T, FlowRemoved>) return MsgType::FlowRemoved;
        else if constexpr (std::is_same_v<T, PortStatus>) return MsgType::PortStatus;
        else if constexpr (std::is_same_v<T, PacketOut>) return MsgType::PacketOut;
        else if constexpr (std::is_same_v<T, FlowMod>) return MsgType::FlowMod;
        else if constexpr (std::is_same_v<T, StatsRequest>) return MsgType::StatsRequest;
        else if constexpr (std::is_same_v<T, StatsReply>) return MsgType::StatsReply;
        else if constexpr (std::is_same_v<T, BarrierRequest>) return MsgType::BarrierRequest;
        else return MsgType::BarrierReply;
      },
      msg);
}

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::Hello: return "HELLO";
    case MsgType::Error: return "ERROR";
    case MsgType::EchoRequest: return "ECHO_REQUEST";
    case MsgType::EchoReply: return "ECHO_REPLY";
    case MsgType::FeaturesRequest: return "FEATURES_REQUEST";
    case MsgType::FeaturesReply: return "FEATURES_REPLY";
    case MsgType::PacketIn: return "PACKET_IN";
    case MsgType::FlowRemoved: return "FLOW_REMOVED";
    case MsgType::PortStatus: return "PORT_STATUS";
    case MsgType::PacketOut: return "PACKET_OUT";
    case MsgType::FlowMod: return "FLOW_MOD";
    case MsgType::StatsRequest: return "STATS_REQUEST";
    case MsgType::StatsReply: return "STATS_REPLY";
    case MsgType::BarrierRequest: return "BARRIER_REQUEST";
    case MsgType::BarrierReply: return "BARRIER_REPLY";
  }
  return "?";
}

Bytes encode(const Envelope& env) {
  ByteWriter w(64);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type_of(env.msg)));
  w.u16(0);  // length patched below
  w.u32(env.xid);
  encode_body(w, env.msg);
  Bytes out = std::move(w).take();
  const std::uint16_t len = static_cast<std::uint16_t>(out.size());
  out[2] = static_cast<std::uint8_t>(len >> 8);
  out[3] = static_cast<std::uint8_t>(len);
  return out;
}

Result<Envelope> decode(std::span<const std::uint8_t> buf) {
  ByteReader r(buf);
  auto version = r.u8();
  if (!version) return version.error();
  if (version.value() != kWireVersion) return make_error("OF: bad version");
  auto type = r.u8();
  if (!type) return type.error();
  auto length = r.u16();
  if (!length) return length.error();
  if (length.value() != buf.size()) return make_error("OF: length mismatch");
  auto xid = r.u32();
  if (!xid) return xid.error();

  auto msg = decode_body(static_cast<MsgType>(type.value()), r);
  if (!msg) return msg.error();
  return Envelope{xid.value(), std::move(msg).take()};
}

std::size_t peek_length(std::span<const std::uint8_t> buf) {
  if (buf.size() < kHeaderSize) return 0;
  return (static_cast<std::size_t>(buf[2]) << 8) | buf[3];
}

}  // namespace hw::ofp
