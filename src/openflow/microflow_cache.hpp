// The exact-match microflow cache in front of the classifier: the first
// packet of a flow pays the tuple-space search, every later packet of the
// same 12-tuple resolves with one hash probe. Entries are raw handles into
// the FlowTable, so they are validated against the table's generation
// counter — any table mutation may move or delete entries, and the first
// probe after a mutation flushes the whole cache. Capacity is bounded with
// LRU eviction. This mirrors the OVS kernel-datapath design (Pfaff et al.,
// NSDI 2015), collapsed into one process.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "openflow/flow_key.hpp"

namespace hw::ofp {

struct FlowEntry;

class MicroflowCache {
 public:
  explicit MicroflowCache(std::size_t capacity) : capacity_(capacity) {}

  struct Probe {
    FlowEntry* entry = nullptr;  // nullptr = miss; run the classifier
    bool flushed = false;        // the table mutated since the last probe
  };

  /// Looks the key up under the classifier's current generation. A
  /// generation change invalidates every cached handle at once (any
  /// mutation may have moved or deleted the entries they point at).
  Probe probe(const FlowKey& key, std::uint64_t generation);

  /// Remembers a classifier hit under the generation it was computed at.
  /// Evicts the least-recently-used entry when full.
  void insert(const FlowKey& key, FlowEntry* entry, std::uint64_t generation);

  void clear();
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<std::pair<FlowKey, FlowEntry*>>;

  std::size_t capacity_;
  std::uint64_t generation_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<FlowKey, LruList::iterator, FlowKeyHash> index_;
};

}  // namespace hw::ofp
