#include "openflow/flow_table.hpp"

#include <algorithm>

namespace hw::ofp {

bool FlowTable::entry_outputs_to(const FlowEntry& e, std::uint16_t out_port) const {
  if (out_port == port_no(Port::None)) return true;
  return std::any_of(e.actions.begin(), e.actions.end(), [&](const Action& a) {
    const auto* out = std::get_if<ActionOutput>(&a);
    return out != nullptr && out->port == out_port;
  });
}

FlowModResult FlowTable::apply(const FlowMod& mod, Timestamp now,
                               std::vector<FlowEntry>* removed) {
  switch (mod.command) {
    case FlowModCommand::Add: {
      if (mod.flags & FlowModFlags::kCheckOverlap) {
        for (const auto& e : entries_) {
          if (e.priority == mod.priority && e.match.overlaps(mod.match) &&
              !e.match.same_pattern(mod.match)) {
            return FlowModResult::Overlap;
          }
        }
      }
      // Identical match+priority replaces the entry (spec §4.6), counters reset.
      for (auto& e : entries_) {
        if (e.priority == mod.priority && e.match.same_pattern(mod.match)) {
          e.actions = mod.actions;
          e.cookie = mod.cookie;
          e.idle_timeout = mod.idle_timeout;
          e.hard_timeout = mod.hard_timeout;
          e.send_flow_removed = (mod.flags & FlowModFlags::kSendFlowRem) != 0;
          e.install_time = now;
          e.last_used = now;
          e.packet_count = 0;
          e.byte_count = 0;
          return FlowModResult::Added;
        }
      }
      if (entries_.size() >= capacity_) return FlowModResult::TableFull;
      FlowEntry e;
      e.match = mod.match;
      e.priority = mod.priority;
      e.actions = mod.actions;
      e.cookie = mod.cookie;
      e.idle_timeout = mod.idle_timeout;
      e.hard_timeout = mod.hard_timeout;
      e.send_flow_removed = (mod.flags & FlowModFlags::kSendFlowRem) != 0;
      e.install_time = now;
      e.last_used = now;
      // Insert after the last entry with priority >= new priority.
      auto pos = std::upper_bound(
          entries_.begin(), entries_.end(), e.priority,
          [](std::uint16_t p, const FlowEntry& x) { return p > x.priority; });
      entries_.insert(pos, std::move(e));
      metrics_.entries.set(static_cast<std::int64_t>(entries_.size()));
      return FlowModResult::Added;
    }

    case FlowModCommand::Modify:
    case FlowModCommand::ModifyStrict: {
      const bool strict = mod.command == FlowModCommand::ModifyStrict;
      bool any = false;
      for (auto& e : entries_) {
        const bool hit = strict ? (e.priority == mod.priority &&
                                   e.match.same_pattern(mod.match))
                                : mod.match.covers(e.match);
        if (hit) {
          e.actions = mod.actions;
          e.cookie = mod.cookie;
          any = true;
        }
      }
      if (any) return FlowModResult::Modified;
      // Per spec, MODIFY with no match behaves like ADD.
      FlowMod add = mod;
      add.command = FlowModCommand::Add;
      return apply(add, now, removed);
    }

    case FlowModCommand::Delete:
    case FlowModCommand::DeleteStrict: {
      const bool strict = mod.command == FlowModCommand::DeleteStrict;
      bool any = false;
      for (auto it = entries_.begin(); it != entries_.end();) {
        const bool hit = (strict ? (it->priority == mod.priority &&
                                    it->match.same_pattern(mod.match))
                                 : mod.match.covers(it->match)) &&
                         entry_outputs_to(*it, mod.out_port);
        if (hit) {
          if (removed != nullptr) removed->push_back(*it);
          it = entries_.erase(it);
          any = true;
        } else {
          ++it;
        }
      }
      metrics_.entries.set(static_cast<std::int64_t>(entries_.size()));
      return any ? FlowModResult::Deleted : FlowModResult::NoMatch;
    }
  }
  return FlowModResult::NoMatch;
}

FlowEntry* FlowTable::lookup(const Match& pkt, Timestamp now, std::size_t bytes) {
  const telemetry::ScopedTimer timer(metrics_.lookup_ns);
  metrics_.lookups.inc();
  for (auto& e : entries_) {
    if (e.match.covers(pkt)) {
      metrics_.matches.inc();
      // Zero-length packets still refresh the idle timeout: OF 1.0 expires
      // on packet arrival, not byte volume.
      e.last_used = now;
      ++e.packet_count;
      e.byte_count += bytes;
      return &e;
    }
  }
  return nullptr;
}

const FlowEntry* FlowTable::peek(const Match& pkt) const {
  for (const auto& e : entries_) {
    if (e.match.covers(pkt)) return &e;
  }
  return nullptr;
}

std::vector<std::pair<FlowEntry, FlowRemovedReason>> FlowTable::expire(
    Timestamp now) {
  std::vector<std::pair<FlowEntry, FlowRemovedReason>> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    std::optional<FlowRemovedReason> reason;
    if (it->hard_timeout != 0 &&
        now >= it->install_time + static_cast<Duration>(it->hard_timeout) * kSecond) {
      reason = FlowRemovedReason::HardTimeout;
    } else if (it->idle_timeout != 0 &&
               now >= it->last_used +
                          static_cast<Duration>(it->idle_timeout) * kSecond) {
      reason = FlowRemovedReason::IdleTimeout;
    }
    if (reason) {
      out.emplace_back(*it, *reason);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  metrics_.entries.set(static_cast<std::int64_t>(entries_.size()));
  return out;
}

std::vector<const FlowEntry*> FlowTable::query(const Match& filter,
                                               std::uint16_t out_port) const {
  std::vector<const FlowEntry*> out;
  for (const auto& e : entries_) {
    if (filter.covers(e.match) && entry_outputs_to(e, out_port)) {
      out.push_back(&e);
    }
  }
  return out;
}

void FlowTable::for_each(const std::function<void(const FlowEntry&)>& fn) const {
  for (const auto& e : entries_) fn(e);
}

}  // namespace hw::ofp
