#include "openflow/flow_table.hpp"

#include <algorithm>

namespace hw::ofp {
namespace {

/// The one place a FlowMod's payload lands in an entry — shared by the
/// Add-replace and Add-insert paths so the two can never drift. Counters
/// reset per spec §4.6 (a fresh entry starts at zero anyway).
void assign_from_mod(FlowEntry& e, const FlowMod& mod, Timestamp now) {
  e.actions = mod.actions;
  e.cookie = mod.cookie;
  e.idle_timeout = mod.idle_timeout;
  e.hard_timeout = mod.hard_timeout;
  e.send_flow_removed = (mod.flags & FlowModFlags::kSendFlowRem) != 0;
  e.install_time = now;
  e.last_used = now;
  e.packet_count = 0;
  e.byte_count = 0;
}

}  // namespace

bool FlowTable::entry_outputs_to(const FlowEntry& e, std::uint16_t out_port) const {
  if (out_port == port_no(Port::None)) return true;
  return std::any_of(e.actions.begin(), e.actions.end(), [&](const Action& a) {
    const auto* out = std::get_if<ActionOutput>(&a);
    return out != nullptr && out->port == out_port;
  });
}

FlowTable::Subtable* FlowTable::subtable_for(std::uint32_t wildcards) {
  for (const auto& sub : subtables_) {
    if (sub->wildcards == wildcards) return sub.get();
  }
  return nullptr;
}

FlowTable::Subtable& FlowTable::create_subtable(std::uint32_t wildcards) {
  auto sub = std::make_unique<Subtable>();
  sub->wildcards = wildcards;
  sub->mask = FlowMask::from_wildcards(wildcards);
  subtables_.push_back(std::move(sub));
  metrics_.subtables.set(static_cast<std::int64_t>(subtables_.size()));
  return *subtables_.back();
}

void FlowTable::sort_subtables() {
  std::stable_sort(subtables_.begin(), subtables_.end(),
                   [](const auto& a, const auto& b) {
                     return a->max_priority > b->max_priority;
                   });
}

void FlowTable::prune_and_resort() {
  for (const auto& sub : subtables_) {
    sub->max_priority = 0;
    for (const auto& [key, bucket] : sub->buckets) {
      // Buckets are sorted descending, so front() carries the bucket max.
      sub->max_priority = std::max(sub->max_priority, bucket.front().priority);
    }
  }
  std::erase_if(subtables_, [](const auto& sub) { return sub->n_entries == 0; });
  sort_subtables();
  metrics_.subtables.set(static_cast<std::int64_t>(subtables_.size()));
}

void FlowTable::bump_generation() { ++generation_; }

FlowModResult FlowTable::apply(const FlowMod& mod, Timestamp now,
                               std::vector<FlowEntry>* removed) {
  switch (mod.command) {
    case FlowModCommand::Add: {
      if (mod.flags & FlowModFlags::kCheckOverlap) {
        for (const auto& sub : subtables_) {
          for (const auto& [key, bucket] : sub->buckets) {
            for (const auto& e : bucket) {
              if (e.priority == mod.priority && e.match.overlaps(mod.match) &&
                  !e.match.same_pattern(mod.match)) {
                return FlowModResult::Overlap;
              }
            }
          }
        }
      }
      const FlowKey key = FlowKey::from_match(mod.match);
      Subtable* sub = subtable_for(mod.match.wildcards);
      if (sub != nullptr) {
        // Identical match+priority replaces the entry (spec §4.6): same
        // wildcards and same masked key is exactly same_pattern().
        if (auto it = sub->buckets.find(hw::ofp::apply(sub->mask, key));
            it != sub->buckets.end()) {
          for (auto& e : it->second) {
            if (e.priority == mod.priority) {
              assign_from_mod(e, mod, now);
              metrics_.entries.set(static_cast<std::int64_t>(size_));
              bump_generation();
              return FlowModResult::Added;
            }
          }
        }
      }
      if (size_ >= capacity_) {
        metrics_.table_full.inc();
        return FlowModResult::TableFull;
      }
      if (sub == nullptr) sub = &create_subtable(mod.match.wildcards);
      FlowEntry e;
      e.match = mod.match;
      e.priority = mod.priority;
      e.seq = next_seq_++;
      assign_from_mod(e, mod, now);
      auto& bucket = sub->buckets[hw::ofp::apply(sub->mask, key)];
      // Descending priority within the bucket; later adds go after earlier
      // ones among equal priorities.
      const auto pos = std::upper_bound(
          bucket.begin(), bucket.end(), e.priority,
          [](std::uint16_t p, const FlowEntry& x) { return p > x.priority; });
      bucket.insert(pos, std::move(e));
      ++sub->n_entries;
      ++size_;
      if (sub->n_entries == 1 || mod.priority > sub->max_priority) {
        sub->max_priority = mod.priority;
        sort_subtables();
      }
      metrics_.entries.set(static_cast<std::int64_t>(size_));
      bump_generation();
      return FlowModResult::Added;
    }

    case FlowModCommand::Modify:
    case FlowModCommand::ModifyStrict: {
      const bool strict = mod.command == FlowModCommand::ModifyStrict;
      bool any = false;
      for (const auto& sub : subtables_) {
        for (auto& [key, bucket] : sub->buckets) {
          for (auto& e : bucket) {
            const bool hit = strict ? (e.priority == mod.priority &&
                                       e.match.same_pattern(mod.match))
                                    : mod.match.covers(e.match);
            if (hit) {
              e.actions = mod.actions;
              e.cookie = mod.cookie;
              any = true;
            }
          }
        }
      }
      if (any) {
        bump_generation();
        return FlowModResult::Modified;
      }
      // Per spec, MODIFY with no match behaves like ADD.
      FlowMod add = mod;
      add.command = FlowModCommand::Add;
      return apply(add, now, removed);
    }

    case FlowModCommand::Delete:
    case FlowModCommand::DeleteStrict: {
      const bool strict = mod.command == FlowModCommand::DeleteStrict;
      const bool any = remove_entries(
          [&](const FlowEntry& e) {
            return (strict ? (e.priority == mod.priority &&
                              e.match.same_pattern(mod.match))
                           : mod.match.covers(e.match)) &&
                   entry_outputs_to(e, mod.out_port);
          },
          [&](FlowEntry&& e) {
            if (removed != nullptr) removed->push_back(std::move(e));
          });
      metrics_.entries.set(static_cast<std::int64_t>(size_));
      return any ? FlowModResult::Deleted : FlowModResult::NoMatch;
    }
  }
  return FlowModResult::NoMatch;
}

const FlowEntry* FlowTable::find(const FlowKey& key,
                                 std::uint64_t* scanned) const {
  const FlowEntry* best = nullptr;
  for (const auto& sub : subtables_) {
    // Every remaining subtable tops out at or below this one; once the best
    // hit strictly outranks that bound, no further probe can win. Ties keep
    // scanning — an equal-priority entry installed earlier still beats us.
    if (best != nullptr && best->priority > sub->max_priority) break;
    if (scanned != nullptr) ++*scanned;
    const auto it = sub->buckets.find(hw::ofp::apply(sub->mask, key));
    if (it == sub->buckets.end()) continue;
    const FlowEntry& candidate = it->second.front();
    if (best == nullptr || candidate.priority > best->priority ||
        (candidate.priority == best->priority && candidate.seq < best->seq)) {
      best = &candidate;
    }
  }
  return best;
}

FlowEntry* FlowTable::lookup(const FlowKey& key, Timestamp now,
                             std::size_t bytes) {
  const telemetry::ScopedTimer timer(metrics_.lookup_ns);
  metrics_.lookups.inc();
  std::uint64_t scanned = 0;
  auto* e = const_cast<FlowEntry*>(find(key, &scanned));
  metrics_.subtable_scans.inc(scanned);
  if (e == nullptr) return nullptr;
  metrics_.matches.inc();
  // Zero-length packets still refresh the idle timeout: OF 1.0 expires on
  // packet arrival, not byte volume.
  e->last_used = now;
  ++e->packet_count;
  e->byte_count += bytes;
  return e;
}

FlowEntry* FlowTable::lookup(const Match& pkt, Timestamp now,
                             std::size_t bytes) {
  return lookup(FlowKey::from_match(pkt), now, bytes);
}

const FlowEntry* FlowTable::peek(const FlowKey& key) const {
  return find(key, nullptr);
}

const FlowEntry* FlowTable::peek(const Match& pkt) const {
  return peek(FlowKey::from_match(pkt));
}

void FlowTable::record_hit(FlowEntry& entry, Timestamp now, std::size_t bytes) {
  const telemetry::ScopedTimer timer(metrics_.lookup_ns);
  metrics_.lookups.inc();
  metrics_.matches.inc();
  entry.last_used = now;
  ++entry.packet_count;
  entry.byte_count += bytes;
}

bool FlowTable::remove_entries(
    const std::function<bool(const FlowEntry&)>& pred,
    const std::function<void(FlowEntry&&)>& sink) {
  bool any = false;
  for (const auto& sub : subtables_) {
    for (auto bit = sub->buckets.begin(); bit != sub->buckets.end();) {
      auto& bucket = bit->second;
      for (auto eit = bucket.begin(); eit != bucket.end();) {
        if (pred(*eit)) {
          sink(std::move(*eit));
          eit = bucket.erase(eit);
          --sub->n_entries;
          --size_;
          any = true;
        } else {
          ++eit;
        }
      }
      bit = bucket.empty() ? sub->buckets.erase(bit) : std::next(bit);
    }
  }
  if (any) {
    prune_and_resort();
    bump_generation();
  }
  return any;
}

std::vector<std::pair<FlowEntry, FlowRemovedReason>> FlowTable::expire(
    Timestamp now, bool suspend_idle) {
  std::vector<std::pair<FlowEntry, FlowRemovedReason>> out;
  // Hard timeout outranks idle when both have fired, matching the original
  // check order.
  const auto reason_for = [&](const FlowEntry& e) {
    if (e.hard_timeout != 0 &&
        now >= e.install_time + static_cast<Duration>(e.hard_timeout) * kSecond) {
      return FlowRemovedReason::HardTimeout;
    }
    return FlowRemovedReason::IdleTimeout;
  };
  remove_entries(
      [&](const FlowEntry& e) {
        if (e.hard_timeout != 0 &&
            now >= e.install_time +
                       static_cast<Duration>(e.hard_timeout) * kSecond) {
          return true;
        }
        return !suspend_idle && e.idle_timeout != 0 &&
               now >= e.last_used +
                          static_cast<Duration>(e.idle_timeout) * kSecond;
      },
      [&](FlowEntry&& e) {
        const FlowRemovedReason reason = reason_for(e);
        out.emplace_back(std::move(e), reason);
      });
  metrics_.entries.set(static_cast<std::int64_t>(size_));
  return out;
}

void FlowTable::clear() {
  if (size_ == 0) return;
  remove_entries([](const FlowEntry&) { return true; }, [](FlowEntry&&) {});
  metrics_.entries.set(static_cast<std::int64_t>(size_));
}

std::vector<const FlowEntry*> FlowTable::query(const Match& filter,
                                               std::uint16_t out_port) const {
  std::vector<const FlowEntry*> out;
  for (const auto& sub : subtables_) {
    for (const auto& [key, bucket] : sub->buckets) {
      for (const auto& e : bucket) {
        if (filter.covers(e.match) && entry_outputs_to(e, out_port)) {
          out.push_back(&e);
        }
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const auto* a, const auto* b) {
    // Descending priority, insertion order within a band — the order a
    // linear-scan table would naturally report.
    return a->priority != b->priority ? a->priority > b->priority
                                      : a->seq < b->seq;
  });
  return out;
}

void FlowTable::for_each(const std::function<void(const FlowEntry&)>& fn) const {
  for (const FlowEntry* e : query(Match::any())) fn(*e);
}

namespace {
constexpr std::uint32_t kFlowTableTag = snapshot::tag("FTBL");
}  // namespace

void FlowTable::save(snapshot::Writer& w) const {
  // Collect and order by insertion seq: bucket iteration order is hash-map
  // dependent, the seq order is not.
  std::vector<const FlowEntry*> entries;
  entries.reserve(size_);
  for (const auto& sub : subtables_) {
    for (const auto& [key, bucket] : sub->buckets) {
      for (const FlowEntry& e : bucket) entries.push_back(&e);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const FlowEntry* a, const FlowEntry* b) { return a->seq < b->seq; });

  ByteWriter& c = w.begin_chunk(kFlowTableTag);
  c.u64(next_seq_);
  c.u32(static_cast<std::uint32_t>(entries.size()));
  for (const FlowEntry* e : entries) {
    e->match.serialize(c);
    c.u16(e->priority);
    c.u64(e->cookie);
    c.u16(e->idle_timeout);
    c.u16(e->hard_timeout);
    c.u8(e->send_flow_removed ? 1 : 0);
    c.u64(e->install_time);
    c.u64(e->last_used);
    c.u64(e->packet_count);
    c.u64(e->byte_count);
    c.u64(e->seq);
    ByteWriter actions;
    serialize_actions(actions, e->actions);
    c.u16(static_cast<std::uint16_t>(actions.size()));
    c.raw(actions.bytes());
  }
  w.end_chunk();
}

void FlowTable::insert_restored(FlowEntry e) {
  Subtable* sub = subtable_for(e.match.wildcards);
  if (sub == nullptr) sub = &create_subtable(e.match.wildcards);
  const FlowKey key = FlowKey::from_match(e.match);
  auto& bucket = sub->buckets[hw::ofp::apply(sub->mask, key)];
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), e.priority,
      [](std::uint16_t p, const FlowEntry& x) { return p > x.priority; });
  sub->max_priority = std::max(sub->max_priority, e.priority);
  bucket.insert(pos, std::move(e));
  ++sub->n_entries;
  ++size_;
}

Status FlowTable::restore(const snapshot::Reader& r) {
  const Bytes* chunk = r.find(kFlowTableTag);
  if (chunk == nullptr) return Status::success();
  ByteReader br(*chunk);
  auto next_seq = br.u64();
  auto count = br.u32();
  if (!next_seq || !count) return make_error("flow-table chunk truncated");
  if (count.value() > capacity_) {
    return make_error("flow-table snapshot exceeds table capacity");
  }

  clear();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    FlowEntry e;
    auto match = Match::parse(br);
    if (!match) return match.error();
    e.match = match.value();
    auto priority = br.u16();
    auto cookie = br.u64();
    auto idle = br.u16();
    auto hard = br.u16();
    auto send_removed = br.u8();
    auto install_time = br.u64();
    auto last_used = br.u64();
    auto packets = br.u64();
    auto bytes = br.u64();
    auto seq = br.u64();
    auto actions_len = br.u16();
    if (!priority || !cookie || !idle || !hard || !send_removed ||
        !install_time || !last_used || !packets || !bytes || !seq ||
        !actions_len) {
      return make_error("flow-table entry truncated");
    }
    auto actions = parse_actions(br, actions_len.value());
    if (!actions) return actions.error();
    e.priority = priority.value();
    e.cookie = cookie.value();
    e.idle_timeout = idle.value();
    e.hard_timeout = hard.value();
    e.send_flow_removed = send_removed.value() != 0;
    e.install_time = install_time.value();
    e.last_used = last_used.value();
    e.packet_count = packets.value();
    e.byte_count = bytes.value();
    e.seq = seq.value();
    e.actions = std::move(actions).take();
    insert_restored(std::move(e));
  }
  next_seq_ = next_seq.value();
  sort_subtables();
  metrics_.entries.set(static_cast<std::int64_t>(size_));
  bump_generation();
  return Status::success();
}

}  // namespace hw::ofp
