// The secure channel over a real byte stream: OpenFlow 1.0 header-based
// framing on top of sim::StreamLink. A StreamFramer reassembles messages
// from partial reads, splits coalesced reads, and rejects short-header,
// bad-version and oversized frames without desyncing the stream; a
// StreamChannel binds a framer to one end of a StreamLink behind the
// ChannelEndpoint interface; a StreamConnection packages the pair as a
// SecureLink so HomeworkRouter and the fleet can swap it in for
// InProcConnection.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "openflow/channel.hpp"
#include "sim/stream.hpp"
#include "telemetry/metrics.hpp"
#include "util/bytes.hpp"

namespace hw::ofp {

/// Snapshot view over the framer's telemetry instruments.
struct StreamFramerStats {
  std::uint64_t frames_ok = 0;
  std::uint64_t frames_partial = 0;    // completed from more than one read
  std::uint64_t frames_coalesced = 0;  // shared one read with other frames
  std::uint64_t frames_bad = 0;        // rejected headers / resync runs
};

/// Incremental OpenFlow 1.0 message reassembly. feed() accepts arbitrary
/// byte chunks and emits exactly the complete messages they contain, in
/// order. Header validation (per frame at the buffer head):
///  - version must be kWireVersion (0x01),
///  - the header length field must be in [kHeaderSize, max_frame].
/// A frame with a valid length and a plausible foreign version (0x02–0x06,
/// OF 1.1–1.6) is counted bad and skipped whole (a well-framed message of
/// another OF version keeps the stream aligned). Any other rejection enters
/// a byte-wise resync scan that drops bytes until a plausible header lines
/// up; one contiguous scan run counts as one bad frame no matter how many
/// bytes it sheds.
class StreamFramer {
 public:
  struct Config {
    /// Upper bound on a single frame; headers claiming more are rejected.
    /// The OF 1.0 length field is 16 bits, so 65535 accepts everything a
    /// spec-conforming peer can send.
    std::size_t max_frame = 65535;
  };

  using FrameSink = std::function<void(const Bytes& frame)>;

  StreamFramer() = default;
  explicit StreamFramer(Config config) : config_(config) {}

  /// Consumes a read's worth of stream bytes, invoking `sink` once per
  /// complete message.
  void feed(std::span<const std::uint8_t> data, const FrameSink& sink);

  /// Drops all buffered bytes (stream reset / reconnect).
  void reset();

  [[nodiscard]] StreamFramerStats stats() const {
    return {metrics_.frames_ok.value(), metrics_.frames_partial.value(),
            metrics_.frames_coalesced.value(), metrics_.frames_bad.value()};
  }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  enum class HeaderVerdict { Ok, NeedMore, SkipFrame, Scan };
  [[nodiscard]] HeaderVerdict check_header(std::size_t& frame_len) const;

  Config config_;
  Bytes buffer_;
  bool scanning_ = false;       // inside a contiguous resync run
  bool frame_was_split_ = false;  // head frame started in an earlier feed
  struct Instruments {
    telemetry::Counter frames_ok{"openflow.channel.frames_ok"};
    telemetry::Counter frames_partial{"openflow.channel.frames_partial"};
    telemetry::Counter frames_coalesced{"openflow.channel.frames_coalesced"};
    telemetry::Counter frames_bad{"openflow.channel.frames_bad"};
  } metrics_;
};

/// ChannelEndpoint over one end of a byte-stream link: send() writes the
/// encoded message into the stream, received bytes run through a
/// StreamFramer and every reassembled message is dispatched to the handler.
class StreamChannel final : public ChannelEndpoint {
 public:
  StreamChannel(sim::StreamLink::End& end, StreamFramer::Config framing = {});

  void send(const Bytes& encoded) override;

  /// Clears reassembly state (a reconnect starts a fresh stream).
  void reset_framer() { framer_.reset(); }
  void mark_disconnected() { connected_ = false; }
  void mark_connected() { connected_ = true; }

  [[nodiscard]] const StreamFramer& framer() const { return framer_; }

 private:
  sim::StreamLink::End& end_;
  StreamFramer framer_;
};

/// SecureLink over a byte stream: the drop-in replacement for
/// InProcConnection with real wire framing underneath. disconnect() cuts
/// the stream (in-flight bytes are lost, possibly mid-message); reconnect()
/// restores it as a fresh connection with both framers reset.
class StreamConnection final : public SecureLink {
 public:
  struct Config {
    sim::StreamLink::Config link;
    StreamFramer::Config framing;
  };

  explicit StreamConnection(sim::EventLoop& loop, Config config = {},
                            Rng* rng = nullptr);
  ~StreamConnection() override;

  ChannelEndpoint& datapath_end() override;
  ChannelEndpoint& controller_end() override;

  void disconnect() override;
  void reconnect() override;
  [[nodiscard]] bool connected() const override;

  /// The underlying byte pipe, for fault injection beyond sever/restore
  /// (stall mid-frame, per-byte mangling).
  [[nodiscard]] sim::StreamLink& link() { return *link_; }
  [[nodiscard]] const StreamChannel& datapath_channel() const { return *a_; }
  [[nodiscard]] const StreamChannel& controller_channel() const { return *b_; }

 private:
  std::unique_ptr<sim::StreamLink> link_;
  std::unique_ptr<StreamChannel> a_;  // datapath side (link end a)
  std::unique_ptr<StreamChannel> b_;  // controller side (link end b)
};

}  // namespace hw::ofp
