// OpenFlow 1.0 flow match: the 12-tuple ofp_match with wildcard bits,
// faithful to the wire layout (40 bytes) used between OVS and NOX.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "util/addr.hpp"
#include "util/bytes.hpp"

namespace hw::ofp {

/// OFPP_* reserved port numbers (OpenFlow 1.0 §5.2.1).
enum class Port : std::uint16_t {
  Max = 0xff00,
  InPort = 0xfff8,
  Table = 0xfff9,
  Normal = 0xfffa,
  Flood = 0xfffb,
  All = 0xfffc,
  Controller = 0xfffd,
  Local = 0xfffe,
  None = 0xffff,
};

inline constexpr std::uint16_t port_no(Port p) {
  return static_cast<std::uint16_t>(p);
}

/// OFPFW_* wildcard flags.
struct Wildcards {
  static constexpr std::uint32_t kInPort = 1u << 0;
  static constexpr std::uint32_t kDlVlan = 1u << 1;
  static constexpr std::uint32_t kDlSrc = 1u << 2;
  static constexpr std::uint32_t kDlDst = 1u << 3;
  static constexpr std::uint32_t kDlType = 1u << 4;
  static constexpr std::uint32_t kNwProto = 1u << 5;
  static constexpr std::uint32_t kTpSrc = 1u << 6;
  static constexpr std::uint32_t kTpDst = 1u << 7;
  static constexpr int kNwSrcShift = 8;
  static constexpr int kNwDstShift = 14;
  static constexpr std::uint32_t kNwSrcMask = 0x3fu << kNwSrcShift;
  static constexpr std::uint32_t kNwDstMask = 0x3fu << kNwDstShift;
  static constexpr std::uint32_t kDlVlanPcp = 1u << 20;
  static constexpr std::uint32_t kNwTos = 1u << 21;
  static constexpr std::uint32_t kAll = 0x3fffff;
};

/// A flow match. Field validity is governed by the wildcard bitmap: a
/// wildcarded field matches anything. nw_src/nw_dst use the OF1.0 encoding
/// where the 6-bit count is the number of *ignored* low bits (0 = exact,
/// >=32 = fully wildcarded).
struct Match {
  std::uint32_t wildcards = Wildcards::kAll;
  std::uint16_t in_port = 0;
  MacAddress dl_src;
  MacAddress dl_dst;
  std::uint16_t dl_vlan = 0xffff;  // OFP_VLAN_NONE
  std::uint8_t dl_vlan_pcp = 0;
  std::uint16_t dl_type = 0;
  std::uint8_t nw_tos = 0;
  std::uint8_t nw_proto = 0;
  Ipv4Address nw_src;
  Ipv4Address nw_dst;
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;

  /// A match with every field wildcarded.
  static Match any() { return Match{}; }

  /// Exact match extracted from a packet as the datapath does on lookup
  /// (OpenFlow 1.0 §3.4 flow extraction).
  static Match from_packet(const net::ParsedPacket& p, std::uint16_t in_port);

  // Builder helpers (clear the corresponding wildcard bit).
  Match& with_in_port(std::uint16_t port);
  Match& with_dl_src(MacAddress mac);
  Match& with_dl_dst(MacAddress mac);
  Match& with_dl_type(std::uint16_t type);
  Match& with_nw_proto(std::uint8_t proto);
  Match& with_nw_src(Ipv4Address addr, int prefix_len = 32);
  Match& with_nw_dst(Ipv4Address addr, int prefix_len = 32);
  Match& with_tp_src(std::uint16_t port);
  Match& with_tp_dst(std::uint16_t port);

  /// Number of low bits ignored for nw_src comparisons (>=32: ignore all).
  [[nodiscard]] int nw_src_ignored_bits() const {
    return static_cast<int>((wildcards & Wildcards::kNwSrcMask) >>
                            Wildcards::kNwSrcShift);
  }
  [[nodiscard]] int nw_dst_ignored_bits() const {
    return static_cast<int>((wildcards & Wildcards::kNwDstMask) >>
                            Wildcards::kNwDstShift);
  }

  /// True if a packet with exact-match fields `pkt` matches this rule.
  [[nodiscard]] bool covers(const Match& pkt) const;

  /// True if this match is fully exact (no wildcarded fields).
  [[nodiscard]] bool is_exact() const { return wildcards == 0; }

  /// Strict-equality comparison used by OFPFC_MODIFY_STRICT/DELETE_STRICT:
  /// identical wildcard bitmap and identical masked 12-tuple (every
  /// non-wildcarded field, vlan PCP and IP ToS included).
  [[nodiscard]] bool same_pattern(const Match& other) const;

  /// True if some packet could match both patterns (OFPFF_CHECK_OVERLAP):
  /// every field is wildcarded in at least one of the two, or agrees.
  [[nodiscard]] bool overlaps(const Match& other) const;

  void serialize(ByteWriter& w) const;
  static Result<Match> parse(ByteReader& r);

  [[nodiscard]] std::string to_string() const;
};

inline constexpr std::size_t kMatchWireSize = 40;

}  // namespace hw::ofp
