// Canonical packed form of the OpenFlow 1.0 12-tuple. The classifier never
// compares Match structs field by field on the fast path: a packet (or rule)
// is flattened once into a FlowKey — five 64-bit words with fixed field
// positions — and a rule's wildcard bitmap becomes a FlowMask over the same
// words. Matching is then three vector ops: mask, compare, hash. This is the
// same canonicalisation Open vSwitch performs between its microflow cache
// and tuple-space classifier (Pfaff et al., NSDI 2015).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "openflow/match.hpp"

namespace hw::ofp {

/// The 12-tuple packed into five words. Field positions (word:bits, high to
/// low within the word):
///
///   w0: dl_src(63..16)  in_port(15..0)
///   w1: dl_dst(63..16)  dl_vlan(15..0)
///   w2: nw_src(63..32)  nw_dst(31..0)
///   w3: dl_type(63..48) tp_src(47..32) tp_dst(31..16) dl_vlan_pcp(15..8) nw_tos(7..0)
///   w4: nw_proto(7..0)
///
/// Unused bits are always zero, so two keys are equal iff the tuples are.
struct FlowKey {
  static constexpr std::size_t kWords = 5;
  using Words = std::array<std::uint64_t, kWords>;

  Words w{};

  /// Flattens a Match's field values (wildcards ignored: wildcarded fields
  /// contribute whatever raw value the Match carries, exactly like the
  /// field-by-field comparisons did).
  static FlowKey from_match(const Match& m);

  /// Reconstructs a Match carrying this key's field values under the given
  /// wildcard bitmap. from_match(to_match(0)) round-trips exactly.
  [[nodiscard]] Match to_match(std::uint32_t wildcards = 0) const;

  // Field accessors (diagnostics and conversion; not used on the fast path).
  [[nodiscard]] std::uint16_t in_port() const { return static_cast<std::uint16_t>(w[0]); }
  [[nodiscard]] std::uint64_t dl_src_bits() const { return w[0] >> 16; }
  [[nodiscard]] std::uint64_t dl_dst_bits() const { return w[1] >> 16; }
  [[nodiscard]] std::uint16_t dl_vlan() const { return static_cast<std::uint16_t>(w[1]); }
  [[nodiscard]] std::uint32_t nw_src() const { return static_cast<std::uint32_t>(w[2] >> 32); }
  [[nodiscard]] std::uint32_t nw_dst() const { return static_cast<std::uint32_t>(w[2]); }
  [[nodiscard]] std::uint16_t dl_type() const { return static_cast<std::uint16_t>(w[3] >> 48); }
  [[nodiscard]] std::uint16_t tp_src() const { return static_cast<std::uint16_t>(w[3] >> 32); }
  [[nodiscard]] std::uint16_t tp_dst() const { return static_cast<std::uint16_t>(w[3] >> 16); }
  [[nodiscard]] std::uint8_t dl_vlan_pcp() const { return static_cast<std::uint8_t>(w[3] >> 8); }
  [[nodiscard]] std::uint8_t nw_tos() const { return static_cast<std::uint8_t>(w[3]); }
  [[nodiscard]] std::uint8_t nw_proto() const { return static_cast<std::uint8_t>(w[4]); }

  /// FNV-1a over the five words; good enough dispersion for the subtable
  /// hash maps and the microflow cache, and one multiply per word.
  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint64_t word : w) {
      h ^= word;
      h *= 0x100000001b3ull;
    }
    return h;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// Per-bit validity mask over FlowKey words, derived from an OFPFW_*
/// wildcard bitmap: exact fields are all-ones, wildcarded fields all-zeros,
/// nw_src/nw_dst carry their CIDR prefix mask. Two Matches with the same
/// wildcard bitmap always derive the same FlowMask.
struct FlowMask {
  FlowKey::Words w{};

  static FlowMask from_wildcards(std::uint32_t wildcards);

  friend bool operator==(const FlowMask&, const FlowMask&) = default;
};

/// key & mask, word-wise: the canonical "relevant bits" of a key under a
/// rule's mask. A rule covers a packet iff
/// apply(mask, rule_key) == apply(mask, packet_key).
inline FlowKey apply(const FlowMask& mask, const FlowKey& key) {
  FlowKey out;
  for (std::size_t i = 0; i < FlowKey::kWords; ++i) out.w[i] = key.w[i] & mask.w[i];
  return out;
}

/// Hash functor for unordered containers keyed by FlowKey.
struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};

}  // namespace hw::ofp
