// The "secure channel" of the paper's OpenFlow switch description: a
// bidirectional ordered byte-message pipe between datapath and controller.
// Messages are always the encoded wire form; an in-process implementation
// with optional latency stands in for the TCP/TLS transport.
#pragma once

#include <functional>
#include <memory>

#include "sim/event_loop.hpp"
#include "util/bytes.hpp"

namespace hw::ofp {

/// One end of a connection. send() transmits to the peer; incoming messages
/// arrive through the handler registered with on_receive().
class ChannelEndpoint {
 public:
  using Handler = std::function<void(const Bytes& encoded)>;

  virtual ~ChannelEndpoint() = default;
  virtual void send(const Bytes& encoded) = 0;
  void on_receive(Handler handler) { handler_ = std::move(handler); }
  [[nodiscard]] bool connected() const { return connected_; }

  struct Stats {
    std::uint64_t tx_messages = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_messages = 0;
    std::uint64_t rx_bytes = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  void dispatch(const Bytes& encoded) {
    ++stats_.rx_messages;
    stats_.rx_bytes += encoded.size();
    if (handler_) handler_(encoded);
  }
  void note_sent(std::size_t size) {
    ++stats_.tx_messages;
    stats_.tx_bytes += size;
  }

  Handler handler_;
  bool connected_ = true;
  Stats stats_;
};

/// An in-process connection joining two endpoints through the event loop,
/// preserving ordering and (optionally) modelling channel latency.
class InProcConnection {
 public:
  explicit InProcConnection(sim::EventLoop& loop, Duration latency = 0);

  ~InProcConnection();
  ChannelEndpoint& datapath_end();
  ChannelEndpoint& controller_end();

  /// Simulates connection loss: subsequent sends are dropped.
  void disconnect();

 private:
  class End;
  std::unique_ptr<End> a_;
  std::unique_ptr<End> b_;
};

}  // namespace hw::ofp
