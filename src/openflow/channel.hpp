// The "secure channel" of the paper's OpenFlow switch description: a
// bidirectional ordered byte-message pipe between datapath and controller.
// Messages are always the encoded wire form; an in-process implementation
// with optional latency stands in for the TCP/TLS transport.
#pragma once

#include <functional>
#include <memory>

#include "sim/event_loop.hpp"
#include "telemetry/metrics.hpp"
#include "util/bytes.hpp"

namespace hw::ofp {

/// One end of a connection. send() transmits to the peer; incoming messages
/// arrive through the handler registered with on_receive().
class ChannelEndpoint {
 public:
  using Handler = std::function<void(const Bytes& encoded)>;

  virtual ~ChannelEndpoint() = default;
  virtual void send(const Bytes& encoded) = 0;
  void on_receive(Handler handler) { handler_ = std::move(handler); }
  /// Observation tap: sees every delivered message (after reassembly, before
  /// the handler). Tests compare delivered sequences across transports.
  void set_tap(Handler tap) { tap_ = std::move(tap); }
  [[nodiscard]] bool connected() const { return connected_; }

  /// Snapshot view over the endpoint's telemetry instruments.
  struct Stats {
    std::uint64_t tx_messages = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_messages = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_dropped = 0;  // sends swallowed while disconnected
  };
  [[nodiscard]] Stats stats() const {
    return {metrics_.tx_messages.value(), metrics_.tx_bytes.value(),
            metrics_.rx_messages.value(), metrics_.rx_bytes.value(),
            metrics_.tx_dropped.value()};
  }

 protected:
  void dispatch(const Bytes& encoded) {
    metrics_.rx_messages.inc();
    metrics_.rx_bytes.inc(encoded.size());
    if (tap_) tap_(encoded);
    if (handler_) handler_(encoded);
  }
  void note_sent(std::size_t size) {
    metrics_.tx_messages.inc();
    metrics_.tx_bytes.inc(size);
  }
  void note_dropped() { metrics_.tx_dropped.inc(); }

  Handler handler_;
  Handler tap_;
  bool connected_ = true;

 private:
  struct Instruments {
    telemetry::Counter tx_messages{"openflow.channel.tx_messages"};
    telemetry::Counter tx_bytes{"openflow.channel.tx_bytes"};
    telemetry::Counter rx_messages{"openflow.channel.rx_messages"};
    telemetry::Counter rx_bytes{"openflow.channel.rx_bytes"};
    telemetry::Counter tx_dropped{"openflow.channel.tx_dropped"};
  } metrics_;
};

/// A secure-channel transport joining a datapath endpoint to a controller
/// endpoint, with connection-loss fault hooks. Implementations: the
/// whole-message InProcConnection below and the byte-stream StreamConnection
/// (stream_channel.hpp).
class SecureLink {
 public:
  virtual ~SecureLink() = default;
  virtual ChannelEndpoint& datapath_end() = 0;
  virtual ChannelEndpoint& controller_end() = 0;
  /// Simulates connection loss: subsequent sends are dropped.
  virtual void disconnect() = 0;
  /// Re-establishes a severed connection. Messages dropped during the outage
  /// stay lost (TCP would have reset); the endpoints must re-handshake.
  virtual void reconnect() = 0;
  [[nodiscard]] virtual bool connected() const = 0;
};

/// An in-process connection joining two endpoints through the event loop,
/// preserving ordering and (optionally) modelling channel latency.
class InProcConnection final : public SecureLink {
 public:
  explicit InProcConnection(sim::EventLoop& loop, Duration latency = 0);

  ~InProcConnection() override;
  ChannelEndpoint& datapath_end() override;
  ChannelEndpoint& controller_end() override;

  void disconnect() override;
  void reconnect() override;
  [[nodiscard]] bool connected() const override;

 private:
  class End;
  std::unique_ptr<End> a_;
  std::unique_ptr<End> b_;
};

}  // namespace hw::ofp
