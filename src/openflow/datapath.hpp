// The Open vSwitch stand-in: an OpenFlow 1.0 datapath with physical ports,
// a flow table, a packet buffer and a secure channel to the controller
// ("dp0" in the paper's Figure 5). Frames enter via port FrameSinks, are
// matched against the flow table, and misses go to the controller as
// packet-in messages.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "openflow/channel.hpp"
#include "openflow/flow_table.hpp"
#include "openflow/messages.hpp"
#include "openflow/microflow_cache.hpp"
#include "sim/link.hpp"
#include "telemetry/metrics.hpp"
#include "util/token_bucket.hpp"

namespace hw::ofp {

struct PortCounters {
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;
};

/// Snapshot view over the datapath's telemetry instruments.
struct DatapathStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t packet_outs = 0;
  std::uint64_t flow_mods = 0;
  std::uint64_t flow_removed_sent = 0;
  std::uint64_t buffer_evictions = 0;
  std::uint64_t microflow_hits = 0;
  std::uint64_t microflow_misses = 0;
  std::uint64_t microflow_invalidations = 0;
  std::uint64_t failsafe_entries = 0;
  std::uint64_t failsafe_dropped_packet_ins = 0;
  std::uint64_t restarts = 0;
};

class Datapath {
 public:
  struct Config {
    std::uint64_t datapath_id = 1;
    std::size_t n_buffers = 256;
    std::uint16_t miss_send_len = 128;
    std::size_t table_capacity = 4096;
    std::size_t microflow_capacity = 4096;  // exact-match cache entries
    Duration expiry_interval = kSecond;  // timeout sweep period
    /// Channel silence after which the datapath assumes the controller is
    /// dead and enters fail-safe mode (deny-new / permit-established). Must
    /// comfortably exceed the controller's echo-probe interval; 0 disables.
    Duration controller_dead_interval = 15 * kSecond;
  };

  /// `metrics` scopes the datapath's (and its flow table's) instruments;
  /// defaults to the calling thread's active registry.
  Datapath(sim::EventLoop& loop, Config config,
           telemetry::MetricRegistry& metrics =
               telemetry::MetricRegistry::current());
  ~Datapath();
  Datapath(const Datapath&) = delete;
  Datapath& operator=(const Datapath&) = delete;

  /// Attaches the secure channel to the controller and sends HELLO.
  void connect(ChannelEndpoint& channel);

  /// Registers a physical port. `out` receives frames the datapath emits on
  /// that port (i.e. it is the attached link towards the device).
  void add_port(std::uint16_t port, std::string name, MacAddress hw_addr,
                sim::FrameSink* out);
  void remove_port(std::uint16_t port);
  /// Sink for frames *arriving* on `port` — hand this to the link.
  sim::FrameSink* ingress(std::uint16_t port);

  /// Ingress entry point (links call this through ingress() adapters).
  void receive_frame(std::uint16_t in_port, const Bytes& frame);

  [[nodiscard]] std::uint64_t id() const { return config_.datapath_id; }
  [[nodiscard]] FlowTable& table() { return table_; }
  [[nodiscard]] const FlowTable& table() const { return table_; }
  [[nodiscard]] DatapathStats stats() const {
    return {metrics_.packet_ins.value(), metrics_.packet_outs.value(),
            metrics_.flow_mods.value(), metrics_.flow_removed_sent.value(),
            metrics_.buffer_evictions.value(), metrics_.microflow_hits.value(),
            metrics_.microflow_misses.value(),
            metrics_.microflow_invalidations.value(),
            metrics_.failsafe_entries.value(),
            metrics_.failsafe_dropped_packet_ins.value(),
            metrics_.restarts.value()};
  }
  [[nodiscard]] const MicroflowCache& microflow_cache() const {
    return microflow_;
  }
  [[nodiscard]] const PortCounters* port_counters(std::uint16_t port) const;
  [[nodiscard]] std::vector<PhyPort> port_descriptions() const;

  /// Observation hook: sees every FlowMod as it is applied. Benches use it
  /// to timestamp flow installation without touching the datapath's logic.
  void set_flow_mod_observer(std::function<void(const FlowMod&)> fn) {
    flow_mod_observer_ = std::move(fn);
  }

  /// Runs one expiry sweep immediately (normally driven by the timer). Also
  /// the fail-safe watchdog: entered when the channel has been silent for
  /// controller_dead_interval, left on the next channel message.
  void sweep_timeouts();

  /// While fail-safe, new flows are denied (packet-ins dropped instead of
  /// queued towards a dead controller) but established flows keep forwarding
  /// — their idle timeouts are suspended so they outlive the outage.
  [[nodiscard]] bool fail_safe() const { return fail_safe_; }

  /// Cold restart: all volatile state (flow table, microflow cache, packet
  /// buffers, learned MACs, fail-safe latch) is lost; the out-of-band queue
  /// configuration survives. Re-sends HELLO so the controller re-handshakes
  /// and re-installs flows.
  void restart();

  // -- Port queues (rate limiting) --------------------------------------------
  // OpenFlow 1.0 exposes queues via OFPAT_ENQUEUE but configures them out of
  // band (ovs-vsctl / ovsdb in deployment). These calls are that side
  // channel: a policing queue drops frames beyond its token-bucket rate.
  void configure_queue(std::uint16_t port, std::uint32_t queue_id,
                       std::uint64_t rate_bps, std::uint64_t burst_bytes);
  void remove_queue(std::uint16_t port, std::uint32_t queue_id);
  struct QueueCounters {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t dropped = 0;
  };
  [[nodiscard]] const QueueCounters* queue_counters(std::uint16_t port,
                                                    std::uint32_t queue_id) const;

 private:
  struct PortState {
    std::string name;
    MacAddress hw_addr;
    sim::FrameSink* out = nullptr;
    PortCounters counters;
    std::unique_ptr<sim::CallbackSink> ingress_adapter;
  };

  void handle_channel_message(const Bytes& encoded);
  void handle_flow_mod(const FlowMod& mod, std::uint32_t xid);
  void handle_packet_out(const PacketOut& po, std::uint32_t xid);
  void handle_stats_request(const StatsRequest& req, std::uint32_t xid);
  void process_frame(std::uint16_t in_port, const Bytes& frame);
  /// Executes an action list on a frame (possibly rewriting headers).
  void apply_actions(const ActionList& actions, std::uint16_t in_port,
                     Bytes frame);
  void output(std::uint16_t out_port, std::uint16_t in_port, const Bytes& frame,
              std::uint16_t controller_max_len = 0);
  void flood(std::uint16_t in_port, const Bytes& frame, bool include_in_port);
  void do_normal(std::uint16_t in_port, const Bytes& frame);
  void send_packet_in(std::uint16_t in_port, const Bytes& frame,
                      PacketInReason reason, std::uint16_t max_len);
  void send_to_controller(Message msg, std::uint32_t xid = 0);
  void send_error(ErrorType type, std::uint16_t code, std::uint32_t xid,
                  const Bytes& offending);
  std::optional<Bytes> take_buffered(std::uint32_t buffer_id);

  sim::EventLoop& loop_;
  Config config_;
  FlowTable table_;
  // Exact-match fast path in front of table_; handles validated against
  // table_.generation().
  MicroflowCache microflow_;
  std::map<std::uint16_t, PortState> ports_;
  ChannelEndpoint* channel_ = nullptr;
  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : packet_ins{reg, "openflow.datapath.packet_ins"},
          packet_outs{reg, "openflow.datapath.packet_outs"},
          flow_mods{reg, "openflow.datapath.flow_mods"},
          flow_removed_sent{reg, "openflow.datapath.flow_removed_sent"},
          buffer_evictions{reg, "openflow.datapath.buffer_evictions"},
          microflow_hits{reg, "openflow.datapath.microflow_hits"},
          microflow_misses{reg, "openflow.datapath.microflow_misses"},
          microflow_invalidations{
              reg, "openflow.datapath.microflow_invalidations"},
          failsafe_entries{reg, "openflow.datapath.failsafe_entries"},
          failsafe_dropped_packet_ins{
              reg, "openflow.datapath.failsafe_dropped_packet_ins"},
          restarts{reg, "openflow.datapath.restarts"},
          fail_safe{reg, "openflow.datapath.fail_safe"} {}
    telemetry::Counter packet_ins;
    telemetry::Counter packet_outs;
    telemetry::Counter flow_mods;
    telemetry::Counter flow_removed_sent;
    telemetry::Counter buffer_evictions;
    telemetry::Counter microflow_hits;
    telemetry::Counter microflow_misses;
    telemetry::Counter microflow_invalidations;
    telemetry::Counter failsafe_entries;
    telemetry::Counter failsafe_dropped_packet_ins;
    telemetry::Counter restarts;
    telemetry::Gauge fail_safe;
  } metrics_;
  std::uint32_t next_xid_ = 1;
  std::function<void(const FlowMod&)> flow_mod_observer_;
  bool fail_safe_ = false;
  Timestamp last_channel_rx_ = 0;

  // Packet buffer: miss frames held for controller-directed release.
  struct BufferedPacket {
    std::uint32_t id = 0;
    std::uint16_t in_port = 0;
    Bytes frame;
  };
  std::vector<BufferedPacket> buffers_;
  std::uint32_t next_buffer_id_ = 1;

  // L2 learning table backing the NORMAL action ("normal processing
  // pipeline" in the paper's action taxonomy).
  std::map<MacAddress, std::uint16_t> mac_table_;

  // Policing queues keyed by (port, queue_id).
  struct Queue {
    TokenBucket bucket{0, 0};
    QueueCounters counters;
  };
  std::map<std::pair<std::uint16_t, std::uint32_t>, Queue> queues_;

  std::unique_ptr<sim::PeriodicTimer> expiry_timer_;
};

}  // namespace hw::ofp
