#include "residency/residency.hpp"

#include <algorithm>

namespace hw::residency {

ResidencyManager::ResidencyManager(ResidencyPolicy policy,
                                   telemetry::MetricRegistry& metrics)
    : policy_(policy), metrics_(metrics) {}

void ResidencyManager::reset(std::size_t homes, Timestamp now) {
  records_.assign(homes, Record{});
  for (auto& r : records_) r.last_active = now;
  resident_ = homes;
  refresh_gauges();
}

void ResidencyManager::touch(std::size_t id, Timestamp now) {
  if (id >= records_.size()) return;
  records_[id].last_active = std::max(records_[id].last_active, now);
}

void ResidencyManager::set_pinned(std::size_t id, bool pinned) {
  if (id >= records_.size()) return;
  records_[id].pinned = pinned;
}

HomeState ResidencyManager::state(std::size_t id) const {
  return id < records_.size() ? records_[id].state : HomeState::Resident;
}

Timestamp ResidencyManager::next_wakeup(std::size_t id) const {
  return id < records_.size() ? records_[id].next_wakeup : kNever;
}

Timestamp ResidencyManager::last_active(std::size_t id) const {
  return id < records_.size() ? records_[id].last_active : 0;
}

std::vector<std::size_t> ResidencyManager::select_evictions(
    Timestamp barrier) const {
  std::vector<std::size_t> out;
  if (policy_.max_resident == 0 && policy_.idle_watermark == 0) return out;

  std::vector<std::uint8_t> evict(records_.size(), 0);
  std::size_t live = resident_;

  // Watermark pass: every unpinned resident home idle long enough goes.
  if (policy_.idle_watermark > 0) {
    for (std::size_t id = 0; id < records_.size(); ++id) {
      const Record& r = records_[id];
      if (r.state != HomeState::Resident || r.pinned) continue;
      if (barrier >= r.last_active &&
          barrier - r.last_active >= policy_.idle_watermark) {
        evict[id] = 1;
        --live;
      }
    }
  }

  // Cap pass: LRU by last_active among the survivors, smaller home id on
  // ties — a stable order no matter what container produced the records.
  if (policy_.max_resident > 0 && live > policy_.max_resident) {
    std::vector<std::size_t> survivors;
    for (std::size_t id = 0; id < records_.size(); ++id) {
      const Record& r = records_[id];
      if (r.state == HomeState::Resident && !r.pinned && !evict[id]) {
        survivors.push_back(id);
      }
    }
    std::sort(survivors.begin(), survivors.end(),
              [this](std::size_t a, std::size_t b) {
                if (records_[a].last_active != records_[b].last_active) {
                  return records_[a].last_active < records_[b].last_active;
                }
                return a < b;
              });
    for (const std::size_t id : survivors) {
      if (live <= policy_.max_resident) break;
      evict[id] = 1;
      --live;
    }
  }

  for (std::size_t id = 0; id < records_.size(); ++id) {
    if (evict[id]) out.push_back(id);
  }
  return out;
}

std::vector<std::size_t> ResidencyManager::due_wakeups(
    Timestamp barrier) const {
  std::vector<std::size_t> out;
  if (!policy_.wake_on_due) return out;
  for (std::size_t id = 0; id < records_.size(); ++id) {
    const Record& r = records_[id];
    if (r.state == HomeState::Hibernated && r.next_wakeup <= barrier) {
      out.push_back(id);
    }
  }
  return out;
}

void ResidencyManager::on_hibernated(std::size_t id, Timestamp barrier,
                                     Timestamp next_wakeup) {
  if (id >= records_.size()) return;
  Record& r = records_[id];
  if (r.state == HomeState::Hibernated) return;
  r.state = HomeState::Hibernated;
  r.hibernated_at = barrier;
  r.next_wakeup = next_wakeup;
  --resident_;
  metrics_.evictions.inc();
  refresh_gauges();
}

void ResidencyManager::on_resumed(std::size_t id, Timestamp barrier,
                                  std::uint64_t resume_wall_ns) {
  if (id >= records_.size()) return;
  Record& r = records_[id];
  if (r.state == HomeState::Resident) return;
  r.state = HomeState::Resident;
  r.last_active = std::max(r.last_active, barrier);
  r.next_wakeup = kNever;
  ++resident_;
  metrics_.resumes.inc();
  metrics_.resume_ns.record(resume_wall_ns);
  refresh_gauges();
}

void ResidencyManager::refresh_gauges() {
  metrics_.resident.set(static_cast<std::int64_t>(resident_));
  metrics_.hibernated.set(
      static_cast<std::int64_t>(records_.size() - resident_));
  metrics_.fleet_resident_homes.set(static_cast<std::int64_t>(resident_));
}

}  // namespace hw::residency
