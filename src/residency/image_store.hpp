// ImageStore: content-addressed storage for hibernated homes' snapshot
// images. An image (the PR 5 chunked-TLV container) is split into its chunks
// on put(); chunk payloads are pooled by (tag, CRC32, length) with a byte
// compare on collision, so the near-identical images quiet homes produce
// share storage instead of multiplying it. get() reassembles the original
// image bit-exactly (the container encoding is canonical: header fields are
// pure functions of the chunk sequence).
//
// Optionally file-backed: spill(key) writes the image to `spill_dir` (atomic
// tmp+rename via SnapshotCoordinator) and drops the in-memory chunks; get()
// transparently reloads from disk. Thread-safe — fleet workers hibernate
// homes concurrently; gauges are written under the same mutex, so they must
// only be read once the caller has synchronized with every writer (the fleet
// barrier handshake / pool join provides that).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "snapshot/coordinator.hpp"
#include "telemetry/metrics.hpp"
#include "util/result.hpp"

namespace hw::residency {

class ImageStore {
 public:
  struct Config {
    /// Pool identical chunk payloads across images. Off = every image keeps
    /// private chunks (accounting baseline for the dedup gauge).
    bool dedup = true;
    /// When non-empty, spill(key) persists images here as img-<key>.hwsn.
    std::string spill_dir;
  };

  explicit ImageStore(telemetry::MetricRegistry& metrics =
                          telemetry::MetricRegistry::current());
  explicit ImageStore(Config config,
                      telemetry::MetricRegistry& metrics =
                          telemetry::MetricRegistry::current());
  ~ImageStore();
  ImageStore(const ImageStore&) = delete;
  ImageStore& operator=(const ImageStore&) = delete;

  /// Validates and stores `image` under `key` (replacing any previous
  /// image). Rejects images that fail container validation untouched.
  Status put(std::uint64_t key, const snapshot::SnapshotImage& image);
  /// Reassembles the stored image bit-exactly (reloading from disk when the
  /// key was spilled).
  [[nodiscard]] Result<snapshot::SnapshotImage> get(std::uint64_t key) const;
  [[nodiscard]] bool contains(std::uint64_t key) const;
  void erase(std::uint64_t key);

  /// Moves one image out of memory onto disk (requires spill_dir).
  Status spill(std::uint64_t key);

  [[nodiscard]] std::size_t size() const;
  /// Sum of original image sizes currently held in memory.
  [[nodiscard]] std::uint64_t logical_bytes() const;
  /// Actual in-memory bytes after chunk pooling (headers + unique chunks).
  [[nodiscard]] std::uint64_t stored_bytes() const;
  /// logical_bytes() - stored_bytes(): what content addressing saved.
  [[nodiscard]] std::uint64_t deduped_bytes() const;

 private:
  /// Pooled chunk payload; refs counts how many stored images reference it.
  struct PoolChunk {
    Bytes payload;
    std::size_t refs = 0;
  };
  /// Pool key: (tag, CRC32, length). Collisions resolved by byte compare
  /// against every pooled payload under the key.
  using PoolKey = std::array<std::uint32_t, 3>;

  struct Entry {
    Timestamp captured_at = 0;
    std::uint64_t image_bytes = 0;  // original encoded size
    std::vector<std::pair<std::uint32_t, PoolChunk*>> chunks;
    bool spilled = false;
  };

  void release_chunks_locked(Entry& entry);
  void refresh_gauges_locked();
  [[nodiscard]] std::string spill_path(std::uint64_t key) const;

  Config config_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;
  std::map<PoolKey, std::vector<std::unique_ptr<PoolChunk>>> pool_;
  std::uint64_t logical_bytes_ = 0;  // in-memory entries only
  std::uint64_t stored_bytes_ = 0;

  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : images{reg, "residency.images"},
          image_bytes{reg, "residency.image_bytes"},
          image_bytes_logical{reg, "residency.image_bytes_logical"},
          image_bytes_deduped{reg, "residency.image_bytes_deduped"},
          fleet_image_bytes{reg, "fleet.image_bytes"} {}
    telemetry::Gauge images;
    telemetry::Gauge image_bytes;
    telemetry::Gauge image_bytes_logical;
    telemetry::Gauge image_bytes_deduped;
    /// Fleet-wide resident-memory accounting surface (exported through hwdb
    /// Metrics next to fleet.resident_homes).
    telemetry::Gauge fleet_image_bytes;
  } metrics_;
};

}  // namespace hw::residency
