#include "residency/image_store.hpp"

#include <cstdio>

#include "snapshot/codec.hpp"

namespace hw::residency {
namespace {

/// Container framing: 20-byte image header, 12 bytes (tag/len/crc) per
/// chunk. Framing is attributed to the first pooled copy of a chunk so an
/// image with no shared chunks accounts for exactly its encoded size —
/// deduped_bytes() is then zero unless pooling actually shared something.
constexpr std::uint64_t kHeaderBytes = 20;
constexpr std::uint64_t kChunkOverhead = 12;

}  // namespace

ImageStore::ImageStore(telemetry::MetricRegistry& metrics)
    : ImageStore(Config{}, metrics) {}

ImageStore::ImageStore(Config config, telemetry::MetricRegistry& metrics)
    : config_(std::move(config)), metrics_(metrics) {}

ImageStore::~ImageStore() = default;

Status ImageStore::put(std::uint64_t key,
                       const snapshot::SnapshotImage& image) {
  auto reader = snapshot::Reader::parse(image.bytes);
  if (!reader) return reader.error();

  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    release_chunks_locked(it->second);
    if (it->second.spilled) (void)std::remove(spill_path(key).c_str());
    entries_.erase(it);
  }

  Entry entry;
  entry.captured_at = image.captured_at;
  entry.image_bytes = image.bytes.size();
  reader.value().for_each_chunk([&](std::uint32_t tag, const Bytes& payload) {
    const PoolKey pkey{tag, snapshot::crc32(payload),
                       static_cast<std::uint32_t>(payload.size())};
    auto& bucket = pool_[pkey];
    PoolChunk* found = nullptr;
    if (config_.dedup) {
      for (auto& candidate : bucket) {
        if (candidate->payload == payload) {
          found = candidate.get();
          break;
        }
      }
    }
    if (found == nullptr) {
      bucket.push_back(std::make_unique<PoolChunk>());
      found = bucket.back().get();
      found->payload = payload;
      stored_bytes_ += kChunkOverhead + payload.size();
    }
    ++found->refs;
    entry.chunks.emplace_back(tag, found);
  });
  logical_bytes_ += entry.image_bytes;
  stored_bytes_ += kHeaderBytes;
  entries_.emplace(key, std::move(entry));
  refresh_gauges_locked();
  return Status::success();
}

Result<snapshot::SnapshotImage> ImageStore::get(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return make_error("residency: no image for key " + std::to_string(key));
  }
  if (it->second.spilled) {
    return snapshot::SnapshotCoordinator::read_file(spill_path(key));
  }
  snapshot::Writer w;
  for (const auto& [tag, chunk] : it->second.chunks) {
    ByteWriter& c = w.begin_chunk(tag);
    c.raw(chunk->payload);
    w.end_chunk();
  }
  return snapshot::SnapshotImage{std::move(w).finish(),
                                 it->second.captured_at};
}

bool ImageStore::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) != 0;
}

void ImageStore::erase(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  release_chunks_locked(it->second);
  if (it->second.spilled) (void)std::remove(spill_path(key).c_str());
  entries_.erase(it);
  refresh_gauges_locked();
}

Status ImageStore::spill(std::uint64_t key) {
  if (config_.spill_dir.empty()) {
    return make_error("residency: image store has no spill_dir");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return make_error("residency: no image for key " + std::to_string(key));
  }
  if (it->second.spilled) return Status::success();
  snapshot::Writer w;
  for (const auto& [tag, chunk] : it->second.chunks) {
    ByteWriter& c = w.begin_chunk(tag);
    c.raw(chunk->payload);
    w.end_chunk();
  }
  const snapshot::SnapshotImage image{std::move(w).finish(),
                                      it->second.captured_at};
  if (auto s = snapshot::SnapshotCoordinator::write_file(spill_path(key),
                                                         image);
      !s.ok()) {
    return s;
  }
  release_chunks_locked(it->second);
  it->second.spilled = true;
  refresh_gauges_locked();
  return Status::success();
}

std::size_t ImageStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t ImageStore::logical_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logical_bytes_;
}

std::uint64_t ImageStore::stored_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stored_bytes_;
}

std::uint64_t ImageStore::deduped_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logical_bytes_ > stored_bytes_ ? logical_bytes_ - stored_bytes_ : 0;
}

void ImageStore::release_chunks_locked(Entry& entry) {
  if (entry.spilled) return;  // chunks already released at spill time
  for (const auto& [tag, chunk] : entry.chunks) {
    if (--chunk->refs > 0) continue;
    const PoolKey pkey{tag, snapshot::crc32(chunk->payload),
                       static_cast<std::uint32_t>(chunk->payload.size())};
    auto pit = pool_.find(pkey);
    if (pit == pool_.end()) continue;
    stored_bytes_ -= kChunkOverhead + chunk->payload.size();
    auto& bucket = pit->second;
    for (auto bit = bucket.begin(); bit != bucket.end(); ++bit) {
      if (bit->get() == chunk) {
        bucket.erase(bit);
        break;
      }
    }
    if (bucket.empty()) pool_.erase(pit);
  }
  logical_bytes_ -= entry.image_bytes;
  stored_bytes_ -= kHeaderBytes;
  entry.chunks.clear();
}

void ImageStore::refresh_gauges_locked() {
  metrics_.images.set(static_cast<std::int64_t>(entries_.size()));
  metrics_.image_bytes.set(static_cast<std::int64_t>(stored_bytes_));
  metrics_.image_bytes_logical.set(static_cast<std::int64_t>(logical_bytes_));
  metrics_.image_bytes_deduped.set(static_cast<std::int64_t>(
      logical_bytes_ > stored_bytes_ ? logical_bytes_ - stored_bytes_ : 0));
  metrics_.fleet_image_bytes.set(static_cast<std::int64_t>(stored_bytes_));
}

std::string ImageStore::spill_path(std::uint64_t key) const {
  return config_.spill_dir + "/img-" + std::to_string(key) + ".hwsn";
}

}  // namespace hw::residency
