#include "residency/profile.hpp"

#include "util/rand.hpp"

namespace hw::residency {

std::uint64_t FleetProfile::home_seed(std::uint64_t fleet_seed,
                                      std::size_t home_id) {
  std::uint64_t id_state = static_cast<std::uint64_t>(home_id);
  std::uint64_t state = fleet_seed ^ splitmix64(id_state);
  std::uint64_t seed = splitmix64(state);
  // The scenario stack treats seed 0 as degenerate; nudge away from it.
  return seed != 0 ? seed : 0x9e3779b97f4a7c15ULL;
}

std::vector<workload::DeviceSpec> FleetProfile::derive_devices(
    std::uint64_t home_seed, std::size_t devices_per_home) {
  std::vector<workload::DeviceSpec> specs;
  specs.reserve(devices_per_home);
  std::uint64_t draw = home_seed ^ 0xbf58476d1ce4e5b9ULL;
  for (std::size_t i = 0; i < devices_per_home; ++i) {
    workload::DeviceSpec spec;
    spec.name = "dev" + std::to_string(i);
    spec.kind = static_cast<workload::DeviceKind>(splitmix64(draw) % 6);
    if (splitmix64(draw) % 2 == 0) {
      spec.position =
          sim::Position{static_cast<double>(1 + splitmix64(draw) % 14),
                        static_cast<double>(1 + splitmix64(draw) % 14)};
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::shared_ptr<const FleetProfile> FleetProfile::build(
    std::uint64_t fleet_seed, std::size_t homes,
    std::size_t devices_per_home) {
  auto profile = std::make_shared<FleetProfile>();
  profile->fleet_seed = fleet_seed;
  profile->devices_per_home = devices_per_home;
  profile->home_seeds.reserve(homes);
  profile->device_specs.reserve(homes);
  for (std::size_t h = 0; h < homes; ++h) {
    const std::uint64_t seed = home_seed(fleet_seed, h);
    profile->home_seeds.push_back(seed);
    profile->device_specs.push_back(derive_devices(seed, devices_per_home));
  }
  return profile;
}

}  // namespace hw::residency
