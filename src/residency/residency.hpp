// ResidencyManager: decouples "a home exists" from "a home is resident".
// Tracks per-home residency state (Resident <-> Hibernated), each home's
// last external stimulus (virtual time) and each hibernated home's
// next-wakeup virtual time (the earliest event pending in its loop when it
// was torn down — the contract that no timer is ever missed: either the
// fleet wakes the home before that instant, or the wake's catch-up replay
// fires the timer at exactly that virtual time).
//
// Eviction policy (docs/residency.md) is deterministic: at a decision
// barrier, every unpinned resident home idle for at least `idle_watermark`
// hibernates; then, while more than `max_resident` homes remain resident,
// the least-recently-active unpinned survivor hibernates, ties broken by
// smaller home id. The selection is a pure function of (policy, activity
// record, barrier), so a fleet's residency schedule — and with it the
// fingerprint of any run that logs its stimuli — is reproducible.
//
// The manager only decides and accounts; the owning fleet performs the
// actual capture/teardown/rebuild and reports transitions back via
// on_hibernated()/on_resumed().
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/types.hpp"

namespace hw::residency {

enum class HomeState : std::uint8_t { Resident, Hibernated };

struct ResidencyPolicy {
  /// Hard cap on simultaneously resident homes (0 = uncapped).
  std::size_t max_resident = 0;
  /// Hibernate homes idle at least this long (0 = never idle-evict).
  Duration idle_watermark = 0;
  /// Page a hibernated home back when its next scheduled event comes due.
  bool wake_on_due = true;
  /// Boot homes one-per-worker and hibernate each immediately after its
  /// first aligned barrier, so peak residency during start stays at the
  /// worker count instead of the fleet size (density benches).
  bool hibernate_on_start = false;

  [[nodiscard]] bool enabled() const {
    return max_resident > 0 || idle_watermark > 0 || hibernate_on_start;
  }
};

class ResidencyManager {
 public:
  /// next_wakeup value for a hibernated home with an empty event queue.
  static constexpr Timestamp kNever = ~Timestamp{0};

  explicit ResidencyManager(ResidencyPolicy policy,
                            telemetry::MetricRegistry& metrics =
                                telemetry::MetricRegistry::current());

  [[nodiscard]] const ResidencyPolicy& policy() const { return policy_; }

  /// (Re)initialises the record table: `homes` homes, all Resident, last
  /// active at `now`.
  void reset(std::size_t homes, Timestamp now);

  /// Records an external stimulus for `id` (RPC mutation, operator
  /// subscription, roam partner activity): refreshes LRU recency.
  void touch(std::size_t id, Timestamp now);
  /// Pinned homes are never auto-evicted (they still count toward the cap).
  void set_pinned(std::size_t id, bool pinned);

  [[nodiscard]] HomeState state(std::size_t id) const;
  [[nodiscard]] bool hibernated(std::size_t id) const {
    return state(id) == HomeState::Hibernated;
  }
  [[nodiscard]] std::size_t homes() const { return records_.size(); }
  [[nodiscard]] std::size_t resident_count() const { return resident_; }
  [[nodiscard]] std::size_t hibernated_count() const {
    return records_.size() - resident_;
  }
  [[nodiscard]] Timestamp next_wakeup(std::size_t id) const;
  [[nodiscard]] Timestamp last_active(std::size_t id) const;

  /// Deterministic eviction decision at `barrier` (see file comment).
  /// Returns home ids to hibernate, ascending.
  [[nodiscard]] std::vector<std::size_t> select_evictions(
      Timestamp barrier) const;
  /// Hibernated homes whose next scheduled event is due by `barrier`
  /// (empty when wake_on_due is off).
  [[nodiscard]] std::vector<std::size_t> due_wakeups(Timestamp barrier) const;

  /// The fleet hibernated `id` at `barrier`; its loop's earliest pending
  /// event was at `next_wakeup` (kNever when idle).
  void on_hibernated(std::size_t id, Timestamp barrier, Timestamp next_wakeup);
  /// The fleet paged `id` back in at `barrier`, spending `resume_wall_ns`
  /// wall-clock on restore + catch-up.
  void on_resumed(std::size_t id, Timestamp barrier,
                  std::uint64_t resume_wall_ns);

 private:
  struct Record {
    HomeState state = HomeState::Resident;
    Timestamp last_active = 0;
    Timestamp hibernated_at = 0;
    Timestamp next_wakeup = kNever;
    bool pinned = false;
  };

  void refresh_gauges();

  ResidencyPolicy policy_;
  std::vector<Record> records_;
  std::size_t resident_ = 0;

  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : resident{reg, "residency.resident"},
          hibernated{reg, "residency.hibernated"},
          evictions{reg, "residency.evictions"},
          resumes{reg, "residency.resumes"},
          resume_ns{reg, "residency.resume_ns"},
          fleet_resident_homes{reg, "fleet.resident_homes"} {}
    telemetry::Gauge resident;
    telemetry::Gauge hibernated;
    telemetry::Counter evictions;
    telemetry::Counter resumes;
    telemetry::Histogram resume_ns;
    /// Fleet-wide resident-memory accounting surface (exported through hwdb
    /// Metrics next to fleet.image_bytes).
    telemetry::Gauge fleet_resident_homes;
  } metrics_;
};

}  // namespace hw::residency
