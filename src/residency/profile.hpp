// FleetProfile: the immutable per-fleet configuration every home shares —
// seed derivation and the seed-derived device population tables. All three
// fleet planes (fleet::FleetRunner, fleet::SharedFleetRunner, live::LiveFleet)
// used to re-derive this per home on every build; holding it behind a
// shared_ptr means N homes (and every hibernate/wake cycle of a home) read
// one read-only table instead of carrying private copies, shrinking the
// per-home resident footprint (docs/residency.md).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "workload/scenario.hpp"

namespace hw::residency {

struct FleetProfile {
  std::uint64_t fleet_seed = 0;
  std::size_t devices_per_home = 0;
  /// home_seed(fleet_seed, k) for every home, precomputed.
  std::vector<std::uint64_t> home_seeds;
  /// Seed-derived device population per home (name, kind, wireless position).
  std::vector<std::vector<workload::DeviceSpec>> device_specs;

  /// Seed for home `home_id` under fleet seed `fleet_seed`: a SplitMix64
  /// stream keyed by (fleet_seed, home_id), the id mixed through one
  /// splitmix step first so neighbouring homes decorrelate even for tiny
  /// fleet seeds. fleet::FleetRunner::home_seed delegates here.
  [[nodiscard]] static std::uint64_t home_seed(std::uint64_t fleet_seed,
                                               std::size_t home_id);

  /// Derives the population for one home seed (the draw sequence every
  /// runner historically used inline — kept in one place so the planes can
  /// never drift apart).
  [[nodiscard]] static std::vector<workload::DeviceSpec> derive_devices(
      std::uint64_t home_seed, std::size_t devices_per_home);

  /// Builds the shared profile for a fleet.
  [[nodiscard]] static std::shared_ptr<const FleetProfile> build(
      std::uint64_t fleet_seed, std::size_t homes,
      std::size_t devices_per_home);
};

}  // namespace hw::residency
