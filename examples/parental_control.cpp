// Figure 4 scenario: the paper's canonical policy — "the kids can only use
// Facebook on weekdays after they've finished their homework" — composed in
// the visual policy editor, enforced as per-device network and DNS access
// restrictions, and lifted when a suitably responsible adult inserts the
// USB key.
#include <cstdio>

#include "ui/policy_editor.hpp"
#include "workload/scenario.hpp"

namespace {

void try_resolve(hw::workload::HomeScenario& home, hw::sim::Host& host,
                 const std::string& name) {
  std::string outcome = "(no answer)";
  host.resolve(name, [&](hw::Result<hw::Ipv4Address> r, const std::string&) {
    outcome = r ? "resolved to " + r.value().to_string()
                : "refused (" + r.error().message + ")";
  });
  home.run_for(4 * hw::kSecond);
  std::printf("  %-22s -> %s\n", name.c_str(), outcome.c_str());
}

}  // namespace

int main() {
  using namespace hw;

  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  workload::HomeScenario home(config);
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  home.wait_all_bound();

  auto* console = home.device("kids-console");
  const std::string kids_mac = console->host->mac().to_string();

  // Tag the console as a kids device (metadata via the control API).
  {
    homework::HttpRequest req;
    req.method = "PUT";
    req.path = "/api/devices/" + kids_mac + "/metadata";
    req.body = R"({"name": "Kids console", "tags": ["kids"]})";
    home.router().control_api().handle(req);
  }

  // Compose the cartoon policy and submit it.
  ui::PolicyEditor editor(home.router().control_api());
  const auto policy_doc = editor.kids_facebook_weekdays_example();
  editor.submit(policy_doc);
  std::printf("installed policy: %s\n\n", policy_doc.description.empty()
                                              ? policy_doc.id.c_str()
                                              : policy_doc.description.c_str());

  // The virtual epoch is a Monday 00:00; move to Monday 17:00 (policy hours).
  home.run_for(17 * kHour - home.loop().now() % kDay);

  std::printf("Monday 17:00, policy active, no key inserted:\n");
  try_resolve(home, *console->host, "www.facebook.com");
  try_resolve(home, *console->host, "video.netflix.com");

  std::printf("\nthe TV is not a 'kids' device, so it is unrestricted:\n");
  try_resolve(home, *home.device("living-room-tv")->host, "video.netflix.com");

  // A responsible adult inserts the unlock key — restrictions lift.
  std::printf("\nparent inserts the USB key:\n");
  const auto key = ui::PolicyEditor::make_unlock_key("parent-key");
  const auto slot = home.router().policy().usb().insert(key);
  try_resolve(home, *console->host, "video.netflix.com");

  // The key is removed — restrictions return.
  std::printf("\nparent removes the key:\n");
  home.router().policy().usb().remove(slot);
  try_resolve(home, *console->host, "video.netflix.com");
  try_resolve(home, *console->host, "www.facebook.com");

  const auto& dns_stats = home.router().dns().stats();
  std::printf("\nDNS proxy: %llu queries, %llu blocked, %llu forwarded\n",
              static_cast<unsigned long long>(dns_stats.queries),
              static_cast<unsigned long long>(dns_stats.blocked),
              static_cast<unsigned long long>(dns_stats.forwarded));

  // Epilogue: a gentler policy — instead of blocking, throttle the console
  // to 80 kbit/s so homework-adjacent browsing stays possible but streaming
  // does not. Enforced as an OpenFlow enqueue onto a policing queue.
  std::printf("\n--- bandwidth cap instead of a block ---\n");
  {
    // Retract the site restriction first: the cap *replaces* the block.
    homework::HttpRequest del;
    del.method = "DELETE";
    del.path = "/api/policies/" + policy_doc.id;
    home.router().control_api().handle(del);

    homework::HttpRequest req;
    req.method = "POST";
    req.path = "/api/policies";
    policy::PolicyDocument cap;
    cap.id = "kids-throttle";
    cap.who.tags = {"kids"};
    cap.rate_limit_bps = 80'000;
    req.body = cap.to_json().dump();
    home.router().control_api().handle(req);
  }
  auto measure = [&](const char* label) {
    const Ipv4Address netflix{45, 57, 3, 1};
    const std::uint64_t sent_before = console->host->stats().tx_bytes;
    for (int i = 0; i < 300; ++i) {
      console->host->send_udp(netflix, 5000, 1935, 1000);
      home.run_for(10 * kMillisecond);
    }
    const std::uint32_t queue_id = console->host->ip()->value() & 0xffff;
    const auto* q = home.router().datapath().queue_counters(
        home.router().config().uplink_port, queue_id);
    std::printf("  %-18s offered %.0f KB, delivered upstream %.0f KB\n", label,
                static_cast<double>(console->host->stats().tx_bytes -
                                    sent_before) / 1024.0,
                q == nullptr ? -1.0
                             : static_cast<double>(q->tx_bytes) / 1024.0);
  };
  measure("with 80 kb/s cap:");
  std::printf("  (flow counters in hwdb still show the *offered* traffic —\n"
              "   the cap polices at the egress queue)\n");
  return 0;
}
