// An operator shell over the Homework router: the sort of CLI a downstream
// integrator wires to the control API. Run with no arguments for a canned
// demo session; run with `-` to feed commands on stdin.
//
// Commands:
//   status                  router summary (GET /api/status)
//   devices                 control-board view of all devices
//   permit <mac> | deny <mac>
//   name <mac> <label>
//   interrogate <mac>       traffic/names/link summary for one device
//   query <CQL>             raw hwdb query
//   apps                    start every device's application mix
//   run <seconds>           advance virtual time
//   help, quit
#include <cstdio>
#include <iostream>
#include <sstream>

#include "ui/control_board.hpp"
#include "util/strings.hpp"
#include "workload/scenario.hpp"

using namespace hw;

namespace {

class Shell {
 public:
  Shell() : home_(make_config()) {
    home_.populate_standard_home();
    home_.start();
    home_.start_dhcp_all();
    home_.run_for(3 * kSecond);
  }

  static workload::HomeScenario::Config make_config() {
    workload::HomeScenario::Config config;
    config.router.admission = homework::DeviceRegistry::AdmissionDefault::Pending;
    return config;
  }

  bool execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    std::printf("hw> %s\n", line.c_str());

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf("commands: status devices permit deny name interrogate "
                  "query apps run help quit\n");
    } else if (cmd == "status") {
      http("GET", "/api/status", "");
    } else if (cmd == "devices") {
      ui::DhcpControlBoard board(home_.router().control_api());
      board.refresh();
      std::printf("%s", board.render().c_str());
    } else if (cmd == "permit" || cmd == "deny") {
      std::string mac;
      in >> mac;
      http("POST", "/api/devices/" + mac + "/" + cmd, "");
      if (cmd == "permit") {
        // A client that exhausted its DISCOVER retries while pending sits
        // idle until the user pokes it (re-toggling Wi-Fi in real life).
        for (auto& d : home_.devices()) {
          if (d.host->mac().to_string() == mac &&
              d.host->dhcp_state() == sim::DhcpClientState::Init) {
            d.host->start_dhcp();
          }
        }
      }
      home_.run_for(5 * kSecond);  // give the client time to (re)lease
    } else if (cmd == "name") {
      std::string mac, label;
      in >> mac;
      std::getline(in, label);
      Json body(JsonObject{});
      body.set("name", std::string(trim(label)));
      http("PUT", "/api/devices/" + mac + "/metadata", body.dump());
    } else if (cmd == "interrogate") {
      std::string mac;
      in >> mac;
      http("GET", "/api/devices/" + mac + "/interrogate", "");
    } else if (cmd == "query") {
      std::string q;
      std::getline(in, q);
      auto rs = home_.router().db().query(trim(q));
      if (!rs.ok()) {
        std::printf("error: %s\n", rs.error().message.c_str());
      } else {
        std::printf("%s", rs.value().to_string().c_str());
      }
    } else if (cmd == "apps") {
      home_.start_apps_all();
      std::printf("application mixes started\n");
    } else if (cmd == "run") {
      int seconds = 10;
      in >> seconds;
      home_.run_for(static_cast<Duration>(seconds) * kSecond);
      std::printf("advanced to t=%llus\n",
                  static_cast<unsigned long long>(home_.loop().now() / kSecond));
    } else {
      std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
    }
    std::printf("\n");
    return true;
  }

  std::string mac_of(const std::string& device) {
    auto* d = home_.device(device);
    return d == nullptr ? "" : d->host->mac().to_string();
  }

 private:
  void http(const std::string& method, const std::string& path,
            const std::string& body) {
    homework::HttpRequest req;
    req.method = method;
    // Split query string if present.
    const auto qpos = path.find('?');
    req.path = qpos == std::string::npos ? path : path.substr(0, qpos);
    req.body = body;
    const auto resp = home_.router().control_api().handle(req);
    std::printf("[%d]\n", resp.status);
    auto parsed = Json::parse(resp.body);
    std::printf("%s\n", parsed.ok() ? parsed.value().dump(2).c_str()
                                    : resp.body.c_str());
  }

  workload::HomeScenario home_;
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;

  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!shell.execute(line)) break;
    }
    return 0;
  }

  // Canned demo session: admit Tom's laptop, run the evening, inspect it.
  const std::string tom = shell.mac_of("toms-mac-air");
  const std::vector<std::string> script = {
      "status",
      "devices",
      "permit " + tom,
      "name " + tom + " Tom's Mac Air",
      "apps",
      "run 30",
      "interrogate " + tom,
      "query SELECT device, app, sum(bytes) FROM Flows [RANGE 30 SECONDS] "
      "GROUP BY device, app",
      "devices",
      "quit",
  };
  for (const auto& line : script) {
    if (!shell.execute(line)) break;
  }
  return 0;
}
