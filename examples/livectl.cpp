// livectl: the operator CLI for the live operations plane (docs/liveops.md).
// Talks the hwdb RPC dialect's live verbs over loopback UDP: subscribe to
// telemetry series, tail one series as delta frames arrive, issue control
// mutations, and ask the server to prove the time-travel contract with a
// Replay verification.
//
// Modes:
//   livectl --demo   [--homes N] [--seed S]
//       Self-contained end-to-end demo (also the integration test): boots an
//       attacked fleet under a LiveUdpServer, subscribes over the real
//       socket, watches the attack move, checkpoints, quarantines the
//       attacker mid-run, verifies the mutation measurably changed the
//       outcome, then has the server replay the run from its checkpoint and
//       prove the fingerprint matches. Prints PASS and exits 0.
//   livectl --serve  [--port P] [--homes N] [--seed S] [--barriers N]
//       Runs an attacked fleet under a LiveUdpServer, pumping one barrier
//       per 50 ms of wall time. Prints the bound port.
//   livectl --connect PORT [--series PATTERN] [--home H] [--tail N]
//                          [--mutate VERB] [--replay]
//       Attaches to a running server: subscribes, tails N frames, optionally
//       issues one mutation (checkpoint | pause | resume | step |
//       quarantine:HOME:MAC | release:HOME:MAC | admit:HOME:NAME |
//       expel:HOME:NAME | hibernate:HOME | wake:HOME) and/or a Replay
//       verification. hibernate/wake drive the residency plane
//       (docs/residency.md): hibernate pages a home out to its snapshot
//       image at the next aligned barrier, wake pages it back in.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "live/client.hpp"
#include "live/server.hpp"

using namespace hw;

namespace {

struct Options {
  enum class Mode { Demo, Serve, Connect } mode = Mode::Demo;
  std::size_t homes = 4;
  std::uint64_t seed = 7;
  std::uint16_t port = 0;
  std::size_t barriers = 0;  // serve: 0 = run until killed
  std::string series = "*";
  std::uint32_t home = hwdb::rpc::kAllHomes;
  std::size_t tail = 8;
  std::string mutate;
  bool replay = false;
};

live::LiveConfig attacked_fleet(const Options& opt) {
  live::LiveConfig config;
  config.homes = opt.homes;
  config.threads = 2;
  config.seed = opt.seed;
  config.attack.kind = live::LiveAttack::Kind::DhcpFlood;
  config.attack.home = 0;
  return config;
}

/// Parses "quarantine:0:aa:bb:cc:dd:ee:ff"-style mutate specs.
bool parse_mutation(const std::string& spec, live::Mutation& out) {
  const auto colon = spec.find(':');
  const std::string verb = spec.substr(0, colon);
  std::uint32_t home = 0;
  std::string arg;
  if (colon != std::string::npos) {
    const std::string rest = spec.substr(colon + 1);
    const auto second = rest.find(':');
    home = static_cast<std::uint32_t>(std::strtoul(rest.c_str(), nullptr, 10));
    if (second != std::string::npos) arg = rest.substr(second + 1);
  }
  if (verb == "checkpoint") {
    out = live::checkpoint();
  } else if (verb == "pause") {
    out = live::pause();
  } else if (verb == "resume") {
    out = live::resume_clock();
  } else if (verb == "step") {
    out = live::step();
  } else if (verb == "quarantine") {
    out = live::quarantine(home, arg);
  } else if (verb == "release") {
    out = live::release(home, arg);
  } else if (verb == "admit") {
    out = live::admit(home, arg);
  } else if (verb == "expel") {
    out = live::expel(home, arg);
  } else if (verb == "hibernate") {
    out = live::hibernate_home(home);
  } else if (verb == "wake") {
    out = live::wake_home(home);
  } else {
    return false;
  }
  return true;
}

int fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  return 1;
}

// ---------------------------------------------------------------------------
// --demo

int run_demo(const Options& opt) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);

  live::LiveFleet fleet(attacked_fleet(opt), registry);
  fleet.start();
  live::LiveUdpServer server(fleet, 0, registry);
  if (!server.ok()) return fail("cannot bind loopback UDP socket");
  std::printf("live server on 127.0.0.1:%u, %zu homes, attack on home 0\n",
              server.port(), opt.homes);

  hwdb::rpc::UdpClientTransport transport(server.port());
  if (!transport.ok()) return fail("cannot open client socket");
  live::LiveClient ctl(transport.client());

  // One wall-clock exchange: drain client->server, then server->client.
  const auto exchange = [&] {
    for (int i = 0; i < 20; ++i) {
      server.poll();
      if (transport.wait(5)) break;
    }
    transport.poll();
  };
  // One virtual barrier: advance the fleet, then deliver its frames.
  const auto pump_to = [&](Timestamp t) {
    while (fleet.now() < t) {
      server.poll();
      server.server().pump();
      transport.wait(5);
      transport.poll();
    }
  };

  // Subscribe: the merged fleet, and home 0's operator gauges.
  std::uint64_t fleet_sub = 0, home_sub = 0;
  ctl.subscribe_series("*", hwdb::rpc::kAllHomes, 1, 64,
                       [&](Result<std::uint64_t> id) {
                         if (id.ok()) fleet_sub = id.value();
                       });
  exchange();
  ctl.subscribe_series("live.home.*", 0, 1, 64,
                       [&](Result<std::uint64_t> id) {
                         if (id.ok()) home_sub = id.value();
                       });
  exchange();
  if (fleet_sub == 0 || home_sub == 0) return fail("subscribe handshake");
  std::printf("subscribed: fleet sub %llu, home-0 sub %llu\n",
              static_cast<unsigned long long>(fleet_sub),
              static_cast<unsigned long long>(home_sub));

  const auto home_series = [&](const char* name) {
    const live::View* v = ctl.view(home_sub);
    if (v == nullptr) return 0.0;
    const auto it = v->values.find(name);
    return it == v->values.end() ? 0.0 : it->second;
  };

  // Watch the attack start: hostile DISCOVERs begin at 3.013s.
  pump_to(3 * kSecond + 250 * kMillisecond);
  const double sent_early = home_series("live.home.attack_sent");
  pump_to(4 * kSecond + 250 * kMillisecond);
  const double sent_late = home_series("live.home.attack_sent");
  std::printf("attack telemetry moving: attack_sent %.0f -> %.0f\n",
              sent_early, sent_late);
  if (!(sent_late > sent_early) || sent_early <= 0.0) {
    return fail("attack telemetry is not moving");
  }

  // Checkpoint (lands on the 5s capture grid), then quarantine the attacker.
  bool ok = false;
  Timestamp applied = 0;
  ctl.mutate(live::checkpoint(), [&](bool o, Timestamp at, std::string) {
    ok = o;
    applied = at;
  });
  exchange();
  if (!ok) return fail("checkpoint mutation rejected");
  std::printf("checkpoint scheduled for t=%.2fs\n", to_seconds(applied));
  pump_to(5 * kSecond + 500 * kMillisecond);

  const std::string mac = fleet.device_mac(0, "guest");
  ok = false;
  ctl.mutate(live::quarantine(0, mac), [&](bool o, Timestamp at, std::string) {
    ok = o;
    applied = at;
  });
  exchange();
  if (!ok) return fail("quarantine mutation rejected");
  std::printf("quarantine of %s lands at t=%.2fs\n", mac.c_str(),
              to_seconds(applied));

  // Tail the home-0 gauges while the block policy takes hold.
  std::size_t tailed = 0;
  ctl.on_frame([&](const live::View& v) {
    if (v.sub_id != home_sub || tailed >= opt.tail) return;
    ++tailed;
    const auto drops = v.values.find("live.home.block_drops");
    std::printf("  t=%.2fs frame %llu: block_drops %.0f\n", to_seconds(v.vtime),
                static_cast<unsigned long long>(v.last_seq),
                drops == v.values.end() ? 0.0 : drops->second);
  });
  pump_to(8 * kSecond);
  ctl.on_frame({});

  if (home_series("live.home.block_drops") <= 0.0) {
    return fail("quarantine did not measurably block the attacker");
  }
  std::printf("quarantine enforced: block_drops %.0f, attack_sent %.0f\n",
              home_series("live.home.block_drops"),
              home_series("live.home.attack_sent"));

  // Ask the server to prove the time-travel contract: restore its last
  // checkpoint, re-apply the logged mutation tail (including our
  // quarantine), and compare fingerprints.
  ok = false;
  std::string error;
  live::Mutation replay;
  replay.kind = hwdb::rpc::MutateKind::Replay;
  replay.home = hwdb::rpc::kAllHomes;
  ctl.mutate(replay, [&](bool o, Timestamp, std::string e) {
    ok = o;
    error = std::move(e);
  });
  exchange();
  if (!ok) {
    std::fprintf(stderr, "FAIL: replay verification: %s\n", error.c_str());
    return 1;
  }
  std::printf("replay verification: fingerprint bit-identical\n");

  const live::View* fv = ctl.view(fleet_sub);
  std::printf("stream health: %llu frames, %llu dups, %llu gaps, %llu "
              "dropped\nPASS\n",
              static_cast<unsigned long long>(fv->frames),
              static_cast<unsigned long long>(fv->dups),
              static_cast<unsigned long long>(fv->gaps),
              static_cast<unsigned long long>(fv->dropped));
  return 0;
}

// ---------------------------------------------------------------------------
// --serve / --connect

int run_serve(const Options& opt) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);

  live::LiveFleet fleet(attacked_fleet(opt), registry);
  fleet.start();
  live::LiveUdpServer server(fleet, opt.port, registry);
  if (!server.ok()) return fail("cannot bind loopback UDP socket");
  std::printf("live server on 127.0.0.1:%u (%zu homes, seed %llu)\n",
              server.port(), opt.homes,
              static_cast<unsigned long long>(opt.seed));
  std::fflush(stdout);

  for (std::size_t b = 0; opt.barriers == 0 || b < opt.barriers; ++b) {
    server.poll();
    server.server().pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return 0;
}

int run_connect(const Options& opt) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);

  hwdb::rpc::UdpClientTransport transport(opt.port);
  if (!transport.ok()) return fail("cannot open client socket");
  live::LiveClient ctl(transport.client());

  // The stream pushes frames continuously, so any wait() can be woken by a
  // DeltaPush instead of the response we sent for — poll until the request's
  // own callback resolves.
  const auto exchange_until = [&](const bool& done) {
    for (int i = 0; i < 40 && !done; ++i) {
      transport.wait(500);
      transport.poll();
    }
  };

  std::uint64_t sub = 0;
  bool sub_done = false;
  ctl.subscribe_series(opt.series, opt.home, 1, 64,
                       [&](Result<std::uint64_t> id) {
                         if (id.ok()) sub = id.value();
                         sub_done = true;
                       });
  exchange_until(sub_done);
  if (sub == 0) return fail("subscribe handshake (is --serve running?)");

  if (!opt.mutate.empty()) {
    live::Mutation m;
    if (!parse_mutation(opt.mutate, m)) return fail("bad --mutate spec");
    bool ok = false;
    bool done = false;
    std::string error;
    Timestamp applied = 0;
    ctl.mutate(m, [&](bool o, Timestamp at, std::string e) {
      ok = o;
      applied = at;
      error = std::move(e);
      done = true;
    });
    exchange_until(done);
    if (!ok) {
      std::fprintf(stderr, "FAIL: mutation: %s\n", error.c_str());
      return 1;
    }
    std::printf("mutation applies at t=%.2fs\n", to_seconds(applied));
  }

  std::size_t tailed = 0;
  ctl.on_frame([&](const live::View& v) {
    ++tailed;
    std::printf("t=%.2fs seq %llu %s: %zu series (%llu dropped)\n",
                to_seconds(v.vtime),
                static_cast<unsigned long long>(v.last_seq),
                v.synced ? "synced" : "unsynced", v.values.size(),
                static_cast<unsigned long long>(v.dropped));
  });
  while (tailed < opt.tail) {
    if (!transport.wait(2000)) return fail("stream timed out");
    transport.poll();
  }

  if (opt.replay) {
    bool ok = false;
    bool done = false;
    std::string error;
    live::Mutation replay;
    replay.kind = hwdb::rpc::MutateKind::Replay;
    replay.home = hwdb::rpc::kAllHomes;
    ctl.mutate(replay, [&](bool o, Timestamp, std::string e) {
      ok = o;
      error = std::move(e);
      done = true;
    });
    exchange_until(done);
    if (!ok) {
      std::fprintf(stderr, "FAIL: replay verification: %s\n", error.c_str());
      return 1;
    }
    std::printf("replay verification: fingerprint bit-identical\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--demo") == 0) {
      opt.mode = Options::Mode::Demo;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      opt.mode = Options::Mode::Serve;
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      opt.mode = Options::Mode::Connect;
      opt.port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--homes") == 0) {
      opt.homes = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--port") == 0) {
      opt.port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--barriers") == 0) {
      opt.barriers = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--series") == 0) {
      opt.series = next();
    } else if (std::strcmp(argv[i], "--home") == 0) {
      opt.home = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--tail") == 0) {
      opt.tail = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--mutate") == 0) {
      opt.mutate = next();
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      opt.replay = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  switch (opt.mode) {
    case Options::Mode::Demo:
      return run_demo(opt);
    case Options::Mode::Serve:
      return run_serve(opt);
    case Options::Mode::Connect:
      return run_connect(opt);
  }
  return 2;
}
