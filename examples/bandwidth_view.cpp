// Figure 1 scenario: a busy evening at home, rendered as the per-device
// per-protocol bandwidth display (the iPhone interface). The display is a
// periodic hwdb subscriber; we print one "screen" every 10 virtual seconds.
#include <cstdio>

#include "ui/bandwidth_monitor.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace hw;

  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  workload::HomeScenario home(config);
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  if (!home.wait_all_bound()) {
    std::fprintf(stderr, "devices failed to lease\n");
    return 1;
  }

  ui::BandwidthMonitor monitor(home.router().db(),
                               {.window_secs = 10, .refresh = kSecond});
  for (auto& d : home.devices()) {
    monitor.set_label(d.host->mac().to_string(), d.name);
  }

  // The family settles in for the evening.
  home.start_apps_all();
  for (int screen = 0; screen < 6; ++screen) {
    home.run_for(10 * kSecond);
    monitor.refresh();
    std::printf("t=%llus\n%s\n",
                static_cast<unsigned long long>(home.loop().now() / kSecond),
                monitor.render().c_str());
  }

  // Tom pauses his download — the display shows the drop, which is exactly
  // the feedback loop the paper describes ("view the impact of their actions
  // ... as they change their behavior, e.g., by pausing applications").
  auto* tom = home.device("toms-mac-air");
  for (auto& app : tom->apps) app->stop();
  home.run_for(15 * kSecond);
  monitor.refresh();
  std::printf("after Tom pauses his apps (t=%llus)\n%s\n",
              static_cast<unsigned long long>(home.loop().now() / kSecond),
              monitor.render().c_str());

  home.stop_apps_all();
  return 0;
}
