// Figure 3 scenario: a new device appears, shows up on the situated control
// display as "requesting access", the user interrogates it, supplies
// metadata, and drags it between permitted/denied — each drag exercising the
// control API and taking effect at the DHCP server.
#include <cstdio>

#include "ui/control_board.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace hw;

  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::Pending;
  workload::HomeScenario home(config);
  home.add_device({"toms-mac-air", workload::DeviceKind::Laptop,
                   sim::Position{8, 3}});
  home.start();

  ui::DhcpControlBoard board(home.router().control_api());

  // The laptop asks for an address; nothing is granted yet.
  home.start_dhcp("toms-mac-air");
  home.run_for(3 * kSecond);
  board.refresh();
  std::printf("%s\n", board.render().c_str());

  auto* tom = home.device("toms-mac-air");
  const std::string mac = tom->host->mac().to_string();

  // The user names the device and drags it to "permitted".
  board.set_label(mac, "Tom's Mac Air");
  board.drag_to_permitted(mac);
  home.run_for(5 * kSecond);  // client retries DISCOVER and now gets a lease
  board.refresh();
  std::printf("after drag to permitted:\n%s\n", board.render().c_str());
  std::printf("laptop address: %s\n\n",
              tom->host->ip() ? tom->host->ip()->to_string().c_str() : "(none)");

  // Later the user changes their mind: drag to denied. The DHCP server NAKs
  // the next renewal and the device loses its lease.
  board.drag_to_denied(mac);
  tom->host->start_dhcp();  // device re-requests, gets NAK
  home.run_for(3 * kSecond);
  board.refresh();
  std::printf("after drag to denied:\n%s\n", board.render().c_str());
  std::printf("laptop address now: %s\n",
              tom->host->ip() ? tom->host->ip()->to_string().c_str() : "(none)");

  const auto& stats = home.router().dhcp().stats();
  std::printf("\nDHCP server: %llu discovers, %llu offers, %llu acks, %llu naks\n",
              static_cast<unsigned long long>(stats.discovers),
              static_cast<unsigned long long>(stats.offers),
              static_cast<unsigned long long>(stats.acks),
              static_cast<unsigned long long>(stats.naks));
  return 0;
}
