// Quickstart: boot the Homework router, admit two devices through the DHCP
// control path, generate some traffic, and query the hwdb measurement plane
// — the whole of Figure 5 in ~60 lines of user code.
#include <cstdio>

#include "ui/bandwidth_monitor.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace hw;

  // 1. A home: router with default config, two devices.
  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::Pending;
  workload::HomeScenario home(config);
  home.add_device({"toms-mac-air", workload::DeviceKind::Laptop,
                   sim::Position{8, 3}});
  home.add_device({"living-room-tv", workload::DeviceKind::Tv,
                   sim::Position{2, 7}});
  home.start();

  // 2. Devices ask for addresses; with Pending admission they wait for the
  //    user's decision (they appear on the Figure 3 board), so permit them.
  home.start_dhcp_all();
  home.run_for(2 * kSecond);
  std::printf("devices seen by the router: %zu\n", home.router().registry().size());

  home.permit_all();
  home.start_dhcp_all();
  const bool bound = home.wait_all_bound();
  std::printf("all devices leased: %s\n", bound ? "yes" : "no");
  for (auto& d : home.devices()) {
    std::printf("  %-16s %s -> %s\n", d.name.c_str(),
                d.host->mac().to_string().c_str(),
                d.host->ip() ? d.host->ip()->to_string().c_str() : "(none)");
  }

  // 3. Traffic: each device runs its natural app mix for a virtual minute.
  home.start_apps_all();
  home.run_for(60 * kSecond);

  // 4. The measurement plane: ask hwdb what happened (same CQL variant the
  //    paper's interfaces use).
  auto& db = home.router().db();
  auto flows = db.query(
      "SELECT device, app, sum(bytes), count(*) FROM Flows "
      "[RANGE 60 SECONDS] GROUP BY device, app");
  if (flows) {
    std::printf("\nFlows table (last 60s):\n%s", flows.value().to_string().c_str());
  }

  // 5. The Figure 1 display view of the same data.
  ui::BandwidthMonitor monitor(db, {.window_secs = 30, .refresh = kSecond});
  for (auto& d : home.devices()) {
    monitor.set_label(d.host->mac().to_string(), d.name);
  }
  monitor.refresh();
  std::printf("\n%s", monitor.render().c_str());

  home.stop_apps_all();
  return bound ? 0 : 1;
}
