// A satellite display talking to hwdb over its real UDP RPC interface —
// the deployment shape of the paper's interfaces (the iPhone app and the
// Arduino artifact were network clients of the router's measurement plane).
//
// This example runs the router simulation and, alongside it, a genuine
// AF_INET UDP server/client pair on loopback: rows exported by the router
// are re-inserted into a second "edge" database through the socket, queried
// back over the socket, and a subscription pushes updates — exactly what a
// remote display does.
#include <cstdio>

#include "hwdb/udp_transport.hpp"
#include "workload/scenario.hpp"

using namespace hw;

int main() {
  // 1. The home: router + devices + a minute of traffic.
  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  workload::HomeScenario home(config);
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  if (!home.wait_all_bound()) {
    std::fprintf(stderr, "scenario failed to lease devices\n");
    return 1;
  }
  home.start_apps_all();
  home.run_for(30 * kSecond);
  home.stop_apps_all();

  // 2. An "edge" hwdb reachable over real UDP on loopback (port auto-picked).
  sim::EventLoop edge_loop;
  hwdb::Database edge_db(edge_loop);
  if (auto s = edge_db.create_table(
          hwdb::Schema("Summary", {{"device", hwdb::ColumnType::Text},
                                   {"app", hwdb::ColumnType::Text},
                                   {"bytes", hwdb::ColumnType::Int}}),
          1024);
      !s.ok()) {
    std::fprintf(stderr, "edge table: %s\n", s.error().message.c_str());
    return 1;
  }
  hwdb::rpc::UdpServerTransport server(edge_db, 0);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot bind UDP server\n");
    return 1;
  }
  std::printf("edge hwdb listening on udp://127.0.0.1:%u\n\n", server.port());

  hwdb::rpc::UdpClientTransport client(server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "cannot connect UDP client\n");
    return 1;
  }

  // Pump helper: serve both ends until quiescent.
  auto pump = [&] {
    for (int i = 0; i < 10; ++i) {
      const auto a = server.poll();
      const auto b = client.poll();
      if (a + b == 0 && !client.wait(10)) break;
    }
  };

  // 3. Subscribe the display to the edge table (push on every insert).
  int pushes = 0;
  client.client().on_push([&](std::uint64_t, const hwdb::ResultSet& rs) {
    ++pushes;
    if (!rs.rows.empty()) {
      const auto& newest = rs.rows.back();
      std::printf("  push #%d: %s %s %s bytes\n", pushes,
                  newest[0].to_string().c_str(), newest[1].to_string().c_str(),
                  newest[2].to_string().c_str());
    }
  });
  client.client().subscribe("SELECT device, app, bytes FROM Summary [ROWS 1]",
                            /*on_insert=*/true, 0,
                            [](Result<std::uint64_t> id) {
                              if (id.ok()) {
                                std::printf("subscribed, id=%llu\n",
                                            static_cast<unsigned long long>(
                                                id.value()));
                              }
                            });
  pump();

  // 4. Export the router's per-device/app summary over the socket.
  auto summary = home.router().db().query(
      "SELECT device, app, sum(bytes) FROM Flows [RANGE 30 SECONDS] "
      "GROUP BY device, app");
  if (!summary.ok()) {
    std::fprintf(stderr, "query failed: %s\n", summary.error().message.c_str());
    return 1;
  }
  std::printf("\nexporting %zu summary rows over UDP RPC:\n",
              summary.value().rows.size());
  for (const auto& row : summary.value().rows) {
    client.client().insert("Summary",
                           {row[0], row[1], hwdb::Value{row[2].as_int()}});
    pump();
  }

  // 5. Query it back through the socket, as the display would render it.
  std::printf("\nremote query of the edge table:\n");
  client.client().query(
      "SELECT device, sum(bytes) FROM Summary GROUP BY device",
      [](Result<hwdb::ResultSet> rs) {
        if (!rs.ok()) {
          std::printf("  error: %s\n", rs.error().message.c_str());
          return;
        }
        for (const auto& row : rs.value().rows) {
          std::printf("  %-20s %12s bytes\n", row[0].to_string().c_str(),
                      row[1].to_string().c_str());
        }
      });
  pump();

  std::printf("\n%d subscription pushes received over the socket\n", pushes);
  return pushes > 0 ? 0 : 1;
}
