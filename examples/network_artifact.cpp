// Figure 2 scenario: the LED network artifact in each of its three modes.
//   Mode 1 — carry the artifact around the house: lit LEDs follow RSSI.
//   Mode 2 — animation speed follows total bandwidth vs the day's peak.
//   Mode 3 — lease grants flash green, releases blue, retry storms red.
#include <cstdio>

#include "ui/artifact.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace hw;

  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  workload::HomeScenario home(config);
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  home.wait_all_bound();

  auto* artifact_dev = home.device("network-artifact");
  ui::NetworkArtifact artifact(
      home.router().db(),
      {.led_count = 12, .own_mac = artifact_dev->host->mac().to_string()});

  // --- Mode 1: walk the artifact from beside the AP to the far bedroom.
  std::printf("Mode 1 (signal strength), walking away from the AP:\n");
  artifact.set_mode(ui::ArtifactMode::SignalStrength);
  for (double step = 0; step <= 10; ++step) {
    home.router().move_device(artifact_dev->host->mac(),
                              sim::Position{5 + step * 3.0, 5});
    home.run_for(2 * kSecond);  // let the Links table pick up fresh samples
    auto frame = artifact.render();
    std::printf("  %4.0fm from AP  [%s]\n", step * 3.0,
                ui::NetworkArtifact::to_string(frame).c_str());
  }

  // --- Mode 2: idle network, then the whole family streams.
  std::printf("\nMode 2 (bandwidth animation):\n");
  artifact.set_mode(ui::ArtifactMode::Bandwidth);
  home.run_for(5 * kSecond);
  auto idle_frame = artifact.render();
  std::printf("  idle     [%s]\n",
              ui::NetworkArtifact::to_string(idle_frame).c_str());
  home.start_apps_all();
  home.run_for(20 * kSecond);
  for (int i = 0; i < 4; ++i) {
    home.run_for(250 * kMillisecond);
    auto frame = artifact.render();
    std::printf("  busy     [%s]\n", ui::NetworkArtifact::to_string(frame).c_str());
  }

  // --- Mode 3: a guest joins (green flash) and later leaves (blue flash).
  std::printf("\nMode 3 (DHCP events):\n");
  artifact.set_mode(ui::ArtifactMode::Events);
  const auto idx = home.add_device({"guest-phone", workload::DeviceKind::Phone,
                                    sim::Position{10, 2}});
  home.router().registry().set_state(home.devices()[idx].host->mac(),
                                     homework::DeviceState::Permitted,
                                     home.loop().now());
  home.devices()[idx].host->start_dhcp();
  home.run_for(3 * kSecond);
  std::printf("  after guest joins   [%s]\n",
              ui::NetworkArtifact::to_string(artifact.render()).c_str());
  home.devices()[idx].host->release_dhcp();
  home.run_for(3 * kSecond);
  // Drain the green join flash, then the blue release flash shows.
  for (int i = 0; i < 6; ++i) {
    auto frame = artifact.render();
    std::printf("  event frame %d       [%s]\n", i,
                ui::NetworkArtifact::to_string(frame).c_str());
  }
  home.stop_apps_all();
  return 0;
}
