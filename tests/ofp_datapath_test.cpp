// Datapath behaviour: port plumbing, flow-directed forwarding with header
// rewrites, packet-in buffering and release, NORMAL (learning switch), the
// controller-side protocol handlers, and timeout notifications — all through
// the real secure-channel byte stream.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "openflow/channel.hpp"
#include "openflow/datapath.hpp"

namespace hw::ofp {
namespace {

const MacAddress kHostA = MacAddress::from_index(1);
const MacAddress kHostB = MacAddress::from_index(2);
const Ipv4Address kIpA{192, 168, 1, 100};
const Ipv4Address kIpB{10, 1, 1, 1};

class Collector final : public sim::FrameSink {
 public:
  void deliver(const Bytes& frame) override { frames.push_back(frame); }
  std::vector<Bytes> frames;
};

/// Test harness playing the controller role over a real channel.
class FakeController {
 public:
  explicit FakeController(ChannelEndpoint& end) : end_(end) {
    end_.on_receive([this](const Bytes& encoded) {
      auto env = decode(encoded);
      ASSERT_TRUE(env.ok());
      received.push_back(std::move(env).take());
    });
  }

  void send(Message msg, std::uint32_t xid = 1) {
    end_.send(encode({xid, std::move(msg)}));
  }

  template <typename T>
  std::vector<const T*> of_type() const {
    std::vector<const T*> out;
    for (const auto& env : received) {
      if (const auto* m = std::get_if<T>(&env.msg)) out.push_back(m);
    }
    return out;
  }

  std::vector<Envelope> received;

 private:
  ChannelEndpoint& end_;
};

struct DatapathFixture : ::testing::Test {
  DatapathFixture()
      : dp(loop, {.datapath_id = 0xd0, .n_buffers = 4, .miss_send_len = 128}),
        conn(loop),
        controller(conn.controller_end()) {
    dp.add_port(1, "p1", MacAddress::from_index(0xa1), &port1_out);
    dp.add_port(2, "p2", MacAddress::from_index(0xa2), &port2_out);
    dp.connect(conn.datapath_end());
    loop.run_for(kMillisecond);
  }

  Bytes udp_frame(MacAddress src_mac, Ipv4Address src, Ipv4Address dst,
                  std::uint16_t dport, std::size_t payload = 32) const {
    return net::build_udp(src_mac, kHostB, src, dst, 1234, dport,
                          Bytes(payload, 0));
  }

  sim::EventLoop loop;
  Collector port1_out;
  Collector port2_out;
  Datapath dp;
  InProcConnection conn;
  FakeController controller;
};

TEST_F(DatapathFixture, SendsHelloOnConnect) {
  ASSERT_FALSE(controller.of_type<Hello>().empty());
}

TEST_F(DatapathFixture, FeaturesHandshake) {
  controller.send(FeaturesRequest{}, 55);
  loop.run_for(kMillisecond);
  auto replies = controller.of_type<FeaturesReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0]->datapath_id, 0xd0u);
  EXPECT_EQ(replies[0]->ports.size(), 2u);
  // xid echoes the request.
  EXPECT_EQ(controller.received.back().xid, 55u);
}

TEST_F(DatapathFixture, EchoAndBarrier) {
  controller.send(EchoRequest{{1, 2}}, 9);
  controller.send(BarrierRequest{}, 10);
  loop.run_for(kMillisecond);
  auto echoes = controller.of_type<EchoReply>();
  ASSERT_EQ(echoes.size(), 1u);
  EXPECT_EQ(echoes[0]->data, (Bytes{1, 2}));
  EXPECT_EQ(controller.of_type<BarrierReply>().size(), 1u);
}

TEST_F(DatapathFixture, MissGeneratesBufferedPacketIn) {
  const Bytes frame = udp_frame(kHostA, kIpA, kIpB, 80, 300);
  dp.receive_frame(1, frame);
  loop.run_for(kMillisecond);
  auto pis = controller.of_type<PacketIn>();
  ASSERT_EQ(pis.size(), 1u);
  EXPECT_EQ(pis[0]->in_port, 1);
  EXPECT_EQ(pis[0]->reason, PacketInReason::NoMatch);
  EXPECT_NE(pis[0]->buffer_id, kNoBuffer);
  EXPECT_EQ(pis[0]->total_len, frame.size());
  EXPECT_EQ(pis[0]->data.size(), 128u);  // truncated to miss_send_len
}

TEST_F(DatapathFixture, PacketOutReleasesBufferedFrame) {
  const Bytes frame = udp_frame(kHostA, kIpA, kIpB, 80);
  dp.receive_frame(1, frame);
  loop.run_for(kMillisecond);
  const auto buffer_id = controller.of_type<PacketIn>()[0]->buffer_id;

  PacketOut po;
  po.buffer_id = buffer_id;
  po.in_port = 1;
  po.actions = output_to(2);
  controller.send(std::move(po));
  loop.run_for(kMillisecond);
  ASSERT_EQ(port2_out.frames.size(), 1u);
  EXPECT_EQ(port2_out.frames[0], frame);  // full frame, not the truncation
}

TEST_F(DatapathFixture, PacketOutUnknownBufferErrors) {
  PacketOut po;
  po.buffer_id = 424242;
  po.actions = output_to(2);
  controller.send(std::move(po), 31);
  loop.run_for(kMillisecond);
  auto errors = controller.of_type<ErrorMsg>();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0]->type, ErrorType::BadRequest);
}

TEST_F(DatapathFixture, FlowModWithBufferForwardsAndInstalls) {
  const Bytes frame = udp_frame(kHostA, kIpA, kIpB, 80);
  dp.receive_frame(1, frame);
  loop.run_for(kMillisecond);
  const auto buffer_id = controller.of_type<PacketIn>()[0]->buffer_id;

  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.buffer_id = buffer_id;
  mod.actions = output_to(2);
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);

  EXPECT_EQ(dp.table().size(), 1u);
  ASSERT_EQ(port2_out.frames.size(), 1u);  // buffered frame released

  // Subsequent traffic forwards in the datapath, no controller round-trip.
  const std::size_t pis_before = controller.of_type<PacketIn>().size();
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 443));
  loop.run_for(kMillisecond);
  EXPECT_EQ(port2_out.frames.size(), 2u);
  EXPECT_EQ(controller.of_type<PacketIn>().size(), pis_before);
}

TEST_F(DatapathFixture, HeaderRewriteActions) {
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.actions = {ActionSetDlSrc{MacAddress::from_index(0xbb)},
                 ActionSetDlDst{MacAddress::from_index(0xcc)},
                 ActionSetNwDst{Ipv4Address{99, 99, 99, 99}},
                 ActionSetTpDst{8080},
                 ActionOutput{2, 0}};
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);

  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  loop.run_for(kMillisecond);
  ASSERT_EQ(port2_out.frames.size(), 1u);
  auto p = net::ParsedPacket::parse(port2_out.frames[0]);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().eth.src, MacAddress::from_index(0xbb));
  EXPECT_EQ(p.value().eth.dst, MacAddress::from_index(0xcc));
  EXPECT_EQ(p.value().ip->dst.to_string(), "99.99.99.99");
  EXPECT_EQ(p.value().udp->dst_port, 8080);
  // The rewritten IPv4 header must still checksum correctly.
  const std::size_t ip_off = net::kEthernetHeaderSize;
  std::span<const std::uint8_t> ip_hdr(port2_out.frames[0].data() + ip_off, 20);
  EXPECT_EQ(net::internet_checksum(ip_hdr), 0);
}

TEST_F(DatapathFixture, DropRuleSwallowsTraffic) {
  FlowMod mod;
  mod.match = Match::any();
  mod.actions = {};  // drop
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  loop.run_for(kMillisecond);
  EXPECT_TRUE(port1_out.frames.empty());
  EXPECT_TRUE(port2_out.frames.empty());
  EXPECT_TRUE(controller.of_type<PacketIn>().empty());
}

TEST_F(DatapathFixture, FloodExcludesIngress) {
  FlowMod mod;
  mod.match = Match::any();
  mod.actions = output_to(port_no(Port::Flood));
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  loop.run_for(kMillisecond);
  EXPECT_TRUE(port1_out.frames.empty());
  EXPECT_EQ(port2_out.frames.size(), 1u);
}

TEST_F(DatapathFixture, NormalActionLearnsAndForwards) {
  FlowMod mod;
  mod.match = Match::any();
  mod.actions = output_to(port_no(Port::Normal));
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);

  // A talks first: B unknown → flood (port 2 only).
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  EXPECT_EQ(port2_out.frames.size(), 1u);
  // B replies: A's location was learned → unicast to port 1.
  dp.receive_frame(2, net::build_udp(kHostB, kHostA, kIpB, kIpA, 80, 1234,
                                     Bytes(10, 0)));
  EXPECT_EQ(port1_out.frames.size(), 1u);
  EXPECT_EQ(port2_out.frames.size(), 1u);  // no extra flood
}

TEST_F(DatapathFixture, StatsFlowAndAggregateAndPort) {
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.actions = output_to(2);
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80, 100));
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80, 100));
  loop.run_for(kMillisecond);

  StatsRequest flow_req;
  flow_req.type = StatsType::Flow;
  flow_req.body = FlowStatsRequest{};
  controller.send(std::move(flow_req), 71);
  StatsRequest agg_req;
  agg_req.type = StatsType::Aggregate;
  agg_req.body = FlowStatsRequest{};
  controller.send(std::move(agg_req), 72);
  StatsRequest port_req;
  port_req.type = StatsType::Port;
  port_req.body = PortStatsRequest{};
  controller.send(std::move(port_req), 73);
  loop.run_for(kMillisecond);

  auto replies = controller.of_type<StatsReply>();
  ASSERT_EQ(replies.size(), 3u);
  const auto& flows = std::get<std::vector<FlowStatsEntry>>(replies[0]->body);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packet_count, 2u);
  const auto& agg = std::get<AggregateStatsReplyBody>(replies[1]->body);
  EXPECT_EQ(agg.flow_count, 1u);
  EXPECT_EQ(agg.packet_count, 2u);
  const auto& ports = std::get<std::vector<PortStatsEntry>>(replies[2]->body);
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0].rx_packets, 2u);  // port 1 received both frames
  EXPECT_EQ(ports[1].tx_packets, 2u);  // port 2 sent both
}

TEST_F(DatapathFixture, LargeFlowStatsReplyPaginatesUnderFrameCap) {
  // A reply for a big table would overflow the OF 1.0 u16 header length;
  // the datapath must split it into OFPSF_REPLY_MORE fragments, each a
  // decodable frame (FakeController asserts decode on every receive).
  constexpr std::size_t kFlows = 900;
  for (std::size_t i = 0; i < kFlows; ++i) {
    FlowMod mod;
    mod.match = Match::any();
    mod.match.with_dl_type(0x0800).with_nw_dst(
        Ipv4Address{10, static_cast<std::uint8_t>(i >> 8),
                    static_cast<std::uint8_t>(i & 0xff), 1});
    mod.actions = output_to(2);
    controller.send(std::move(mod));
    if (i % 64 == 0) loop.run_for(kMillisecond);
  }
  loop.run_for(kMillisecond);
  ASSERT_EQ(dp.table().size(), kFlows);

  StatsRequest req;
  req.type = StatsType::Flow;
  req.body = FlowStatsRequest{};
  controller.send(std::move(req), 99);
  loop.run_for(kMillisecond);

  auto replies = controller.of_type<StatsReply>();
  ASSERT_GT(replies.size(), 1u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const bool last = i + 1 == replies.size();
    EXPECT_EQ(replies[i]->flags & kStatsReplyMore, last ? 0 : kStatsReplyMore);
    total += std::get<std::vector<FlowStatsEntry>>(replies[i]->body).size();
  }
  EXPECT_EQ(total, kFlows);
}

TEST_F(DatapathFixture, IdleTimeoutEmitsFlowRemoved) {
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.idle_timeout = 2;
  mod.flags = FlowModFlags::kSendFlowRem;
  mod.actions = output_to(2);
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  loop.run_for(5 * kSecond);  // expiry sweep fires every second
  auto removed = controller.of_type<FlowRemoved>();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0]->reason, FlowRemovedReason::IdleTimeout);
  EXPECT_EQ(removed[0]->packet_count, 1u);
  EXPECT_EQ(dp.table().size(), 0u);
}

TEST_F(DatapathFixture, DeleteWithNotifyEmitsFlowRemoved) {
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.flags = FlowModFlags::kSendFlowRem;
  mod.actions = output_to(2);
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);

  FlowMod del;
  del.match = Match::any();
  del.command = FlowModCommand::Delete;
  controller.send(std::move(del));
  loop.run_for(kMillisecond);
  auto removed = controller.of_type<FlowRemoved>();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0]->reason, FlowRemovedReason::Delete);
}

TEST_F(DatapathFixture, PortRemovalAnnouncesAndStopsForwarding) {
  FlowMod mod;
  mod.match = Match::any();
  mod.actions = output_to(2);
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);
  dp.remove_port(2);
  loop.run_for(kMillisecond);
  auto statuses = controller.of_type<PortStatus>();
  ASSERT_GE(statuses.size(), 1u);
  EXPECT_EQ(statuses.back()->reason, PortReason::Delete);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  EXPECT_TRUE(port2_out.frames.empty());
}

TEST_F(DatapathFixture, BufferEvictionWhenFull) {
  // n_buffers = 4; the fifth miss evicts the oldest buffer.
  for (int i = 0; i < 5; ++i) {
    dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB,
                                  static_cast<std::uint16_t>(1000 + i)));
  }
  loop.run_for(kMillisecond);
  EXPECT_EQ(dp.stats().buffer_evictions, 1u);
  // The evicted (first) buffer is gone.
  const auto first_buffer = controller.of_type<PacketIn>()[0]->buffer_id;
  PacketOut po;
  po.buffer_id = first_buffer;
  po.actions = output_to(2);
  controller.send(std::move(po), 80);
  loop.run_for(kMillisecond);
  EXPECT_EQ(controller.of_type<ErrorMsg>().size(), 1u);
}

TEST_F(DatapathFixture, EnqueuePolicesAboveRate) {
  // Queue on port 2: 80 kbit/s = 10 KB/s, burst 2 KB.
  dp.configure_queue(2, 7, 80'000, 2'000);
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.actions = {ActionEnqueue{2, 7}};
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);

  // Send 100 frames of ~550 B in one virtual second: ~55 KB offered against
  // a 10 KB/s + 2 KB burst budget → most must be policed.
  for (int i = 0; i < 100; ++i) {
    dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80, 512));
    loop.run_for(10 * kMillisecond);
  }
  const auto* q = dp.queue_counters(2, 7);
  ASSERT_NE(q, nullptr);
  EXPECT_GT(q->dropped, 50u);
  EXPECT_GT(q->tx_packets, 5u);
  EXPECT_EQ(q->tx_packets + q->dropped, 100u);
  EXPECT_EQ(port2_out.frames.size(), q->tx_packets);
  // Conforming bytes stay within budget (burst + 1s refill + one frame).
  EXPECT_LE(q->tx_bytes, 2'000u + 10'000u + 600u);
}

TEST_F(DatapathFixture, EnqueueUnconfiguredQueueDegradesToOutput) {
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.actions = {ActionEnqueue{2, 99}};  // never configured
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  EXPECT_EQ(port2_out.frames.size(), 1u);
}

TEST_F(DatapathFixture, QueueRemovalStopsPolicing) {
  dp.configure_queue(2, 7, 8'000, 100);  // tiny: everything drops
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.actions = {ActionEnqueue{2, 7}};
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80, 512));
  EXPECT_TRUE(port2_out.frames.empty());
  dp.remove_queue(2, 7);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80, 512));
  EXPECT_EQ(port2_out.frames.size(), 1u);  // plain output now
  EXPECT_EQ(dp.queue_counters(2, 7), nullptr);
}

TEST_F(DatapathFixture, MalformedFrameCountsAsDrop) {
  dp.receive_frame(1, Bytes{1, 2, 3});
  EXPECT_EQ(dp.port_counters(1)->rx_dropped, 1u);
  EXPECT_TRUE(controller.of_type<PacketIn>().empty());
}

TEST_F(DatapathFixture, InstalledFlowsSurviveControllerDisconnect) {
  // Fail-open data plane: when the secure channel dies, already-installed
  // flows keep forwarding; only new flows (misses) go dark.
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800).with_tp_dst(80);
  mod.actions = output_to(2);
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);

  conn.disconnect();
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  EXPECT_EQ(port2_out.frames.size(), 1u);  // still forwarded

  const auto pis_before = controller.received.size();
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 443));  // miss
  loop.run_for(kMillisecond);
  EXPECT_EQ(controller.received.size(), pis_before);  // nothing arrives
}

TEST_F(DatapathFixture, MicroflowCacheServesRepeatTraffic) {
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.actions = output_to(2);
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);

  for (int i = 0; i < 3; ++i) {
    dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  }
  EXPECT_EQ(port2_out.frames.size(), 3u);
  // First packet runs the classifier and seeds the cache; the rest hit.
  EXPECT_EQ(dp.stats().microflow_misses, 1u);
  EXPECT_EQ(dp.stats().microflow_hits, 2u);
  EXPECT_EQ(dp.stats().microflow_invalidations, 0u);
  EXPECT_EQ(dp.microflow_cache().size(), 1u);
  // Table-level stats still count every packet, hit or not.
  EXPECT_EQ(dp.table().stats().lookups, 3u);
  EXPECT_EQ(dp.table().stats().matches, 3u);
}

TEST_F(DatapathFixture, FlowModInvalidatesMicroflowCache) {
  FlowMod broad;
  broad.match = Match::any();
  broad.match.with_dl_type(0x0800);
  broad.priority = 100;
  broad.actions = output_to(2);
  controller.send(std::move(broad));
  loop.run_for(kMillisecond);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  EXPECT_EQ(port2_out.frames.size(), 2u);
  EXPECT_EQ(dp.stats().microflow_hits, 1u);

  // A higher-priority rule arrives for the same traffic. The cached handle
  // must not keep winning: the next packet re-runs the classifier.
  FlowMod narrow;
  narrow.match = Match::any();
  narrow.match.with_dl_type(0x0800).with_tp_dst(80);
  narrow.priority = 200;
  narrow.actions = output_to(1);
  controller.send(std::move(narrow));
  loop.run_for(kMillisecond);

  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  EXPECT_EQ(port1_out.frames.size(), 1u);  // new rule applied, not stale
  EXPECT_EQ(port2_out.frames.size(), 2u);
  EXPECT_EQ(dp.stats().microflow_invalidations, 1u);
}

TEST_F(DatapathFixture, CachedHitsFeedPerFlowCounters) {
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.actions = output_to(2);
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);
  for (int i = 0; i < 3; ++i) {
    dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80, 100));
  }
  ASSERT_EQ(dp.stats().microflow_hits, 2u);

  StatsRequest flow_req;
  flow_req.type = StatsType::Flow;
  flow_req.body = FlowStatsRequest{};
  controller.send(std::move(flow_req), 91);
  loop.run_for(kMillisecond);
  auto replies = controller.of_type<StatsReply>();
  ASSERT_EQ(replies.size(), 1u);
  const auto& flows = std::get<std::vector<FlowStatsEntry>>(replies[0]->body);
  ASSERT_EQ(flows.size(), 1u);
  // Cache-served packets still land in the entry's OpenFlow counters.
  EXPECT_EQ(flows[0].packet_count, 3u);
}

TEST_F(DatapathFixture, ExpiryInvalidatesMicroflowCache) {
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_dl_type(0x0800);
  mod.idle_timeout = 2;
  mod.actions = output_to(2);
  controller.send(std::move(mod));
  loop.run_for(kMillisecond);
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  EXPECT_EQ(port2_out.frames.size(), 2u);
  EXPECT_TRUE(controller.of_type<PacketIn>().empty());

  loop.run_for(5 * kSecond);  // idle timeout fires; the entry is gone
  EXPECT_EQ(dp.table().size(), 0u);
  // The cached handle must not serve the dead flow: this is a miss again.
  dp.receive_frame(1, udp_frame(kHostA, kIpA, kIpB, 80));
  loop.run_for(kMillisecond);
  EXPECT_EQ(port2_out.frames.size(), 2u);  // not forwarded by a stale entry
  EXPECT_EQ(controller.of_type<PacketIn>().size(), 1u);
}

TEST(DatapathTableFull, RejectedAddAnswersWithError) {
  sim::EventLoop loop;
  Datapath dp(loop, {.datapath_id = 1, .table_capacity = 1});
  InProcConnection conn(loop);
  FakeController controller(conn.controller_end());
  dp.connect(conn.datapath_end());
  loop.run_for(kMillisecond);

  FlowMod a;
  a.match = Match::any();
  a.match.with_tp_dst(80);
  a.actions = output_to(1);
  controller.send(std::move(a), 11);
  FlowMod b;
  b.match = Match::any();
  b.match.with_tp_dst(443);
  b.actions = output_to(1);
  controller.send(std::move(b), 12);
  loop.run_for(kMillisecond);

  EXPECT_EQ(dp.table().size(), 1u);
  EXPECT_EQ(dp.table().stats().table_full, 1u);
  auto errors = controller.of_type<ErrorMsg>();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0]->type, ErrorType::FlowModFailed);
  EXPECT_EQ(errors[0]->code, 0u);  // OFPFMFC_ALL_TABLES_FULL
  EXPECT_EQ(controller.received.back().xid, 12u);  // echoes the bad request
}

TEST_F(DatapathFixture, IngressAdapterRoutesToPort) {
  sim::FrameSink* ingress = dp.ingress(1);
  ASSERT_NE(ingress, nullptr);
  ingress->deliver(udp_frame(kHostA, kIpA, kIpB, 80));
  loop.run_for(kMillisecond);
  EXPECT_EQ(controller.of_type<PacketIn>().size(), 1u);
  EXPECT_EQ(dp.ingress(99), nullptr);
}

}  // namespace
}  // namespace hw::ofp
