// OpenFlow 1.0 wire codec: every message type must round-trip, framing must
// be exact (length field), and malformed input must be rejected.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "openflow/messages.hpp"

namespace hw::ofp {
namespace {

Envelope round_trip(const Envelope& env) {
  const Bytes wire = encode(env);
  // Wire framing invariants.
  EXPECT_GE(wire.size(), kHeaderSize);
  EXPECT_EQ(wire[0], kWireVersion);
  EXPECT_EQ(peek_length(wire), wire.size());
  auto decoded = decode(wire);
  EXPECT_TRUE(decoded.ok()) << (decoded.ok() ? "" : decoded.error().message);
  return std::move(decoded).take();
}

TEST(OfpCodec, Hello) {
  auto out = round_trip({42, Hello{}});
  EXPECT_EQ(out.xid, 42u);
  EXPECT_TRUE(std::holds_alternative<Hello>(out.msg));
}

TEST(OfpCodec, EchoCarriesPayload) {
  auto out = round_trip({7, EchoRequest{{1, 2, 3}}});
  EXPECT_EQ(std::get<EchoRequest>(out.msg).data, (Bytes{1, 2, 3}));
  auto reply = round_trip({7, EchoReply{{9}}});
  EXPECT_EQ(std::get<EchoReply>(reply.msg).data, (Bytes{9}));
}

TEST(OfpCodec, Error) {
  ErrorMsg err;
  err.type = ErrorType::FlowModFailed;
  err.code = 2;
  err.data = {0xde, 0xad};
  auto out = round_trip({1, err});
  const auto& m = std::get<ErrorMsg>(out.msg);
  EXPECT_EQ(m.type, ErrorType::FlowModFailed);
  EXPECT_EQ(m.code, 2);
  EXPECT_EQ(m.data, (Bytes{0xde, 0xad}));
}

TEST(OfpCodec, FeaturesReplyWithPorts) {
  FeaturesReply fr;
  fr.datapath_id = 0x00aabbccddeeff11ull;
  fr.n_buffers = 256;
  fr.n_tables = 1;
  fr.ports.push_back(PhyPort{1, MacAddress::from_index(1), "uplink", 0, 0, 0});
  fr.ports.push_back(PhyPort{2, MacAddress::from_index(2),
                             "a-very-long-port-name-truncated", 0, 0, 0});
  auto out = round_trip({3, fr});
  const auto& m = std::get<FeaturesReply>(out.msg);
  EXPECT_EQ(m.datapath_id, fr.datapath_id);
  ASSERT_EQ(m.ports.size(), 2u);
  EXPECT_EQ(m.ports[0].name, "uplink");
  EXPECT_EQ(m.ports[1].name.size(), 16u);  // fixed 16-byte field, no NUL left
  EXPECT_EQ(m.ports[1].hw_addr, MacAddress::from_index(2));
}

TEST(OfpCodec, PacketIn) {
  PacketIn pi;
  pi.buffer_id = 77;
  pi.total_len = 1500;
  pi.in_port = 3;
  pi.reason = PacketInReason::Action;
  pi.data = Bytes(64, 0xaa);
  auto out = round_trip({9, pi});
  const auto& m = std::get<PacketIn>(out.msg);
  EXPECT_EQ(m.buffer_id, 77u);
  EXPECT_EQ(m.total_len, 1500);
  EXPECT_EQ(m.in_port, 3);
  EXPECT_EQ(m.reason, PacketInReason::Action);
  EXPECT_EQ(m.data.size(), 64u);
}

TEST(OfpCodec, PacketOutWithActionsAndData) {
  PacketOut po;
  po.buffer_id = kNoBuffer;
  po.in_port = port_no(Port::None);
  po.actions = {ActionSetDlDst{MacAddress::from_index(5)}, ActionOutput{2, 0}};
  po.data = Bytes(20, 0x11);
  auto out = round_trip({4, po});
  const auto& m = std::get<PacketOut>(out.msg);
  ASSERT_EQ(m.actions.size(), 2u);
  EXPECT_EQ(std::get<ActionSetDlDst>(m.actions[0]).mac, MacAddress::from_index(5));
  EXPECT_EQ(std::get<ActionOutput>(m.actions[1]).port, 2);
  EXPECT_EQ(m.data.size(), 20u);
}

TEST(OfpCodec, FlowModFull) {
  FlowMod mod;
  mod.match.with_dl_type(0x0800).with_nw_proto(17).with_tp_dst(53);
  mod.cookie = 0x1234567890abcdefull;
  mod.command = FlowModCommand::Add;
  mod.idle_timeout = 10;
  mod.hard_timeout = 300;
  mod.priority = 0x9999;
  mod.buffer_id = 5;
  mod.flags = FlowModFlags::kSendFlowRem | FlowModFlags::kCheckOverlap;
  mod.actions = {ActionSetNwDst{Ipv4Address{1, 2, 3, 4}},
                 ActionSetTpDst{8080},
                 ActionOutput{port_no(Port::Controller), 128}};
  auto out = round_trip({5, mod});
  const auto& m = std::get<FlowMod>(out.msg);
  EXPECT_TRUE(m.match.same_pattern(mod.match));
  EXPECT_EQ(m.cookie, mod.cookie);
  EXPECT_EQ(m.command, FlowModCommand::Add);
  EXPECT_EQ(m.idle_timeout, 10);
  EXPECT_EQ(m.hard_timeout, 300);
  EXPECT_EQ(m.priority, 0x9999);
  EXPECT_EQ(m.buffer_id, 5u);
  EXPECT_EQ(m.flags, mod.flags);
  ASSERT_EQ(m.actions.size(), 3u);
  EXPECT_EQ(std::get<ActionSetNwDst>(m.actions[0]).addr, (Ipv4Address{1, 2, 3, 4}));
  EXPECT_EQ(std::get<ActionSetTpDst>(m.actions[1]).port, 8080);
  EXPECT_EQ(std::get<ActionOutput>(m.actions[2]).max_len, 128);
}

TEST(OfpCodec, FlowRemoved) {
  FlowRemoved fr;
  fr.match.with_nw_src(Ipv4Address{10, 0, 0, 1});
  fr.cookie = 99;
  fr.priority = 0x8000;
  fr.reason = FlowRemovedReason::IdleTimeout;
  fr.duration_sec = 12;
  fr.idle_timeout = 10;
  fr.packet_count = 1000;
  fr.byte_count = 123456;
  auto out = round_trip({6, fr});
  const auto& m = std::get<FlowRemoved>(out.msg);
  EXPECT_EQ(m.reason, FlowRemovedReason::IdleTimeout);
  EXPECT_EQ(m.packet_count, 1000u);
  EXPECT_EQ(m.byte_count, 123456u);
  EXPECT_TRUE(m.match.same_pattern(fr.match));
}

TEST(OfpCodec, PortStatus) {
  PortStatus ps;
  ps.reason = PortReason::Delete;
  ps.desc = PhyPort{4, MacAddress::from_index(4), "port4", 0, 0, 0};
  auto out = round_trip({8, ps});
  const auto& m = std::get<PortStatus>(out.msg);
  EXPECT_EQ(m.reason, PortReason::Delete);
  EXPECT_EQ(m.desc.port_no, 4);
  EXPECT_EQ(m.desc.name, "port4");
}

TEST(OfpCodec, StatsRequestFlow) {
  StatsRequest req;
  req.type = StatsType::Flow;
  FlowStatsRequest body;
  body.match.with_nw_dst(Ipv4Address{8, 8, 8, 8});
  body.table_id = 0xff;
  body.out_port = 3;
  req.body = body;
  auto out = round_trip({2, req});
  const auto& m = std::get<StatsRequest>(out.msg);
  EXPECT_EQ(m.type, StatsType::Flow);
  const auto& b = std::get<FlowStatsRequest>(m.body);
  EXPECT_EQ(b.out_port, 3);
  EXPECT_TRUE(b.match.same_pattern(body.match));
}

TEST(OfpCodec, StatsReplyFlowEntries) {
  StatsReply reply;
  reply.type = StatsType::Flow;
  std::vector<FlowStatsEntry> flows;
  FlowStatsEntry e;
  e.match.with_dl_type(0x0800).with_nw_src(Ipv4Address{192, 168, 1, 100});
  e.priority = 7;
  e.duration_sec = 10;
  e.packet_count = 55;
  e.byte_count = 5555;
  e.actions = output_to(2);
  flows.push_back(e);
  e.packet_count = 66;
  flows.push_back(e);
  reply.body = flows;
  auto out = round_trip({11, reply});
  const auto& m = std::get<StatsReply>(out.msg);
  const auto& entries = std::get<std::vector<FlowStatsEntry>>(m.body);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].packet_count, 55u);
  EXPECT_EQ(entries[1].packet_count, 66u);
  EXPECT_EQ(entries[0].byte_count, 5555u);
  ASSERT_EQ(entries[0].actions.size(), 1u);
}

TEST(OfpCodec, StatsReplyAggregate) {
  StatsReply reply;
  reply.type = StatsType::Aggregate;
  reply.body = AggregateStatsReplyBody{100, 20000, 7};
  auto out = round_trip({12, reply});
  const auto& agg =
      std::get<AggregateStatsReplyBody>(std::get<StatsReply>(out.msg).body);
  EXPECT_EQ(agg.packet_count, 100u);
  EXPECT_EQ(agg.byte_count, 20000u);
  EXPECT_EQ(agg.flow_count, 7u);
}

TEST(OfpCodec, StatsReplyPorts) {
  StatsReply reply;
  reply.type = StatsType::Port;
  std::vector<PortStatsEntry> ports;
  PortStatsEntry p;
  p.port_no = 1;
  p.rx_packets = 10;
  p.tx_packets = 20;
  p.rx_bytes = 1000;
  p.tx_bytes = 2000;
  p.rx_dropped = 1;
  ports.push_back(p);
  reply.body = ports;
  auto out = round_trip({13, reply});
  const auto& entries =
      std::get<std::vector<PortStatsEntry>>(std::get<StatsReply>(out.msg).body);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].tx_bytes, 2000u);
  EXPECT_EQ(entries[0].rx_dropped, 1u);
}

TEST(OfpCodec, StatsReplyDesc) {
  StatsReply reply;
  reply.type = StatsType::Desc;
  reply.body = DescStats{};
  auto out = round_trip({14, reply});
  const auto& desc = std::get<DescStats>(std::get<StatsReply>(out.msg).body);
  EXPECT_EQ(desc.mfr_desc, "Homework project");
}

// ---------------------------------------------------------------------------
// Fixed-width string fields at exact field width (16-byte port names,
// 256-byte desc strings) and their NUL-padding on the wire.

TEST(OfpCodec, PortNameRoundTripsAtExactFieldWidth) {
  FeaturesReply fr;
  fr.datapath_id = 1;
  // Exactly 16 chars fill the field completely: no NUL survives on the wire
  // and the decoder must take all 16 without reading past the field.
  fr.ports.push_back(
      PhyPort{7, MacAddress::from_index(7), std::string(16, 'p'), 0, 0, 0});
  // 15 chars leave exactly one byte of NUL padding, which the reader strips.
  fr.ports.push_back(
      PhyPort{8, MacAddress::from_index(8), std::string(15, 'q'), 0, 0, 0});
  // Over-long names truncate to the field width on the wire.
  fr.ports.push_back(
      PhyPort{9, MacAddress::from_index(9), std::string(40, 'r'), 0, 0, 0});
  auto out = round_trip({5, fr});
  const auto& ports = std::get<FeaturesReply>(out.msg).ports;
  ASSERT_EQ(ports.size(), 3u);
  EXPECT_EQ(ports[0].name, std::string(16, 'p'));
  EXPECT_EQ(ports[1].name, std::string(15, 'q'));
  EXPECT_EQ(ports[2].name, std::string(16, 'r'));
}

TEST(OfpCodec, PortNamePaddingIsNulOnTheWire) {
  FeaturesReply fr;
  fr.datapath_id = 1;
  fr.ports.push_back(PhyPort{1, MacAddress::from_index(1), "eth0", 0, 0, 0});
  const Bytes wire = encode({1, fr});
  const std::string name = "eth0";
  const auto it = std::search(wire.begin(), wire.end(), name.begin(), name.end());
  ASSERT_NE(it, wire.end());
  for (std::size_t i = name.size(); i < 16; ++i) {
    EXPECT_EQ(*(it + static_cast<std::ptrdiff_t>(i)), 0u)
        << "padding byte " << i << " not NUL";
  }
}

TEST(OfpCodec, DescStringsRoundTripAtExactWidthAndTruncateBeyond) {
  DescStats desc;
  desc.mfr_desc = std::string(256, 'm');   // exactly DESC_STR_LEN
  desc.hw_desc = std::string(300, 'h');    // beyond: truncated on the wire
  desc.sw_desc = std::string(255, 'w');    // one NUL of padding
  desc.serial_num = std::string(32, 's');  // exactly SERIAL_NUM_LEN
  desc.dp_desc = "home";
  StatsReply reply;
  reply.type = StatsType::Desc;
  reply.body = desc;
  auto out = round_trip({9, reply});
  const auto& d = std::get<DescStats>(std::get<StatsReply>(out.msg).body);
  EXPECT_EQ(d.mfr_desc, std::string(256, 'm'));
  EXPECT_EQ(d.hw_desc, std::string(256, 'h'));
  EXPECT_EQ(d.sw_desc, std::string(255, 'w'));
  EXPECT_EQ(d.serial_num, std::string(32, 's'));
  EXPECT_EQ(d.dp_desc, "home");
}

TEST(OfpCodec, Barrier) {
  auto req = round_trip({20, BarrierRequest{}});
  EXPECT_TRUE(std::holds_alternative<BarrierRequest>(req.msg));
  auto rep = round_trip({20, BarrierReply{}});
  EXPECT_TRUE(std::holds_alternative<BarrierReply>(rep.msg));
}

// ---------------------------------------------------------------------------
// Framing errors

TEST(OfpCodec, RejectsBadVersion) {
  Bytes wire = encode({1, Hello{}});
  wire[0] = 0x04;
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OfpCodec, RejectsLengthMismatch) {
  Bytes wire = encode({1, Hello{}});
  wire.push_back(0);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OfpCodec, RejectsTruncatedBody) {
  Bytes wire = encode({1, FlowRemoved{}});
  wire.resize(wire.size() - 4);
  wire[2] = static_cast<std::uint8_t>(wire.size() >> 8);
  wire[3] = static_cast<std::uint8_t>(wire.size());
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OfpCodec, PeekLengthNeedsHeader) {
  Bytes tiny{1, 2, 3};
  EXPECT_EQ(peek_length(tiny), 0u);
}

TEST(OfpCodec, UnknownActionTypeSkipped) {
  // Hand-assemble a flow-mod whose action list contains an unknown TLV
  // followed by a known output action: the unknown must be skipped.
  FlowMod mod;
  mod.actions = {};
  Bytes wire = encode({1, mod});
  // Append unknown action (type 0x7777, len 8) + output action.
  ByteWriter extra;
  extra.u16(0x7777);
  extra.u16(8);
  extra.u32(0);
  extra.u16(0);  // OUTPUT
  extra.u16(8);
  extra.u16(4);
  extra.u16(0);
  wire.insert(wire.end(), extra.bytes().begin(), extra.bytes().end());
  wire[2] = static_cast<std::uint8_t>(wire.size() >> 8);
  wire[3] = static_cast<std::uint8_t>(wire.size());
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok());
  const auto& m = std::get<FlowMod>(decoded.value().msg);
  ASSERT_EQ(m.actions.size(), 1u);
  EXPECT_EQ(std::get<ActionOutput>(m.actions[0]).port, 4);
}

// Parameterized action round-trip.
class ActionRoundTrip : public ::testing::TestWithParam<Action> {};

TEST_P(ActionRoundTrip, SurvivesWire) {
  ByteWriter w;
  serialize_actions(w, {GetParam()});
  ByteReader r(w.bytes());
  auto parsed = parse_actions(r, w.size());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0], GetParam());
  EXPECT_EQ(w.size() % 8, 0u);  // OF actions are 8-byte aligned
}

INSTANTIATE_TEST_SUITE_P(
    AllActions, ActionRoundTrip,
    ::testing::Values(Action{ActionOutput{1, 0}},
                      Action{ActionOutput{port_no(Port::Controller), 1024}},
                      Action{ActionSetDlSrc{MacAddress::from_index(9)}},
                      Action{ActionSetDlDst{MacAddress::broadcast()}},
                      Action{ActionSetNwSrc{Ipv4Address{10, 0, 0, 1}}},
                      Action{ActionSetNwDst{Ipv4Address{8, 8, 8, 8}}},
                      Action{ActionSetTpSrc{53}},
                      Action{ActionSetTpDst{65535}}));

TEST(Actions, ToStringForms) {
  EXPECT_EQ(to_string(ActionList{}), "drop");
  EXPECT_EQ(to_string(output_to(3)), "output:3");
  EXPECT_EQ(to_string(send_to_controller()), "output:CONTROLLER");
  EXPECT_EQ(to_string(Action{ActionSetTpDst{80}}), "set_tp_dst:80");
}

}  // namespace
}  // namespace hw::ofp
