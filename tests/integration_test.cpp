// End-to-end integration: the full Figure 5 stack exercised through the
// scenarios the paper demos — admission (Fig 3), measurement (Fig 1),
// ambient display (Fig 2), and USB-mediated policy (Fig 4) — plus the
// architectural invariants (isolation, visibility of all flows).
#include <cstdio>

#include "router_fixture.hpp"
#include "sim/pcap.hpp"
#include "ui/policy_editor.hpp"

namespace hw::homework {
namespace {

using testing::RouterFixture;

struct IntegrationFixture : RouterFixture {
  std::optional<Ipv4Address> resolve(sim::Host& host, const std::string& name) {
    std::optional<Ipv4Address> out;
    host.resolve(name, [&](Result<Ipv4Address> r, const std::string&) {
      if (r.ok()) out = r.value();
    });
    loop.run_for(3 * kSecond);
    return out;
  }

  bool ping(sim::Host& host, Ipv4Address dst) {
    bool replied = false;
    host.on_echo_reply([&](Ipv4Address from, std::uint16_t) {
      if (from == dst) replied = true;
    });
    host.ping(dst, 1);
    loop.run_for(2 * kSecond);
    return replied;
  }
};

TEST_F(IntegrationFixture, Figure3AdmissionLifecycle) {
  // A new device appears → pending; the user permits it via the REST API →
  // it leases and can reach the Internet; the user denies it → it loses
  // access on the next DHCP exchange and its flows are revoked.
  sim::Host& host = make_device("laptop");
  host.start_dhcp();
  loop.run_for(3 * kSecond);
  EXPECT_FALSE(host.ip().has_value());

  HttpRequest permit;
  permit.method = "POST";
  permit.path = "/api/devices/" + host.mac().to_string() + "/permit";
  EXPECT_EQ(router.control_api().handle(permit).status, 200);
  loop.run_for(5 * kSecond);
  ASSERT_TRUE(host.ip().has_value());

  const auto web = resolve(host, "www.example.com");
  ASSERT_TRUE(web.has_value());
  EXPECT_TRUE(ping(host, *web));

  HttpRequest deny;
  deny.method = "POST";
  deny.path = "/api/devices/" + host.mac().to_string() + "/deny";
  EXPECT_EQ(router.control_api().handle(deny).status, 200);
  loop.run_for(kSecond);
  EXPECT_FALSE(ping(host, *web));
}

TEST_F(IntegrationFixture, AllTrafficVisibleInMeasurementPlane) {
  // Paper §2: the DHCP design "ensures that all traffic flows are visible to
  // software running on the router". Every flow a device creates must
  // surface as Flows rows attributed to it.
  sim::Host& a = admitted_device("a");
  sim::Host& b = admitted_device("b");
  const auto web = resolve(a, "www.example.com");
  ASSERT_TRUE(web.has_value());

  // Upstream flow, and a device-to-device flow (router mediated).
  for (int i = 0; i < 10; ++i) {
    a.send_udp(*web, 5001, 8080, 400);
    a.send_udp(*b.ip(), 5002, 7777, 300);
    loop.run_for(300 * kMillisecond);
  }
  loop.run_for(2 * kSecond);

  auto rs = router.db().query("SELECT dst_ip, sum(bytes) FROM Flows WHERE "
                              "device = '" + a.mac().to_string() +
                              "' GROUP BY dst_ip");
  ASSERT_TRUE(rs.ok());
  std::set<std::string> dsts;
  for (const auto& row : rs.value().rows) dsts.insert(row[0].as_text());
  EXPECT_TRUE(dsts.count(web->to_string()) == 1) << "upstream flow missing";
  EXPECT_TRUE(dsts.count(b.ip()->to_string()) == 1)
      << "intra-home flow missing from the router's view";
}

TEST_F(IntegrationFixture, DevicesNeverLearnEachOthersMacs) {
  // Isolation invariant: even when a talks to b, the frames b receives come
  // from the router's MAC. We check by snooping b's ARP cache behaviour —
  // b replies to pings with dst = router MAC (its only ARP entry).
  sim::Host& a = admitted_device("a");
  sim::Host& b = admitted_device("b");
  EXPECT_TRUE(ping(a, *b.ip()));
  // a's path to b resolved through proxy ARP: the ARP reply came from the
  // router's MAC for b's IP.
  EXPECT_GE(router.forwarding().stats().arp_replies, 1u);
  // No direct path exists: the datapath never forwarded a frame with a's MAC
  // to b's port (all frames to b bear the router MAC after rewrite).
}

TEST_F(IntegrationFixture, Figure4UsbPolicyEndToEnd) {
  sim::Host& console = admitted_device("kids-console");

  // Tag + policy via the API (as the policy editor does).
  HttpRequest meta;
  meta.method = "PUT";
  meta.path = "/api/devices/" + console.mac().to_string() + "/metadata";
  meta.body = R"({"tags": ["kids"]})";
  ASSERT_EQ(router.control_api().handle(meta).status, 200);

  ui::PolicyEditor editor(router.control_api());
  ui::PolicyPanels panels;
  panels.who_tags = {"kids"};
  panels.limit_to_sites = true;
  panels.sites = {"*.facebook.com"};
  panels.key_unlocks = true;
  panels.unlock_token = "parent-key";
  ASSERT_TRUE(editor.submit(editor.compile("kids-policy", panels)));

  // Restricted: facebook yes, netflix no.
  EXPECT_TRUE(resolve(console, "www.facebook.com").has_value());
  EXPECT_FALSE(resolve(console, "video.netflix.com").has_value());

  // Insert the key → restrictions lift; remove → they return.
  const auto slot =
      router.policy().usb().insert(ui::PolicyEditor::make_unlock_key("parent-key"));
  ASSERT_NE(slot, 0u);
  EXPECT_TRUE(resolve(console, "video.netflix.com").has_value());
  router.policy().usb().remove(slot);
  EXPECT_FALSE(resolve(console, "video.netflix.com").has_value());
}

TEST_F(IntegrationFixture, WrongKeyDoesNotUnlock) {
  sim::Host& console = admitted_device("kids-console");
  policy::PolicyDocument p;
  p.id = "kids";
  p.who.macs = {console.mac().to_string()};
  p.sites.kind = policy::SiteRuleKind::AllowOnly;
  p.sites.domains = {"*.facebook.com"};
  p.unlock = policy::UnlockEffect::LiftAll;
  p.unlock_token = "parent-key";
  router.policy().install(std::move(p));

  const auto slot =
      router.policy().usb().insert(ui::PolicyEditor::make_unlock_key("kid-forgery"));
  ASSERT_NE(slot, 0u);
  EXPECT_FALSE(resolve(console, "video.netflix.com").has_value());
}

TEST_F(IntegrationFixture, TcpDownloadFlowsBothDirections) {
  sim::Host& host = admitted_device("laptop");
  const auto web = resolve(host, "www.example.com");
  ASSERT_TRUE(web.has_value());

  host.send_tcp(*web, 45000, 80, net::TcpFlags::kSyn, 0);
  loop.run_for(kSecond);
  for (int i = 0; i < 5; ++i) {
    host.send_tcp(*web, 45000, 80, net::TcpFlags::kAck | net::TcpFlags::kPsh,
                  300);
    loop.run_for(500 * kMillisecond);
  }
  loop.run_for(2 * kSecond);

  // The upstream served responses (the download) and both directions appear
  // in the Flows table.
  EXPECT_GT(router.upstream().stats().bytes_served, 0u);
  auto rs = router.db().query(
      "SELECT src_ip, sum(bytes) FROM Flows WHERE app = 'web' GROUP BY src_ip");
  ASSERT_TRUE(rs.ok());
  std::set<std::string> srcs;
  for (const auto& row : rs.value().rows) srcs.insert(row[0].as_text());
  EXPECT_EQ(srcs.count(host.ip()->to_string()), 1u);  // upload direction
  EXPECT_EQ(srcs.count(web->to_string()), 1u);        // download direction
}

TEST_F(IntegrationFixture, ColdStartToFirstByteUnderASecond) {
  // Control-plane latency shape check: admission → lease → first forwarded
  // packet happens within a virtual second once the device is permitted.
  sim::Host& host = make_device("phone");
  permit(host);
  const Timestamp start = loop.now();
  ASSERT_TRUE(bind(host).has_value());
  EXPECT_LT(loop.now() - start, kSecond);
}

struct CaptureFixture : RouterFixture {
  static HomeworkRouter::Config config() {
    auto c = default_config();
    c.admission = DeviceRegistry::AdmissionDefault::PermitAll;
    c.capture_uplink = true;
    return c;
  }
  CaptureFixture() : RouterFixture(config()) {}
};

TEST_F(CaptureFixture, UplinkPcapCaptureRoundTrips) {
  sim::Host& host = make_device("laptop");
  ASSERT_TRUE(bind(host).has_value());
  std::optional<Ipv4Address> web;
  host.resolve("www.example.com", [&](Result<Ipv4Address> r, const std::string&) {
    if (r.ok()) web = r.value();
  });
  loop.run_for(2 * kSecond);
  ASSERT_TRUE(web.has_value());
  for (int i = 0; i < 5; ++i) {
    host.send_udp(*web, 5000, 8080, 200);
    loop.run_for(200 * kMillisecond);
  }

  // Both directions captured: the relayed DNS exchange plus the UDP flow.
  auto& trace = router.uplink_trace();
  EXPECT_GT(trace.parsed_at("uplink-tx").size(), 4u);
  EXPECT_GE(trace.parsed_at("uplink-rx").size(), 1u);

  // The capture round-trips through the pcap format with frames intact.
  const std::string path = ::testing::TempDir() + "/hw_uplink_test.pcap";
  ASSERT_TRUE(sim::write_pcap(trace, path).ok());
  auto packets = sim::read_pcap(path);
  ASSERT_TRUE(packets.ok());
  ASSERT_EQ(packets.value().size(), trace.size());
  std::size_t udp_8080 = 0;
  for (const auto& pkt : packets.value()) {
    auto p = net::ParsedPacket::parse(pkt.frame);
    if (p.ok() && p.value().udp && p.value().udp->dst_port == 8080) ++udp_8080;
  }
  EXPECT_EQ(udp_8080, 5u);
  std::remove(path.c_str());
}

TEST_F(IntegrationFixture, RouterSurvivesGarbageTraffic) {
  sim::Host& host = admitted_device("laptop");
  (void)host;
  // Blast malformed frames at every layer boundary.
  router.datapath().receive_frame(2, Bytes{});
  router.datapath().receive_frame(2, Bytes{0x01});
  router.datapath().receive_frame(2, Bytes(13, 0xff));
  Bytes truncated_ip = net::build_udp(
      MacAddress::from_index(1), router.config().router_mac,
      Ipv4Address{192, 168, 1, 100}, Ipv4Address{8, 8, 8, 8}, 1, 53, Bytes(64, 0));
  truncated_ip.resize(20);
  router.datapath().receive_frame(2, truncated_ip);
  loop.run_for(kSecond);
  // Still alive and serving.
  HttpRequest status;
  status.method = "GET";
  status.path = "/api/status";
  EXPECT_EQ(router.control_api().handle(status).status, 200);
}

TEST_F(IntegrationFixture, TelemetryExportedThroughHwdb) {
  // The router's self-measurement: MetricsExport polls the telemetry
  // registry into the Metrics table, so the same CQL surface every display
  // reads from must return the platform's own live counters.
  sim::Host& host = admitted_device("laptop");
  ASSERT_TRUE(resolve(host, "www.example.com").has_value());
  loop.run_for(2 * kSecond);  // at least one poll interval past the traffic

  const auto rs = router.db().query("SELECT name, value FROM Metrics [NOW]");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().columns.size(), 2u);
  ASSERT_FALSE(rs.value().rows.empty());

  auto value_of = [&](const std::string& name) -> std::optional<double> {
    for (const auto& row : rs.value().rows) {
      if (row[0].as_text() == name) return row[1].as_real();
    }
    return std::nullopt;
  };
  // One live counter per layer of the stack, all driven by the DHCP + DNS
  // traffic above.
  for (const char* name :
       {"openflow.flow_table.lookups", "nox.controller.packet_ins",
        "homework.dhcp.acks", "hwdb.database.inserts", "sim.host.tx_frames"}) {
    const auto v = value_of(name);
    ASSERT_TRUE(v.has_value()) << name;
    EXPECT_GT(*v, 0.0) << name;
  }
  // The hot-path histograms export flattened percentiles.
  for (const char* name :
       {"openflow.flow_table.lookup_ns.p99",
        "nox.controller.packet_in_dispatch_ns.p99",
        "hwdb.database.insert_ns.p99"}) {
    const auto v = value_of(name);
    ASSERT_TRUE(v.has_value()) << name;
    EXPECT_GT(*v, 0.0) << name;
  }
}

}  // namespace
}  // namespace hw::homework
