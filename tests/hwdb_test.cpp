// hwdb: typed tables over ring buffers, the CQL-variant parser, windowed
// query execution with filters/grouping/aggregates, and continuous queries.
#include <gtest/gtest.h>

#include "hwdb/cql_parser.hpp"
#include "hwdb/database.hpp"
#include "hwdb/executor.hpp"

namespace hw::hwdb {
namespace {

Schema flows_schema() {
  return Schema("Flows", {{"device", ColumnType::Text},
                          {"app", ColumnType::Text},
                          {"bytes", ColumnType::Int},
                          {"rtt", ColumnType::Real}});
}

// ---------------------------------------------------------------------------
// Values

TEST(Value, TypesAndConversions) {
  EXPECT_EQ(Value{42}.type(), ColumnType::Int);
  EXPECT_EQ(Value{4.5}.type(), ColumnType::Real);
  EXPECT_EQ(Value{"x"}.type(), ColumnType::Text);
  EXPECT_EQ(Value::ts(9).type(), ColumnType::Ts);
  EXPECT_EQ(Value{42}.as_real(), 42.0);
  EXPECT_EQ(Value{4.5}.as_int(), 4);
  EXPECT_EQ(Value::ts(9).as_ts(), 9u);
  EXPECT_EQ(Value{"abc"}.as_text(), "abc");
}

TEST(Value, CompareNumericAndText) {
  EXPECT_EQ(Value{1}.compare(Value{2}), -1);
  EXPECT_EQ(Value{2.0}.compare(Value{2}), 0);  // cross-type numeric
  EXPECT_EQ(Value{"b"}.compare(Value{"a"}), 1);
  EXPECT_TRUE(Value{"x"} == Value{"x"});
}

TEST(Value, FromString) {
  EXPECT_EQ(Value::from_string(ColumnType::Int, "-7").value().as_int(), -7);
  EXPECT_EQ(Value::from_string(ColumnType::Real, "2.5").value().as_real(), 2.5);
  EXPECT_EQ(Value::from_string(ColumnType::Text, "hi").value().as_text(), "hi");
  EXPECT_EQ(Value::from_string(ColumnType::Ts, "123").value().as_ts(), 123u);
  EXPECT_FALSE(Value::from_string(ColumnType::Int, "xyz").ok());
  EXPECT_FALSE(Value::from_string(ColumnType::Real, "1.2.3").ok());
}

// ---------------------------------------------------------------------------
// Tables

TEST(Table, InsertValidatesArityAndTypes) {
  Table t(flows_schema(), 8);
  EXPECT_TRUE(t.insert(0, {Value{"mac"}, Value{"web"}, Value{100}, Value{0.5}}).ok());
  EXPECT_FALSE(t.insert(0, {Value{"mac"}, Value{"web"}, Value{100}}).ok());
  // Text where Int expected: rejected.
  EXPECT_FALSE(
      t.insert(0, {Value{"mac"}, Value{"web"}, Value{"oops"}, Value{0.5}}).ok());
  // Int where Real expected: converted.
  EXPECT_TRUE(t.insert(0, {Value{"mac"}, Value{"web"}, Value{100}, Value{2}}).ok());
  EXPECT_EQ(t.rows().newest().values[3].type(), ColumnType::Real);
}

TEST(Table, EphemeralFixedSize) {
  Table t(flows_schema(), 4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        t.insert(static_cast<Timestamp>(i),
                 {Value{"m"}, Value{"web"}, Value{i}, Value{0.0}})
            .ok());
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.evicted(), 6u);
  EXPECT_EQ(t.inserted(), 10u);
  EXPECT_EQ(t.rows().oldest().values[2].as_int(), 6);
  EXPECT_EQ(t.newest_ts(), 9u);
}

TEST(Schema, CaseInsensitiveColumnLookup) {
  const Schema s = flows_schema();
  EXPECT_EQ(s.column_index("BYTES"), 2);
  EXPECT_EQ(s.column_index("Device"), 0);
  EXPECT_EQ(s.column_index("nope"), -1);
}

// ---------------------------------------------------------------------------
// CQL parser

TEST(CqlParser, SelectStar) {
  auto q = parse_query("SELECT * FROM Flows");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().projections.empty());
  EXPECT_EQ(q.value().table, "Flows");
  EXPECT_EQ(q.value().window.kind, Window::Kind::All);
}

TEST(CqlParser, Columns) {
  auto q = parse_query("select device, bytes from Flows");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().projections.size(), 2u);
  EXPECT_EQ(q.value().projections[0].column, "device");
  EXPECT_EQ(q.value().projections[1].column, "bytes");
}

TEST(CqlParser, Windows) {
  EXPECT_EQ(parse_query("SELECT * FROM t [RANGE 30 SECONDS]").value().window.kind,
            Window::Kind::Range);
  EXPECT_EQ(parse_query("SELECT * FROM t [RANGE 30 SECONDS]").value().window.amount,
            30u);
  EXPECT_EQ(parse_query("SELECT * FROM t [RANGE 2 MINUTES]").value().window.amount,
            120u);
  EXPECT_EQ(parse_query("SELECT * FROM t [RANGE 1 HOUR]").value().window.amount,
            3600u);
  EXPECT_EQ(parse_query("SELECT * FROM t [ROWS 5]").value().window.kind,
            Window::Kind::Rows);
  EXPECT_EQ(parse_query("SELECT * FROM t [NOW]").value().window.kind,
            Window::Kind::Now);
  EXPECT_EQ(parse_query("SELECT * FROM t [SINCE 1000]").value().window.amount,
            1000u);
}

TEST(CqlParser, WhereTree) {
  auto q = parse_query(
      "SELECT * FROM Flows WHERE (app = 'web' OR app = 'dns') AND bytes > 100 "
      "AND NOT device CONTAINS 'ff'");
  ASSERT_TRUE(q.ok());
  ASSERT_NE(q.value().where, nullptr);
  EXPECT_EQ(q.value().where->kind, Predicate::Kind::And);
}

TEST(CqlParser, AggregatesAndGroupBy) {
  auto q = parse_query(
      "SELECT device, sum(bytes), avg(rtt), count(*) FROM Flows "
      "[RANGE 10 SECONDS] GROUP BY device");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().projections.size(), 4u);
  EXPECT_EQ(q.value().projections[1].fn, AggFn::Sum);
  EXPECT_EQ(q.value().projections[2].fn, AggFn::Avg);
  EXPECT_EQ(q.value().projections[3].fn, AggFn::Count);
  EXPECT_EQ(q.value().projections[3].column, "*");
  EXPECT_EQ(q.value().group_by, (std::vector<std::string>{"device"}));
  EXPECT_TRUE(q.value().has_aggregates());
}

TEST(CqlParser, LastAggregate) {
  auto q = parse_query("SELECT mac, last(rssi) FROM Links GROUP BY mac");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().projections[1].fn, AggFn::Last);
}

TEST(CqlParser, Errors) {
  EXPECT_FALSE(parse_query("").ok());
  EXPECT_FALSE(parse_query("SELEC * FROM t").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t [RANGE]").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t [RANGE 5]").ok());          // no unit
  EXPECT_FALSE(parse_query("SELECT * FROM t [BOGUS 5]").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t WHERE a >").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t WHERE a ?? 1").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t trailing").ok());
  EXPECT_FALSE(parse_query("SELECT bogus(x) FROM t").ok());
  EXPECT_FALSE(parse_query("SELECT sum(*) FROM t").ok());
  // Ungrouped plain column alongside an aggregate.
  EXPECT_FALSE(parse_query("SELECT device, sum(bytes) FROM t").ok());
  // SELECT * with GROUP BY is ambiguous.
  EXPECT_FALSE(parse_query("SELECT * FROM t GROUP BY a").ok());
}

// ---------------------------------------------------------------------------
// Executor

struct ExecutorFixture : ::testing::Test {
  ExecutorFixture() : table(flows_schema(), 64) {
    // 10 rows, one per second: devices alternate, apps cycle.
    for (int i = 0; i < 10; ++i) {
      const char* device = i % 2 == 0 ? "mac-a" : "mac-b";
      const char* app = i % 3 == 0 ? "web" : (i % 3 == 1 ? "dns" : "streaming");
      EXPECT_TRUE(table
                      .insert(static_cast<Timestamp>(i) * kSecond,
                              {Value{device}, Value{app}, Value{(i + 1) * 100},
                               Value{static_cast<double>(i) / 10}})
                      .ok());
    }
  }

  ResultSet run(const std::string& text, Timestamp now = 9 * kSecond) {
    auto q = parse_query(text);
    EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error().message);
    auto rs = execute(q.value(), table, now);
    EXPECT_TRUE(rs.ok()) << (rs.ok() ? "" : rs.error().message);
    return std::move(rs).take();
  }

  Table table;
};

TEST_F(ExecutorFixture, SelectStarChronological) {
  auto rs = run("SELECT * FROM Flows");
  EXPECT_EQ(rs.rows.size(), 10u);
  EXPECT_EQ(rs.columns[0], "ts");
  EXPECT_EQ(rs.columns[1], "device");
  // Oldest first.
  EXPECT_LT(rs.rows.front()[0].as_ts(), rs.rows.back()[0].as_ts());
}

TEST_F(ExecutorFixture, RangeWindow) {
  // now=9s; RANGE 3 SECONDS keeps ts >= 6s → rows 6,7,8,9.
  auto rs = run("SELECT * FROM Flows [RANGE 3 SECONDS]");
  EXPECT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows.front()[0].as_ts(), 6 * kSecond);
}

TEST_F(ExecutorFixture, RowsWindow) {
  auto rs = run("SELECT bytes FROM Flows [ROWS 3]");
  ASSERT_EQ(rs.rows.size(), 3u);
  // The newest three, in chronological order.
  EXPECT_EQ(rs.rows[0][0].as_int(), 800);
  EXPECT_EQ(rs.rows[2][0].as_int(), 1000);
}

TEST_F(ExecutorFixture, NowWindow) {
  auto rs = run("SELECT bytes FROM Flows [NOW]");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 1000);
}

TEST_F(ExecutorFixture, SinceWindow) {
  auto rs = run("SELECT * FROM Flows [SINCE 8000000]");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorFixture, WhereFilters) {
  EXPECT_EQ(run("SELECT * FROM Flows WHERE device = 'mac-a'").rows.size(), 5u);
  EXPECT_EQ(run("SELECT * FROM Flows WHERE bytes > 500").rows.size(), 5u);
  EXPECT_EQ(run("SELECT * FROM Flows WHERE bytes >= 500").rows.size(), 6u);
  EXPECT_EQ(run("SELECT * FROM Flows WHERE app != 'web'").rows.size(), 6u);
  EXPECT_EQ(
      run("SELECT * FROM Flows WHERE device = 'mac-a' AND app = 'web'").rows.size(),
      2u);
  EXPECT_EQ(
      run("SELECT * FROM Flows WHERE app = 'web' OR app = 'dns'").rows.size(), 7u);
  EXPECT_EQ(run("SELECT * FROM Flows WHERE NOT app = 'web'").rows.size(), 6u);
  EXPECT_EQ(run("SELECT * FROM Flows WHERE device CONTAINS '-a'").rows.size(), 5u);
  EXPECT_EQ(run("SELECT * FROM Flows WHERE ts >= 8000000").rows.size(), 2u);
}

TEST_F(ExecutorFixture, WhereUnknownColumnErrors) {
  auto q = parse_query("SELECT * FROM Flows WHERE nosuch = 1");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(execute(q.value(), table, 0).ok());
}

TEST_F(ExecutorFixture, GlobalAggregates) {
  auto rs = run("SELECT sum(bytes), count(*), min(bytes), max(bytes), avg(bytes) "
                "FROM Flows GROUP BY app");
  // Three apps → three rows; verify via a total-only query instead:
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(ExecutorFixture, GroupBySums) {
  auto rs = run("SELECT device, sum(bytes) FROM Flows GROUP BY device");
  ASSERT_EQ(rs.rows.size(), 2u);
  std::int64_t total = 0;
  for (const auto& row : rs.rows) total += row[1].as_int();
  EXPECT_EQ(total, 100 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10));
  // mac-a holds rows 0,2,4,6,8 → (1+3+5+7+9)*100 = 2500.
  for (const auto& row : rs.rows) {
    if (row[0].as_text() == "mac-a") {
      EXPECT_EQ(row[1].as_int(), 2500);
    }
  }
}

TEST_F(ExecutorFixture, GroupByMultipleKeys) {
  auto rs = run("SELECT device, app, count(*) FROM Flows GROUP BY device, app");
  EXPECT_EQ(rs.rows.size(), 6u);  // 2 devices × 3 apps (all combinations hit)
}

TEST_F(ExecutorFixture, LastPicksNewest) {
  auto rs = run("SELECT device, last(bytes) FROM Flows GROUP BY device");
  for (const auto& row : rs.rows) {
    if (row[0].as_text() == "mac-a") {
      EXPECT_EQ(row[1].as_int(), 900);  // row 8
    }
    if (row[0].as_text() == "mac-b") {
      EXPECT_EQ(row[1].as_int(), 1000);  // row 9
    }
  }
}

TEST_F(ExecutorFixture, MinMaxAvg) {
  auto rs = run("SELECT min(bytes), max(bytes), avg(bytes) FROM Flows "
                "[RANGE 100 SECONDS] GROUP BY device");
  ASSERT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorFixture, WindowAndWhereCompose) {
  auto rs = run(
      "SELECT device, sum(bytes) FROM Flows [RANGE 5 SECONDS] "
      "WHERE device = 'mac-b' GROUP BY device");
  ASSERT_EQ(rs.rows.size(), 1u);
  // now=9s, range keeps ts>=4s: mac-b rows 5,7,9 → (6+8+10)*100.
  EXPECT_EQ(rs.rows[0][1].as_int(), 2400);
}

TEST_F(ExecutorFixture, EmptyWindowEmptyResult) {
  auto rs = run("SELECT * FROM Flows [SINCE 99000000]");
  EXPECT_TRUE(rs.rows.empty());
  auto agg = run("SELECT count(*) FROM Flows [SINCE 99000000] GROUP BY device");
  EXPECT_TRUE(agg.rows.empty());
}

TEST_F(ExecutorFixture, LimitKeepsNewestRows) {
  auto rs = run("SELECT bytes FROM Flows LIMIT 3");
  ASSERT_EQ(rs.rows.size(), 3u);
  // The chronological tail: rows 7,8,9 → bytes 800,900,1000.
  EXPECT_EQ(rs.rows[0][0].as_int(), 800);
  EXPECT_EQ(rs.rows[2][0].as_int(), 1000);
  // LIMIT larger than the result is a no-op.
  EXPECT_EQ(run("SELECT bytes FROM Flows LIMIT 99").rows.size(), 10u);
}

TEST_F(ExecutorFixture, LimitCapsGroups) {
  auto rs = run("SELECT device, count(*) FROM Flows GROUP BY device LIMIT 1");
  EXPECT_EQ(rs.rows.size(), 1u);
}

TEST_F(ExecutorFixture, LimitParseErrors) {
  EXPECT_FALSE(parse_query("SELECT * FROM Flows LIMIT").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM Flows LIMIT 0").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM Flows LIMIT x").ok());
}

TEST_F(ExecutorFixture, StddevAggregate) {
  // bytes are 100..1000 per device; stddev of mac-a's {100,300,500,700,900}
  // is sqrt(80000) ≈ 282.84.
  auto rs = run("SELECT device, stddev(bytes) FROM Flows GROUP BY device");
  ASSERT_EQ(rs.rows.size(), 2u);
  for (const auto& row : rs.rows) {
    if (row[0].as_text() == "mac-a") {
      EXPECT_NEAR(row[1].as_real(), 282.8427, 0.01);
    }
  }
  // Constant series → stddev 0.
  auto zero = run("SELECT stddev(bytes) FROM Flows WHERE bytes = 500 "
                  "GROUP BY device");
  ASSERT_EQ(zero.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(zero.rows[0][0].as_real(), 0.0);
}

TEST_F(ExecutorFixture, ResultSetHelpers) {
  auto rs = run("SELECT device, bytes FROM Flows [ROWS 1]");
  EXPECT_EQ(rs.column_index("BYTES"), 1);
  EXPECT_EQ(rs.column_index("none"), -1);
  EXPECT_NE(rs.to_string().find("device\tbytes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Temporal joins ("relational operations" in the paper's description)

TEST(CqlParser, JoinClause) {
  auto q = parse_query(
      "SELECT hostname, sum(bytes) FROM Flows [RANGE 10 SECONDS] "
      "JOIN Leases ON device = mac GROUP BY hostname");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q.value().join.has_value());
  EXPECT_EQ(q.value().join->table, "Leases");
  EXPECT_EQ(q.value().join->left_column, "device");
  EXPECT_EQ(q.value().join->right_column, "mac");
}

TEST(CqlParser, JoinQualifiedOnColumns) {
  auto q = parse_query(
      "SELECT device FROM Flows JOIN Leases ON Flows.device = Leases.mac "
      "GROUP BY device");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().join->left_column, "device");
  EXPECT_EQ(q.value().join->right_column, "mac");
}

TEST(CqlParser, JoinErrors) {
  EXPECT_FALSE(parse_query("SELECT * FROM a JOIN").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM a JOIN b").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM a JOIN b ON x").ok());
  EXPECT_FALSE(parse_query("SELECT * FROM a JOIN b ON x > y").ok());
}

struct JoinFixture : ::testing::Test {
  JoinFixture() : db(loop) {
    EXPECT_TRUE(db.create_table(flows_schema(), 64).ok());
    EXPECT_TRUE(db.create_table(Schema("Leases", {{"mac", ColumnType::Text},
                                                  {"hostname", ColumnType::Text}}),
                                16)
                    .ok());
    // Chronological event stream (virtual time cannot rewind):
    //   t=0 lease m1="laptop", t=1 flow m1, t=2 lease m2="phone",
    //   t=3 flow m2, t=5 lease m1 renamed "toms-laptop", t=6 flow m1,
    //   t=7 flow from unknown m3.
    insert_at(0, "Leases", {Value{"m1"}, Value{"laptop"}});
    insert_at(1, "Flows", {Value{"m1"}, Value{"web"}, Value{100}, Value{0.0}});
    insert_at(2, "Leases", {Value{"m2"}, Value{"phone"}});
    insert_at(3, "Flows", {Value{"m2"}, Value{"dns"}, Value{50}, Value{0.0}});
    insert_at(5, "Leases", {Value{"m1"}, Value{"toms-laptop"}});
    insert_at(6, "Flows", {Value{"m1"}, Value{"web"}, Value{200}, Value{0.0}});
    insert_at(7, "Flows", {Value{"m3"}, Value{"web"}, Value{10}, Value{0.0}});
  }

  void insert_at(int second, const std::string& table, std::vector<Value> v) {
    loop.run_until(static_cast<Timestamp>(second) * kSecond);
    ASSERT_TRUE(db.insert(table, std::move(v)).ok());
  }

  sim::EventLoop loop;
  Database db;
};

TEST_F(JoinFixture, AsOfSemanticsPickContemporaryRow) {
  auto rs = db.query(
      "SELECT device, hostname, bytes FROM Flows JOIN Leases ON device = mac");
  ASSERT_TRUE(rs.ok());
  // m3 has no lease → dropped; three joined rows remain, chronological.
  ASSERT_EQ(rs.value().rows.size(), 3u);
  // t=1 flow joins the t=0 lease ("laptop"), not the later rename.
  EXPECT_EQ(rs.value().rows[0][1].as_text(), "laptop");
  // t=3 flow (m2) joins "phone".
  EXPECT_EQ(rs.value().rows[1][1].as_text(), "phone");
  // t=6 flow joins the t=5 rename ("toms-laptop").
  EXPECT_EQ(rs.value().rows[2][1].as_text(), "toms-laptop");
}

TEST_F(JoinFixture, JoinWithGroupByAndAggregates) {
  auto rs = db.query(
      "SELECT hostname, sum(bytes) FROM Flows JOIN Leases ON device = mac "
      "GROUP BY hostname");
  ASSERT_TRUE(rs.ok());
  std::map<std::string, std::int64_t> by_host;
  for (const auto& row : rs.value().rows) {
    by_host[row[0].as_text()] = row[1].as_int();
  }
  EXPECT_EQ(by_host["laptop"], 100);
  EXPECT_EQ(by_host["toms-laptop"], 200);
  EXPECT_EQ(by_host["phone"], 50);
}

TEST_F(JoinFixture, JoinRespectsWindowAndWhere) {
  // now = 7s; RANGE 5 keeps flows with ts >= 2s.
  auto rs = db.query(
      "SELECT device, hostname FROM Flows [RANGE 5 SECONDS] "
      "JOIN Leases ON device = mac WHERE hostname CONTAINS 'lap'");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][1].as_text(), "toms-laptop");
}

TEST_F(JoinFixture, QualifiedProjectionsResolveBothSides) {
  auto rs = db.query(
      "SELECT Flows.device, Leases.hostname FROM Flows "
      "JOIN Leases ON device = mac [ROWS 100]");
  // Window comes before JOIN in the grammar; this should fail to parse...
  EXPECT_FALSE(rs.ok());
  rs = db.query(
      "SELECT Flows.device, Leases.hostname FROM Flows [ROWS 100] "
      "JOIN Leases ON device = mac");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().columns[0], "Flows.device");
  EXPECT_EQ(rs.value().rows.size(), 3u);
}

TEST_F(JoinFixture, SelectStarQualifiesColumns) {
  auto rs = db.query("SELECT * FROM Flows JOIN Leases ON device = mac");
  ASSERT_TRUE(rs.ok());
  // ts + 4 Flows columns + 2 Leases columns.
  ASSERT_EQ(rs.value().columns.size(), 7u);
  EXPECT_EQ(rs.value().columns[1], "Flows.device");
  EXPECT_EQ(rs.value().columns[6], "Leases.hostname");
}

TEST_F(JoinFixture, JoinAgainstMissingTableFails) {
  EXPECT_FALSE(db.query("SELECT * FROM Flows JOIN Ghost ON device = mac").ok());
  EXPECT_FALSE(
      db.query("SELECT * FROM Flows JOIN Leases ON nosuch = mac").ok());
  EXPECT_FALSE(
      db.query("SELECT * FROM Flows JOIN Leases ON device = nosuch").ok());
}

// ---------------------------------------------------------------------------
// Database + subscriptions

struct DatabaseFixture : ::testing::Test {
  DatabaseFixture() : db(loop) {
    EXPECT_TRUE(db.create_table(flows_schema(), 128).ok());
  }
  sim::EventLoop loop;
  Database db;
};

TEST_F(DatabaseFixture, CreateDuplicateFails) {
  EXPECT_FALSE(db.create_table(flows_schema(), 16).ok());
  EXPECT_FALSE(db.create_table(Schema("Empty", {}), 0).ok());
  EXPECT_EQ(db.table_names(), (std::vector<std::string>{"Flows"}));
}

TEST_F(DatabaseFixture, InsertStampsVirtualTime) {
  loop.run_until(5 * kSecond);
  ASSERT_TRUE(db.insert("Flows", {Value{"m"}, Value{"web"}, Value{1}, Value{0.0}})
                  .ok());
  EXPECT_EQ(db.table("Flows")->newest_ts(), 5 * kSecond);
  EXPECT_FALSE(db.insert("NoTable", {}).ok());
  EXPECT_EQ(db.stats().inserts, 1u);
  EXPECT_EQ(db.stats().insert_errors, 1u);
}

TEST_F(DatabaseFixture, QueryText) {
  db.insert("Flows", {Value{"m"}, Value{"web"}, Value{1}, Value{0.0}});
  auto rs = db.query("SELECT device FROM Flows");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows.size(), 1u);
  EXPECT_FALSE(db.query("SELECT device FROM Nope").ok());
  EXPECT_FALSE(db.query("garbage").ok());
}

TEST_F(DatabaseFixture, PeriodicSubscriptionFires) {
  int fires = 0;
  std::size_t last_rows = 0;
  auto sub = db.subscribe("SELECT * FROM Flows [RANGE 10 SECONDS]",
                          SubscriptionMode::Periodic, kSecond,
                          [&](SubscriptionId, const ResultSet& rs) {
                            ++fires;
                            last_rows = rs.rows.size();
                          });
  ASSERT_TRUE(sub.ok());
  db.insert("Flows", {Value{"m"}, Value{"web"}, Value{1}, Value{0.0}});
  loop.run_for(3 * kSecond + kMillisecond);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(last_rows, 1u);

  db.unsubscribe(sub.value());
  loop.run_for(3 * kSecond);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(db.subscription_count(), 0u);
}

TEST_F(DatabaseFixture, OnInsertSubscriptionFiresPerInsert) {
  int fires = 0;
  auto sub = db.subscribe("SELECT count(*) FROM Flows GROUP BY device",
                          SubscriptionMode::OnInsert, 0,
                          [&](SubscriptionId, const ResultSet&) { ++fires; });
  ASSERT_TRUE(sub.ok());
  for (int i = 0; i < 4; ++i) {
    db.insert("Flows", {Value{"m"}, Value{"web"}, Value{i}, Value{0.0}});
  }
  EXPECT_EQ(fires, 4);
}

TEST_F(DatabaseFixture, SubscriptionValidation) {
  EXPECT_FALSE(db.subscribe("garbage", SubscriptionMode::Periodic, kSecond,
                            [](SubscriptionId, const ResultSet&) {})
                   .ok());
  EXPECT_FALSE(db.subscribe("SELECT * FROM Ghost", SubscriptionMode::Periodic,
                            kSecond, [](SubscriptionId, const ResultSet&) {})
                   .ok());
  EXPECT_FALSE(db.subscribe("SELECT * FROM Flows", SubscriptionMode::Periodic, 0,
                            [](SubscriptionId, const ResultSet&) {})
                   .ok());
}

}  // namespace
}  // namespace hw::hwdb
