// Checkpoint/restore suite: the chunked-TLV codec's validation surface
// (every truncation, every single-byte flip), the coordinator's layer walk
// over a live home (capture → restore into a freshly booted router), warm
// restart refilling the datapath flow table from the last image, the
// crash-restart-restore fault, and atomic file persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "homework/router.hpp"
#include "sim/fault_injector.hpp"
#include "snapshot/codec.hpp"
#include "snapshot/coordinator.hpp"
#include "telemetry/metrics.hpp"

namespace hw::snapshot {
namespace {

// ---------------------------------------------------------------------------
// Codec

TEST(SnapshotCodec, RoundTripMultiChunk) {
  Writer w;
  ByteWriter& a = w.begin_chunk(tag("AAAA"));
  a.u64(7);
  a.u32(9);
  w.end_chunk();
  ByteWriter& b = w.begin_chunk(tag("BBBB"));
  put_string(b, "hello");
  put_mac(b, MacAddress::from_index(42));
  put_ip(b, Ipv4Address{192, 168, 1, 5});
  w.end_chunk();
  w.begin_chunk(tag("AAAA")).u64(8);  // repeated tag, image order kept
  w.end_chunk();
  const Bytes image = std::move(w).finish();

  auto r = Reader::parse(image);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().chunk_count(), 3u);

  const Bytes* bb = r.value().find(tag("BBBB"));
  ASSERT_NE(bb, nullptr);
  ByteReader br(*bb);
  EXPECT_EQ(get_string(br).value(), "hello");
  EXPECT_EQ(get_mac(br).value(), MacAddress::from_index(42));
  EXPECT_EQ(get_ip(br).value(), (Ipv4Address{192, 168, 1, 5}));

  const auto all = r.value().find_all(tag("AAAA"));
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(ByteReader(*all[0]).u64().value(), 7u);
  EXPECT_EQ(ByteReader(*all[1]).u64().value(), 8u);

  // Unknown tags read as absent, never as an error.
  EXPECT_EQ(r.value().find(tag("ZZZZ")), nullptr);
}

TEST(SnapshotCodec, RejectsEveryTruncation) {
  Writer w;
  w.begin_chunk(tag("DATA")).u64(0x1122334455667788ull);
  w.end_chunk();
  const Bytes image = std::move(w).finish();
  for (std::size_t len = 0; len < image.size(); ++len) {
    const Bytes prefix(image.begin(), image.begin() + static_cast<long>(len));
    EXPECT_FALSE(Reader::parse(prefix).ok()) << "accepted " << len << " bytes";
  }
  // Trailing garbage is a torn image too, not padding.
  Bytes padded = image;
  padded.push_back(0);
  EXPECT_FALSE(Reader::parse(padded).ok());
}

TEST(SnapshotCodec, RejectsEverySingleByteFlip) {
  Writer w;
  ByteWriter& c = w.begin_chunk(tag("DATA"));
  put_string(c, "state that must never be half-trusted");
  w.end_chunk();
  w.begin_chunk(tag("MORE")).u32(12345);
  w.end_chunk();
  const Bytes image = std::move(w).finish();
  for (std::size_t i = 0; i < image.size(); ++i) {
    Bytes bad = image;
    bad[i] ^= 0x01;
    EXPECT_FALSE(Reader::parse(bad).ok()) << "accepted flip at offset " << i;
  }
}

TEST(SnapshotCodec, HelperDecodersFailCleanlyOnShortInput) {
  ByteWriter w;
  put_string(w, "abc");
  Bytes bytes = std::move(w).take();
  bytes.pop_back();  // truncate inside the string body
  ByteReader r(bytes);
  EXPECT_FALSE(get_string(r).ok());

  ByteReader empty{std::span<const std::uint8_t>{}};
  EXPECT_FALSE(get_mac(empty).ok());
  EXPECT_FALSE(get_ip(empty).ok());
}

// ---------------------------------------------------------------------------
// A small live home to snapshot: booted router, two bound devices, a few
// forwarding flows, hwdb rows from the export modules, a policy document.

struct Rig {
  Rig() : rng(7), router(loop, rng, config(), registry) {
    router.start();
    a = attach("laptop", 1);
    b = attach("phone", 2);
    bind(*a);
    bind(*b);
    // Kick real traffic through the datapath so the flow table fills.
    a->send_udp(Ipv4Address{93, 184, 216, 34}, 1000, 80, 64);
    b->send_udp(Ipv4Address{93, 184, 216, 34}, 1001, 443, 64);
    loop.run_for(2 * kSecond);  // export polls fill hwdb tables

    policy::PolicyDocument doc;
    doc.id = "no-video";
    doc.who.tags = {"kids"};
    doc.sites.kind = policy::SiteRuleKind::Block;
    doc.sites.domains = {"video.netflix.com"};
    router.policy().install(doc);
    router.policy().set_tags("aa:bb", {"kids"});
  }

  static homework::HomeworkRouter::Config config() {
    homework::HomeworkRouter::Config c;
    c.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
    return c;
  }

  sim::Host* attach(const std::string& name, std::uint32_t idx) {
    sim::Host::Config hc;
    hc.name = name;
    hc.mac = MacAddress::from_index(idx);
    hosts.push_back(std::make_unique<sim::Host>(loop, hc, rng));
    router.attach_device(*hosts.back(), std::nullopt);
    return hosts.back().get();
  }

  void bind(sim::Host& host) {
    host.start_dhcp();
    const Timestamp deadline = loop.now() + 5 * kSecond;
    while (loop.now() < deadline && !host.ip()) loop.run_for(50 * kMillisecond);
    ASSERT_TRUE(host.ip().has_value());
  }

  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scope{registry};
  sim::EventLoop loop;
  Rng rng;
  homework::HomeworkRouter router;
  std::vector<std::unique_ptr<sim::Host>> hosts;
  sim::Host* a = nullptr;
  sim::Host* b = nullptr;
};

TEST(SnapshotCoordinator, CaptureRestoresEveryLayerIntoAFreshHome) {
  Rig first;
  const SnapshotImage image = first.router.snapshots().capture();
  EXPECT_EQ(image.captured_at, first.loop.now());
  EXPECT_GT(image.bytes.size(), 100u);
  EXPECT_GT(first.registry.total("snapshot.captures").value_or(0), 0.0);

  const std::size_t flows = first.router.datapath().table().size();
  const std::size_t metrics_rows = first.router.db().table("Metrics")->size();
  ASSERT_GT(flows, 0u);
  ASSERT_GT(metrics_rows, 0u);

  // A freshly booted home (no devices ever attached) adopts the image.
  telemetry::MetricRegistry reg2;
  telemetry::ScopedMetricRegistry scope2(reg2);
  sim::EventLoop loop2;
  Rng rng2(99);
  homework::HomeworkRouter router2(loop2, rng2, Rig::config(), reg2);
  router2.start();
  auto restored = router2.snapshots().restore(image);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_GT(reg2.total("snapshot.restores").value_or(0), 0.0);

  // Flow table, hwdb contents, registry records with leases, policy docs.
  EXPECT_EQ(router2.datapath().table().size(), flows);
  EXPECT_EQ(router2.db().table("Metrics")->size(), metrics_rows);
  EXPECT_EQ(router2.registry().size(), first.router.registry().size());
  const auto* rec = router2.registry().find(first.a->mac());
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->lease.has_value());
  EXPECT_EQ(rec->lease->ip, first.a->ip());
  ASSERT_EQ(router2.policy().policies().size(), 1u);
  EXPECT_EQ(router2.policy().policies()[0]->id, "no-video");
  EXPECT_EQ(router2.policy().tags_of("aa:bb"),
            std::vector<std::string>{"kids"});

  // DHCP allocations survived: the same MAC discovering again gets the same
  // address back from the restored pool.
  sim::Host::Config hc;
  hc.name = "laptop-after-restore";
  hc.mac = first.a->mac();
  sim::Host again(loop2, hc, rng2);
  router2.attach_device(again, std::nullopt);
  again.start_dhcp();
  loop2.run_for(2 * kSecond);
  ASSERT_TRUE(again.ip().has_value());
  EXPECT_EQ(again.ip(), first.a->ip());
}

TEST(SnapshotCoordinator, CorruptImageRejectedAtEveryOffsetWithoutSideEffects) {
  Rig rig;
  const SnapshotImage image = rig.router.snapshots().capture();
  const std::size_t flows = rig.router.datapath().table().size();
  ASSERT_GT(flows, 0u);

  for (std::size_t i = 0; i < image.bytes.size(); ++i) {
    Bytes bad = image.bytes;
    bad[i] ^= 0x40;
    EXPECT_FALSE(rig.router.snapshots().restore(bad).ok())
        << "accepted corrupt image, flip at offset " << i;
  }
  EXPECT_EQ(rig.registry.total("snapshot.corrupt_rejected").value_or(0),
            static_cast<double>(image.bytes.size()));
  EXPECT_EQ(rig.registry.total("snapshot.restores").value_or(0), 0.0);

  // No layer was touched: recapturing at the same virtual instant yields a
  // byte-identical image.
  EXPECT_EQ(rig.router.snapshots().capture().bytes, image.bytes);
  EXPECT_EQ(rig.router.datapath().table().size(), flows);
}

TEST(SnapshotCoordinator, WarmRestartRefillsTheFlowTable) {
  Rig rig;
  (void)rig.router.snapshots().capture();
  const std::size_t flows = rig.router.datapath().table().size();
  ASSERT_GT(flows, 0u);

  auto s = rig.router.warm_restart();
  ASSERT_TRUE(s.ok()) << s.error().message;
  EXPECT_EQ(rig.router.datapath().table().size(), flows);
  EXPECT_FALSE(rig.router.datapath().fail_safe());

  // Established traffic keeps flowing on the restored entries.
  const auto before = rig.registry.total("sim.link.tx_frames").value_or(0);
  rig.a->send_udp(Ipv4Address{93, 184, 216, 34}, 1000, 80, 64);
  rig.loop.run_for(100 * kMillisecond);
  EXPECT_GT(rig.registry.total("sim.link.tx_frames").value_or(0), before);
}

TEST(SnapshotCoordinator, WarmRestartWithoutImageIsACleanColdStart) {
  Rig rig;
  ASSERT_GT(rig.router.datapath().table().size(), 0u);
  ASSERT_FALSE(rig.router.snapshots().last_image().has_value());
  EXPECT_TRUE(rig.router.warm_restart().ok());
  EXPECT_EQ(rig.router.datapath().table().size(), 0u);  // cold wipe
}

TEST(SnapshotFaults, CrashRestartRestoreFaultRestoresFromLastCheckpoint) {
  Rig rig;
  rig.router.snapshots().start_periodic_captures(
      kSecond, {}, homework::HomeworkRouter::kBootSettle);

  sim::FaultInjector faults(rig.loop);
  rig.router.attach_faults(faults);
  sim::FaultPlan plan;
  plan.seed = 5;
  plan.windows.push_back(
      {sim::FaultKind::CrashRestartRestore, rig.loop.now() + 3 * kSecond, 0,
       "*", 0.0, {}});
  faults.arm(plan);
  rig.loop.run_for(4 * kSecond);

  EXPECT_EQ(faults.stats().crash_restores, 1u);
  EXPECT_EQ(faults.stats().active, 0);
  EXPECT_GT(rig.registry.total("snapshot.captures").value_or(0), 0.0);
  EXPECT_GT(rig.router.datapath().table().size(), 0u)
      << "crash-restart-restore left the flow table cold";
  EXPECT_FALSE(rig.router.datapath().fail_safe());
}

TEST(SnapshotCoordinator, PeriodicCapturesLandOnThePhaseGrid) {
  Rig rig;
  std::vector<Timestamp> at;
  rig.router.snapshots().start_periodic_captures(
      kSecond, [&](const SnapshotImage& img) { at.push_back(img.captured_at); },
      homework::HomeworkRouter::kBootSettle);
  rig.loop.run_until(6 * kSecond);
  ASSERT_GE(at.size(), 2u);
  for (const Timestamp t : at) {
    EXPECT_EQ((t - homework::HomeworkRouter::kBootSettle) % kSecond, 0u)
        << "capture off the k*interval+settle grid at t=" << t;
  }
  rig.router.snapshots().stop_periodic_captures();
  const std::size_t captured = at.size();
  rig.loop.run_for(2 * kSecond);
  EXPECT_EQ(at.size(), captured);
}

TEST(SnapshotFiles, AtomicWriteThenReadRoundTrip) {
  Rig rig;
  const SnapshotImage image = rig.router.snapshots().capture();
  const std::string path = ::testing::TempDir() + "/hw_snapshot_test.bin";

  ASSERT_TRUE(SnapshotCoordinator::write_file(path, image).ok());
  auto back = SnapshotCoordinator::read_file(path);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().bytes, image.bytes);
  EXPECT_EQ(back.value().captured_at, image.captured_at);
  // No temp residue after a successful rename.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  // A torn file on disk is rejected, not half-restored.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(image.bytes.data(), 1, image.bytes.size() / 2, f);
  std::fclose(f);
  EXPECT_FALSE(SnapshotCoordinator::read_file(path).ok());

  std::remove(path.c_str());
  EXPECT_FALSE(SnapshotCoordinator::read_file(path).ok());
}

}  // namespace
}  // namespace hw::snapshot
