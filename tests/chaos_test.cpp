// Deterministic chaos suite: the fig5 scenario (full router + devices +
// hwdb measurement plane) run under a scripted FaultPlan — lossy device
// links, an hwdb drop/duplicate burst, a controller-channel outage and a
// datapath cold restart — asserting the platform recovers:
//   * no device ever holds a duplicate DHCP lease,
//   * the flow table is re-synced (barrier-confirmed) after the outage and
//     the restart,
//   * every retried hwdb insert is applied exactly once,
//   * the telemetry counters tell a self-consistent recovery story,
// and that the whole run is deterministic: the same (seed, plan) yields an
// identical counter/gauge snapshot on a second run. Histogram series are
// excluded from the determinism diff — they time wall-clock nanoseconds
// (telemetry::ScopedTimer) and legitimately differ between runs.
//
// CHAOS_SEED overrides the default seed so CI can sweep a fixed seed list.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "homework/router.hpp"
#include "hwdb/udp_transport.hpp"
#include "sim/fault_injector.hpp"
#include "telemetry/metrics.hpp"

namespace hw::homework {
namespace {

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("CHAOS_SEED")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v != 0) return v;
  }
  return 11;
}

/// Counter/gauge view of the process registry (histograms excluded: they
/// hold wall-clock latencies and are non-deterministic by construction).
std::map<std::string, double> scalar_snapshot() {
  return telemetry::MetricRegistry::instance().scalars();
}

struct ChaosResult {
  std::map<std::string, double> telemetry;  // live counters/gauges at t=30s
  std::vector<std::string> leases;          // "mac ip" per device, sorted
  std::set<std::int64_t> acked;             // insert seqs acked to the client
  std::multiset<std::int64_t> applied;      // insert seqs present in the db
  hwdb::rpc::RpcClientStats rpc_client;
  hwdb::rpc::ServerStats rpc_server;
  hwdb::rpc::RpcLinkStats rpc_link;
  sim::FaultInjectorStats faults;
  nox::ControllerStats controller;
  ofp::DatapathStats datapath;
  DhcpServerStats dhcp;
  std::size_t flow_entries = 0;
  bool fail_safe_at_end = true;
  int resync_confirmations = 0;  // barrier-confirmed re-syncs observed
  /// Canonical "match|priority|actions|cookie" rows of the final table,
  /// sorted — the replay-vs-reconcile differential compares these.
  std::vector<std::string> flow_rows;
};

/// One full scripted run. Everything (router, hosts, faults, rpc) is local,
/// so its instruments detach on return and back-to-back runs see clean
/// registry state for the series this scenario drives.
ChaosResult run_scenario(std::uint64_t seed,
                         HomeworkRouter::Config::Resync resync =
                             HomeworkRouter::Config::Resync::Reconcile) {
  sim::EventLoop loop;
  Rng rng(seed);

  HomeworkRouter::Config config;
  config.admission = DeviceRegistry::AdmissionDefault::PermitAll;
  config.liveness.probe_interval = kSecond;
  config.liveness.max_misses = 2;
  config.datapath.controller_dead_interval = 2 * kSecond;
  config.resync = resync;
  HomeworkRouter router(loop, rng, config);

  ChaosResult result;
  router.controller().on_resynced(
      [&](nox::DatapathId) { ++result.resync_confirmations; });
  router.start();

  // Three devices: d1 binds before any fault, d2 mid link-loss window, d3
  // during the controller outage (its packet-ins are denied until recovery).
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<HomeworkRouter::Attachment> attachments;
  for (int i = 0; i < 3; ++i) {
    sim::Host::Config hc;
    hc.name = "dev" + std::to_string(i + 1);
    hc.mac = MacAddress::from_index(static_cast<std::uint32_t>(i + 1));
    hosts.push_back(std::make_unique<sim::Host>(loop, hc, rng));
    attachments.push_back(router.attach_device(*hosts.back(), std::nullopt));
  }

  // The measurement plane under test: a reliable RPC client inserting a
  // monotone sequence while the link drops/duplicates datagrams.
  EXPECT_TRUE(router.db()
                  .create_table(hwdb::Schema("Chaos",
                                             {{"seq", hwdb::ColumnType::Int}}),
                                256)
                  .ok())
      << "Chaos table";
  hwdb::rpc::InProcRpcLink rpc_link(loop, router.db());
  hwdb::rpc::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.timeout = 100 * kMillisecond;
  policy.backoff_base = 50 * kMillisecond;
  policy.backoff_cap = 400 * kMillisecond;
  hwdb::rpc::RpcClient& rpc = rpc_link.make_client(policy);

  sim::FaultInjector faults(loop);
  router.attach_faults(faults);
  faults.set_hwdb_fault([&](const sim::DatagramFault& f, Rng* frng) {
    rpc_link.set_fault(f, frng);
  });
  for (std::size_t i = 0; i < attachments.size(); ++i) {
    faults.add_link("dev" + std::to_string(i + 1), *attachments[i].link);
  }

  sim::FaultPlan plan;
  plan.seed = seed;
  plan.windows.push_back({sim::FaultKind::LinkLoss, 2 * kSecond, 6 * kSecond,
                          "*", 0.3, {}});
  plan.windows.push_back({sim::FaultKind::HwdbFault, 5 * kSecond, 7 * kSecond,
                          "*", 0.0,
                          {0.35, 0.25, 2 * kMillisecond}});
  plan.windows.push_back({sim::FaultKind::ControllerOutage, 10 * kSecond,
                          4 * kSecond, "*", 0.0, {}});
  plan.windows.push_back({sim::FaultKind::DatapathRestart, 20 * kSecond, 0,
                          "*", 0.0, {}});
  faults.arm(plan);

  // Workload schedule, all on the virtual clock.
  loop.schedule_at(500 * kMillisecond, [&] { hosts[0]->start_dhcp(); });
  loop.schedule_at(2500 * kMillisecond, [&] { hosts[1]->start_dhcp(); });
  loop.schedule_at(10500 * kMillisecond, [&] { hosts[2]->start_dhcp(); });
  // Lossy-window DHCP can exhaust the client's retry budget; re-kick any
  // unbound device after the outage clears and again after the restart has
  // been re-synced — exactly what a real client's INIT state does.
  for (const Timestamp at : {15 * kSecond, 24 * kSecond}) {
    loop.schedule_at(at, [&] {
      for (auto& host : hosts) {
        if (!host->ip()) host->start_dhcp();
      }
    });
  }

  std::int64_t next_seq = 0;
  sim::PeriodicTimer inserter(loop, 250 * kMillisecond, [&] {
    if (loop.now() > 25 * kSecond) return;
    const std::int64_t seq = next_seq++;
    rpc.insert("Chaos", {hwdb::Value{seq}}, [&result, seq](const auto& resp) {
      if (resp.ok) result.acked.insert(seq);
    });
  });
  loop.schedule_at(kSecond, [&] { inserter.start(); });

  loop.run_until(30 * kSecond);

  // Harvest while everything is alive.
  result.telemetry = scalar_snapshot();
  for (const auto& host : hosts) {
    result.leases.push_back(host->mac().to_string() + " " +
                            (host->ip() ? host->ip()->to_string() : "-"));
  }
  if (auto rs = router.db().query("SELECT seq FROM Chaos"); rs.ok()) {
    for (const auto& row : rs.value().rows) {
      result.applied.insert(row[0].as_int());
    }
  }
  result.rpc_client = rpc.stats();
  result.rpc_server = rpc_link.server().stats();
  result.rpc_link = rpc_link.stats();
  result.faults = faults.stats();
  result.controller = router.controller().stats();
  result.datapath = router.datapath().stats();
  result.dhcp = router.dhcp().stats();
  result.flow_entries = router.datapath().table().size();
  result.fail_safe_at_end = router.datapath().fail_safe();
  router.datapath().table().for_each([&result](const ofp::FlowEntry& e) {
    char cookie[20];
    std::snprintf(cookie, sizeof cookie, "%016llx",
                  static_cast<unsigned long long>(e.cookie));
    result.flow_rows.push_back(e.match.to_string() + "|" +
                               std::to_string(e.priority) + "|" +
                               ofp::to_string(e.actions) + "|" + cookie);
  });
  std::sort(result.flow_rows.begin(), result.flow_rows.end());
  if (resync == HomeworkRouter::Config::Resync::Reconcile) {
    EXPECT_TRUE(router.reconciler()->verify_converged(
        router.datapath().id(), router.datapath().table()))
        << "final table diverged from desired state (seed " << seed << ")";
  }
  return result;
}

TEST(ChaosSoak, SurvivesLossyHomeNetworkAndRecovers) {
  const std::uint64_t seed = chaos_seed();
  const ChaosResult r = run_scenario(seed);

  // The plan ran to completion and closed every window.
  EXPECT_EQ(r.faults.windows_started, 4u) << "seed " << seed;
  EXPECT_EQ(r.faults.windows_ended, 4u);
  EXPECT_EQ(r.faults.active, 0);
  EXPECT_EQ(r.faults.link_faults, 2u * 3u);  // loss applied per direction
  EXPECT_EQ(r.faults.controller_outages, 1u);
  EXPECT_EQ(r.faults.hwdb_faults, 1u);
  EXPECT_EQ(r.faults.datapath_restarts, 1u);

  // Every device ends bound, and no two devices share an address.
  std::set<std::string> ips;
  for (const auto& lease : r.leases) {
    const std::string ip = lease.substr(lease.find(' ') + 1);
    EXPECT_NE(ip, "-") << "unbound device: " << lease << " (seed " << seed
                       << ")";
    EXPECT_TRUE(ips.insert(ip).second)
        << "duplicate DHCP lease " << ip << " (seed " << seed << ")";
  }
  // Retransmissions happened (lossy window) yet never double-allocated.
  EXPECT_GT(r.dhcp.retransmits + r.rpc_server.dup_suppressed, 0u);

  // Exactly-once hwdb writes: no sequence number landed twice, and every
  // insert the client saw acked is present.
  std::set<std::int64_t> distinct(r.applied.begin(), r.applied.end());
  EXPECT_EQ(distinct.size(), r.applied.size())
      << "a retried insert was applied twice (seed " << seed << ")";
  for (const std::int64_t seq : r.acked) {
    EXPECT_TRUE(distinct.count(seq)) << "acked seq " << seq << " missing";
  }
  EXPECT_FALSE(r.acked.empty());

  // The drop burst forced retries; suppression only ever happens when a
  // datagram was re-sent (client retry) or duplicated by the link.
  EXPECT_GT(r.rpc_client.retries, 0u);
  EXPECT_LE(r.rpc_server.dup_suppressed,
            r.rpc_client.retries + r.rpc_link.fault_duplicated);

  // Controller-channel recovery: the outage tripped the watchdog and the
  // restart re-sent HELLO; both ended in a barrier-confirmed re-sync that
  // re-installed the modules' flows.
  EXPECT_GE(r.controller.reconnects, 2u) << "seed " << seed;
  EXPECT_GE(r.controller.resynced_flows, 3u);
  EXPECT_GE(r.resync_confirmations, 2);
  EXPECT_GE(r.flow_entries, 3u) << "flow table not re-populated after restart";

  // The datapath spent the outage in fail-safe and left it on recovery.
  EXPECT_GE(r.datapath.failsafe_entries, 1u);
  EXPECT_EQ(r.datapath.restarts, 1u);
  EXPECT_FALSE(r.fail_safe_at_end);

  // Spot-check the telemetry export view agrees with the struct snapshots
  // (same numbers an external UI reads back over hwdb RPC).
  EXPECT_EQ(r.telemetry.at("sim.fault.windows_started"), 4.0);
  EXPECT_EQ(r.telemetry.at("sim.fault.active"), 0.0);
  EXPECT_EQ(r.telemetry.at("hwdb.rpc.retries"),
            static_cast<double>(r.rpc_client.retries));
  EXPECT_EQ(r.telemetry.at("hwdb.rpc.dup_suppressed"),
            static_cast<double>(r.rpc_server.dup_suppressed));
  EXPECT_EQ(r.telemetry.at("nox.channel.reconnects"),
            static_cast<double>(r.controller.reconnects));
  EXPECT_EQ(r.telemetry.at("nox.channel.resynced_flows"),
            static_cast<double>(r.controller.resynced_flows));
}

TEST(ChaosSoak, IdenticalSeedReplaysIdentically) {
  const std::uint64_t seed = chaos_seed();
  const ChaosResult a = run_scenario(seed);
  const ChaosResult b = run_scenario(seed);

  // Same seed + same plan → the exact same failure history: every counter
  // and gauge lands on the same value, down to the last retry.
  EXPECT_EQ(a.telemetry, b.telemetry) << "seed " << seed;
  EXPECT_EQ(a.leases, b.leases);
  EXPECT_EQ(a.acked, b.acked);
  EXPECT_EQ(a.applied, b.applied);
  EXPECT_EQ(a.rpc_client.retries, b.rpc_client.retries);
  EXPECT_EQ(a.rpc_server.dup_suppressed, b.rpc_server.dup_suppressed);
  EXPECT_EQ(a.resync_confirmations, b.resync_confirmations);
}

TEST(ChaosDifferential, ReplayAndReconcileConvergeToIdenticalState) {
  // Same seed, same fault plan, two recovery strategies: the legacy blind
  // replay and the goal-state reconciler must land every device on the same
  // lease, apply the same hwdb rows, and leave bit-identical flow tables
  // (rows, priorities, actions AND cookies — replay stamps the same
  // deterministic desired-state cookies a reconcile Add would).
  const std::uint64_t seed = chaos_seed();
  const ChaosResult replay =
      run_scenario(seed, HomeworkRouter::Config::Resync::Replay);
  const ChaosResult reconcile =
      run_scenario(seed, HomeworkRouter::Config::Resync::Reconcile);

  EXPECT_EQ(replay.flow_rows, reconcile.flow_rows) << "seed " << seed;
  EXPECT_EQ(replay.leases, reconcile.leases);
  EXPECT_EQ(replay.applied, reconcile.applied);
  EXPECT_EQ(replay.acked, reconcile.acked);
  EXPECT_FALSE(replay.fail_safe_at_end);
  EXPECT_FALSE(reconcile.fail_safe_at_end);

  // Both strategies recovered through barrier-confirmed re-syncs, but the
  // reconciler did it with delta rounds: the divergence (outage heal with a
  // surviving table + one cold restart) costs it strictly fewer re-sent
  // flows than replaying every module's setup on each reconnect.
  EXPECT_GE(replay.resync_confirmations, 2);
  EXPECT_GE(reconcile.resync_confirmations, 2);
  EXPECT_LT(reconcile.controller.resynced_flows,
            replay.controller.resynced_flows)
      << "delta resync must beat blind replay (seed " << seed << ")";
}

}  // namespace
}  // namespace hw::homework
