// The control API: HTTP codec round-trips and every REST route, including
// the udev USB hooks and the hwdb query passthrough.
#include "router_fixture.hpp"
#include "ui/policy_editor.hpp"

namespace hw::homework {
namespace {

using testing::RouterFixture;

// ---------------------------------------------------------------------------
// HTTP codec

TEST(Http, RequestParse) {
  auto req = HttpRequest::parse(
      "POST /api/devices/aa:bb/permit?force=1&x=a%20b HTTP/1.1\r\n"
      "Host: router\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "body");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().method, "POST");
  EXPECT_EQ(req.value().path, "/api/devices/aa:bb/permit");
  EXPECT_EQ(req.value().query.at("force"), "1");
  EXPECT_EQ(req.value().query.at("x"), "a b");
  EXPECT_EQ(req.value().headers.at("host"), "router");
  EXPECT_EQ(req.value().body, "body");
}

TEST(Http, RequestParseErrors) {
  EXPECT_FALSE(HttpRequest::parse("GET /\r\n\r\n").ok());       // bad line
  EXPECT_FALSE(HttpRequest::parse("GET / HTTP/1.1").ok());      // no blank line
  EXPECT_FALSE(HttpRequest::parse("GET x HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(HttpRequest::parse("GET / SPDY/3\r\n\r\n").ok());
  EXPECT_FALSE(HttpRequest::parse(
                   "GET / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort")
                   .ok());
}

TEST(Http, RequestSerializeRoundTrip) {
  HttpRequest req;
  req.method = "PUT";
  req.path = "/api/x";
  req.body = "{\"a\":1}";
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().method, "PUT");
  EXPECT_EQ(parsed.value().body, req.body);
}

TEST(Http, ResponseSerializeParse) {
  auto resp = HttpResponse::json(Json(JsonObject{{"ok", Json(true)}}), 201);
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status, 201);
  EXPECT_EQ(parsed.value().headers.at("content-type"), "application/json");
  EXPECT_TRUE(parsed.value().json_body().value()["ok"].as_bool());
}

TEST(Http, RouterMatchingAndParams) {
  HttpRouter router;
  std::string got_mac;
  router.add("GET", "/api/devices/:mac",
             [&](const HttpRequest&, const HttpRouter::Params& p) {
               got_mac = p.at("mac");
               return HttpResponse::text("ok");
             });
  HttpRequest req;
  req.path = "/api/devices/aa:bb:cc:dd:ee:ff";
  EXPECT_EQ(router.handle(req).status, 200);
  EXPECT_EQ(got_mac, "aa:bb:cc:dd:ee:ff");

  req.path = "/api/devices";  // wrong arity
  EXPECT_EQ(router.handle(req).status, 404);
  req.path = "/api/devices/aa:bb:cc:dd:ee:ff";
  req.method = "DELETE";  // path exists, method doesn't
  EXPECT_EQ(router.handle(req).status, 405);
}

// ---------------------------------------------------------------------------
// REST routes

struct ApiFixture : RouterFixture {
  HttpResponse call(const std::string& method, const std::string& path,
                    const std::string& body = {}) {
    HttpRequest req;
    req.method = method;
    req.path = path;
    req.body = body;
    return router.control_api().handle(req);
  }
};

TEST_F(ApiFixture, StatusReportsInventory) {
  auto resp = call("GET", "/api/status");
  ASSERT_EQ(resp.status, 200);
  auto j = resp.json_body().value();
  EXPECT_EQ(j["devices"].as_int(), 0);
  // Flows, Links, Leases plus the router's own Metrics table.
  EXPECT_EQ(j["hwdb_tables"].as_array().size(), 4u);
}

TEST_F(ApiFixture, DeviceListAndDetail) {
  sim::Host& host = make_device("laptop");
  host.start_dhcp();
  loop.run_for(2 * kSecond);

  auto list = call("GET", "/api/devices");
  ASSERT_EQ(list.status, 200);
  auto devices = list.json_body().value().as_array();
  ASSERT_EQ(devices.size(), 1u);
  EXPECT_EQ(devices[0]["state"].as_string(), "pending");
  EXPECT_EQ(devices[0]["hostname"].as_string(), "laptop");

  auto detail = call("GET", "/api/devices/" + host.mac().to_string());
  ASSERT_EQ(detail.status, 200);
  EXPECT_TRUE(detail.json_body().value()["lease"].is_null());

  EXPECT_EQ(call("GET", "/api/devices/02:99:99:99:99:99").status, 404);
  EXPECT_EQ(call("GET", "/api/devices/notamac").status, 400);
}

TEST_F(ApiFixture, PermitFlowEndToEnd) {
  sim::Host& host = make_device("laptop");
  host.start_dhcp();
  loop.run_for(2 * kSecond);
  ASSERT_FALSE(host.ip().has_value());

  auto resp = call("POST", "/api/devices/" + host.mac().to_string() + "/permit");
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.json_body().value()["state"].as_string(), "permitted");
  loop.run_for(5 * kSecond);
  EXPECT_TRUE(host.ip().has_value());

  auto leases = call("GET", "/api/leases");
  auto arr = leases.json_body().value().as_array();
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0]["ip"].as_string(), host.ip()->to_string());
}

TEST_F(ApiFixture, DenyEndpoint) {
  sim::Host& host = make_device("banned");
  auto resp = call("POST", "/api/devices/" + host.mac().to_string() + "/deny");
  EXPECT_EQ(resp.status, 200);
  host.start_dhcp();
  loop.run_for(2 * kSecond);
  EXPECT_FALSE(host.ip().has_value());
  EXPECT_EQ(router.control_api().stats().denies, 1u);
}

TEST_F(ApiFixture, MetadataUpdatesNameAndTags) {
  sim::Host& host = admitted_device("kid-tablet");
  auto resp = call("PUT", "/api/devices/" + host.mac().to_string() + "/metadata",
                   R"({"name": "Kid's tablet", "tags": ["kids"]})");
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.json_body().value()["name"].as_string(), "Kid's tablet");
  EXPECT_EQ(router.policy().tags_of(host.mac().to_string()),
            (std::vector<std::string>{"kids"}));
  EXPECT_EQ(
      call("PUT", "/api/devices/" + host.mac().to_string() + "/metadata", "{")
          .status,
      400);
}

TEST_F(ApiFixture, PolicyCrud) {
  const std::string policy = R"({
    "id": "kids", "who": {"tags": ["kids"]},
    "sites": {"kind": "allow_only", "domains": ["*.facebook.com"]}
  })";
  EXPECT_EQ(call("POST", "/api/policies", policy).status, 201);
  auto list = call("GET", "/api/policies");
  EXPECT_EQ(list.json_body().value().as_array().size(), 1u);
  EXPECT_EQ(call("DELETE", "/api/policies/kids").status, 204);
  EXPECT_EQ(call("DELETE", "/api/policies/kids").status, 404);
  EXPECT_EQ(call("POST", "/api/policies", "{\"bad\": 1}").status, 400);
}

TEST_F(ApiFixture, UsbHooksInsertAndRemove) {
  // Build a key image and post it the way the udev hook would.
  const auto image = ui::PolicyEditor::make_unlock_key("parent-key");
  Json files(JsonObject{});
  files.set("homework/token", "parent-key\n");
  Json body(JsonObject{});
  body.set("files", std::move(files));

  auto resp = call("POST", "/api/usb/insert", body.dump());
  ASSERT_EQ(resp.status, 201);
  const auto handle = resp.json_body().value()["handle"].as_int();
  EXPECT_EQ(router.policy().usb().inserted_count(), 1u);

  EXPECT_EQ(call("POST", "/api/usb/remove/" + std::to_string(handle)).status,
            204);
  EXPECT_EQ(router.policy().usb().inserted_count(), 0u);
  EXPECT_EQ(call("POST", "/api/usb/remove/" + std::to_string(handle)).status,
            404);

  // Not a policy key → 400.
  EXPECT_EQ(call("POST", "/api/usb/insert", R"({"files": {}})").status, 400);
}

TEST_F(ApiFixture, InterrogateAggregatesMeasurementPlane) {
  sim::Host& host = make_device("kid-tablet");
  permit(host);
  ASSERT_TRUE(bind(host).has_value());
  // Put the device somewhere wireless and give it some traffic + a name.
  router.wireless().place_station(host.mac(), sim::Position{7, 7});
  std::optional<Ipv4Address> dst;
  host.resolve("www.example.com", [&](Result<Ipv4Address> r, const std::string&) {
    if (r.ok()) dst = r.value();
  });
  loop.run_for(2 * kSecond);
  ASSERT_TRUE(dst.has_value());
  for (int i = 0; i < 10; ++i) {
    host.send_tcp(*dst, 45000, 80, net::TcpFlags::kAck, 400);
    loop.run_for(300 * kMillisecond);
  }
  loop.run_for(2 * kSecond);

  auto resp =
      call("GET", "/api/devices/" + host.mac().to_string() + "/interrogate");
  ASSERT_EQ(resp.status, 200);
  const auto j = resp.json_body().value();
  // Traffic summary is present and classified.
  bool saw_web = false;
  for (const auto& entry : j["traffic"].as_array()) {
    if (entry["app"].as_string() == "web") {
      saw_web = true;
      EXPECT_GT(entry["bytes"].as_int(), 0);
    }
  }
  EXPECT_TRUE(saw_web);
  // The resolved-names list includes what the DNS proxy relayed.
  bool saw_name = false;
  for (const auto& n : j["resolved_names"].as_array()) {
    if (n.as_string() == "www.example.com") saw_name = true;
  }
  EXPECT_TRUE(saw_name);
  // Wireless link details present for a placed station.
  ASSERT_TRUE(j["wireless"].is_object());
  EXPECT_LT(j["wireless"]["rssi_dbm"].as_number(), 0.0);

  EXPECT_EQ(call("GET", "/api/devices/02:99:99:99:99:99/interrogate").status,
            404);
}

TEST_F(ApiFixture, QueryPassthrough) {
  sim::Host& host = admitted_device("laptop");
  (void)host;
  HttpRequest req;
  req.method = "GET";
  req.path = "/api/query";
  req.query["q"] = "SELECT mac, event FROM Leases";
  auto resp = router.control_api().handle(req);
  ASSERT_EQ(resp.status, 200);
  auto j = resp.json_body().value();
  EXPECT_EQ(j["columns"].as_array().size(), 2u);
  EXPECT_GE(j["rows"].as_array().size(), 1u);

  req.query["q"] = "garbage";
  EXPECT_EQ(router.control_api().handle(req).status, 400);
  req.query.clear();
  EXPECT_EQ(router.control_api().handle(req).status, 400);
}

TEST_F(ApiFixture, RawHttpRoundTrip) {
  const std::string raw =
      "GET /api/status HTTP/1.1\r\nhost: router\r\n\r\n";
  const std::string response_text = router.control_api().handle_raw(raw);
  auto resp = HttpResponse::parse(response_text);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_EQ(router.control_api().handle_raw("junk").substr(0, 12),
            "HTTP/1.1 400");
}

}  // namespace
}  // namespace hw::homework
