// The live operations plane: barrier-stepped fleet determinism, fleet-wide
// consistent checkpoints with time-travel replay, control mutations landing
// on deterministic barriers, and the operator streaming path (subscribe /
// delta frames / backpressure / retried-request idempotency) end to end
// against a running fleet.
#include <gtest/gtest.h>

#include "live/client.hpp"
#include "live/fleet.hpp"
#include "live/mutation.hpp"
#include "live/server.hpp"

namespace hw::live {
namespace {

constexpr Duration kBootSettle = 10 * kMillisecond;  // router boot settle

LiveConfig attack_config(std::size_t homes, std::size_t threads) {
  LiveConfig cfg;
  cfg.homes = homes;
  cfg.threads = threads;
  cfg.seed = 7;
  cfg.attack.kind = LiveAttack::Kind::DhcpFlood;
  cfg.attack.home = 0;
  return cfg;
}

/// Differing series between two fingerprints, for readable failures (gtest's
/// container printer truncates long maps).
std::string diff_maps(const std::map<std::string, double>& a,
                      const std::map<std::string, double>& b) {
  std::string out;
  for (const auto& [name, value] : a) {
    const auto it = b.find(name);
    if (it == b.end()) {
      out += name + ": " + std::to_string(value) + " vs <absent>\n";
    } else if (value != it->second) {
      out += name + ": " + std::to_string(value) + " vs " +
             std::to_string(it->second) + "\n";
    }
  }
  for (const auto& [name, value] : b) {
    if (a.count(name) == 0) {
      out += name + ": <absent> vs " + std::to_string(value) + "\n";
    }
  }
  return out;
}

telemetry::ScalarMap filtered(const std::map<std::string, double>& scalars,
                              const std::string& pattern) {
  telemetry::ScalarMap out;
  for (const auto& [name, value] : scalars) {
    if (LiveServer::series_matches(pattern, name)) out.emplace(name, value);
  }
  return out;
}

// ---------------------------------------------------------------------------
// LiveFleet: determinism and time travel

TEST(LiveFleet, StepDeterminismAcrossThreads) {
  std::map<std::string, double> first;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    LiveFleet fleet(attack_config(4, threads));
    fleet.start();
    fleet.advance_to(4 * kSecond);
    if (first.empty()) {
      first = fleet.fingerprint();
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(fleet.fingerprint(), first) << threads << " threads diverged";
    }
  }
}

TEST(LiveFleet, BarriersAndCheckpointGrid) {
  LiveFleet fleet(attack_config(2, 1));
  fleet.start();
  EXPECT_EQ(fleet.now(), kBootSettle);
  EXPECT_EQ(fleet.next_barrier(), kBootSettle + 250 * kMillisecond);
  EXPECT_EQ(fleet.next_checkpoint_barrier(), kBootSettle + 5 * kSecond);
  fleet.step();
  EXPECT_EQ(fleet.now(), kBootSettle + 250 * kMillisecond);

  // A checkpoint lands on the aligned grid, not the next barrier.
  const Mutation predicted = fleet.submit(checkpoint());
  EXPECT_EQ(predicted.applied_at, kBootSettle + 5 * kSecond);
  fleet.advance_to(kBootSettle + 5 * kSecond);
  ASSERT_EQ(fleet.checkpoints().size(), 1u);
  EXPECT_EQ(fleet.checkpoints()[0].captured_at, kBootSettle + 5 * kSecond);
  EXPECT_EQ(fleet.checkpoints()[0].images.size(), 2u);
}

// The acceptance test: restore a mid-attack fleet checkpoint, re-apply the
// recorded mutation tail (which includes a quarantine), and the replica's
// non-histogram telemetry is bit-identical to the live run's — at 1, 2 and
// 8 worker threads.
TEST(LiveFleet, CheckpointReplayBitIdentical) {
  const LiveConfig cfg = attack_config(4, 2);
  LiveFleet fleet(cfg);
  fleet.start();
  fleet.advance_to(4 * kSecond);  // attack under way since 3.013 s

  fleet.submit(checkpoint());
  fleet.advance_to(5 * kSecond + kBootSettle);
  ASSERT_EQ(fleet.checkpoints().size(), 1u);

  // Mutate the run after the capture so the replay tail is non-trivial.
  const std::string guest = fleet.device_mac(0, "guest");
  ASSERT_FALSE(guest.empty());
  fleet.submit(quarantine(0, guest));
  fleet.advance_to(8 * kSecond);

  const auto live_fp = fleet.fingerprint();
  ASSERT_GT(live_fp.count("live.home.attack_sent"), 0u);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto replayed = LiveFleet::replay_fingerprint(
        cfg, fleet.checkpoints()[0], fleet.log(), fleet.now(), threads);
    ASSERT_TRUE(replayed.ok()) << replayed.error().message;
    EXPECT_TRUE(replayed.value() == live_fp)
        << "replay tail diverged at " << threads
        << " threads:\n" << diff_maps(replayed.value(), live_fp);
  }
}

// Time travel as a what-if instrument: re-run the tail with an *earlier*
// quarantine than the live run had, and the attack is measurably blunted.
TEST(LiveFleet, WhatIfEarlierQuarantineDiverges) {
  const LiveConfig cfg = attack_config(2, 2);
  LiveFleet fleet(cfg);
  fleet.start();
  fleet.advance_to(4 * kSecond);
  fleet.submit(checkpoint());
  fleet.advance_to(5 * kSecond + kBootSettle);
  ASSERT_EQ(fleet.checkpoints().size(), 1u);
  fleet.advance_to(8 * kSecond);  // live run: never quarantined
  const auto live_fp = fleet.fingerprint();
  const std::uint64_t live_drops = fleet.status(0).block_drops;

  // What-if tail: quarantine the attacker right after the checkpoint.
  const std::string guest = fleet.device_mac(0, "guest");
  ASSERT_FALSE(guest.empty());
  std::vector<Mutation> log = fleet.log();
  std::uint64_t max_id = 0;
  for (const Mutation& m : log) max_id = std::max(max_id, m.id);
  Mutation what_if = quarantine(0, guest);
  what_if.id = max_id + 1;
  what_if.applied_at = 5 * kSecond + kBootSettle + 250 * kMillisecond;
  log.push_back(what_if);

  auto replayed = LiveFleet::replay_fingerprint(
      cfg, fleet.checkpoints()[0], log, fleet.now(), 1);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_NE(replayed.value(), live_fp);
  // The diverging run actually enforced the block: drops where the live run
  // had none on the block flows.
  EXPECT_EQ(live_drops, 0u);
  EXPECT_GT(replayed.value().at("live.home.block_drops"), 0.0);
  EXPECT_GT(replayed.value().at("live.home.block_flows"), 0.0);
}

TEST(LiveFleet, ResumeRejectsStitchedCaptures) {
  const LiveConfig cfg = attack_config(2, 1);
  LiveFleet fleet(cfg);
  fleet.start();
  fleet.submit(checkpoint());
  fleet.advance_to(5 * kSecond + kBootSettle);
  ASSERT_EQ(fleet.checkpoints().size(), 1u);

  FleetCheckpoint stitched = fleet.checkpoints()[0];
  std::swap(stitched.images[0], stitched.images[1]);
  LiveFleet replica(cfg);
  const Status s = replica.resume(stitched, {});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().message.find("capture tag mismatch"), std::string::npos)
      << s.error().message;
}

// ---------------------------------------------------------------------------
// Operator plane end to end (InProcLiveLink: client <-> LiveServer <-> fleet)

struct LiveLinkFixture : ::testing::Test {
  LiveLinkFixture()
      : fleet(attack_config(2, 2)), link(op_loop, fleet) {
    fleet.start();
  }

  LiveClient& make_client() {
    hwdb::rpc::RetryPolicy policy;
    policy.max_attempts = 5;
    policy.timeout = 50 * kMillisecond;
    policy.backoff_base = 10 * kMillisecond;
    clients.push_back(std::make_unique<LiveClient>(link.make_client(policy)));
    return *clients.back();
  }

  /// One operator tick: advance the fleet a barrier, then deliver the
  /// resulting datagrams (and any client requests) on the operator loop.
  void pump() {
    link.server().pump();
    op_loop.run_for(10 * kMillisecond);
  }

  std::uint64_t subscribe(LiveClient& client, const std::string& pattern,
                          std::uint32_t home, std::uint32_t max_queue = 64) {
    std::uint64_t sub_id = 0;
    client.subscribe_series(pattern, home, 1, max_queue,
                            [&](Result<std::uint64_t> r) {
                              ASSERT_TRUE(r.ok()) << r.error().message;
                              sub_id = r.value();
                            });
    op_loop.run_for(10 * kMillisecond);
    return sub_id;
  }

  sim::EventLoop op_loop;
  LiveFleet fleet;
  InProcLiveLink link;
  std::vector<std::unique_ptr<LiveClient>> clients;
};

// The headline demo: a live client subscribes, watches attack telemetry
// move, and issues a quarantine that measurably changes the outcome of the
// still-running fleet.
TEST_F(LiveLinkFixture, MutationMeasurablyChangesOutcome) {
  LiveClient& client = make_client();
  const std::uint64_t sub_id = subscribe(client, "live.home.*", 0);
  ASSERT_NE(sub_id, 0u);

  while (fleet.now() < 4 * kSecond) pump();
  const View* v = client.view(sub_id);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->synced);
  const double sent_before = v->values.at("live.home.attack_sent");
  EXPECT_GT(sent_before, 0.0);
  for (int i = 0; i < 4; ++i) pump();
  EXPECT_GT(v->values.at("live.home.attack_sent"), sent_before)
      << "attack telemetry is not moving";
  EXPECT_EQ(v->values.at("live.home.block_drops"), 0.0);

  const std::string guest = fleet.device_mac(0, "guest");
  ASSERT_FALSE(guest.empty());
  bool ok = false;
  Timestamp applied_at = 0;
  client.mutate(quarantine(0, guest),
                [&](bool mutation_ok, Timestamp at, std::string) {
                  ok = mutation_ok;
                  applied_at = at;
                });
  op_loop.run_for(10 * kMillisecond);
  ASSERT_TRUE(ok);
  EXPECT_GT(applied_at, fleet.now());

  while (fleet.now() < applied_at + 2 * kSecond) pump();
  const LiveHomeStatus after = fleet.status(0);
  EXPECT_GE(after.block_flows, 1u);
  EXPECT_GT(after.block_drops, 0u) << "quarantine did not bite";
  // The stream saw the same outcome the fleet did.
  EXPECT_EQ(v->values.at("live.home.block_drops"),
            static_cast<double>(after.block_drops));
}

TEST_F(LiveLinkFixture, BackpressureDropsOldestThenResyncs) {
  LiveClient& client = make_client();
  const std::uint64_t sub_id = subscribe(client, "live.home.*", 0,
                                         /*max_queue=*/4);
  ASSERT_NE(sub_id, 0u);
  while (fleet.now() < 3500 * kMillisecond) pump();  // attack ticking

  // Stall the flush path: frames keep being generated each barrier (the
  // attack counters move every tick) and overflow the bounded queue.
  link.server().set_flush_budget(0);
  for (int i = 0; i < 8; ++i) pump();
  EXPECT_GT(link.server().stats().dropped, 0u);

  link.server().set_flush_budget(static_cast<std::size_t>(-1));
  pump();
  const View* v = client.view(sub_id);
  ASSERT_NE(v, nullptr);
  EXPECT_GE(v->gaps, 1u);
  EXPECT_GT(v->dropped, 0u);
  EXPECT_TRUE(v->synced) << "snapshot resync frame never arrived";
  EXPECT_EQ(v->values, filtered(fleet.scalars(0), "live.home.*"));
}

// The retried-subscribe regression: every datagram is duplicated on the
// wire, so the server sees the subscribe twice (a retransmission) and every
// frame reaches the client twice. Dedup must keep it one subscription and
// seq gating must keep the view gap-free and exactly-once.
TEST_F(LiveLinkFixture, RetriedSubscribeKeepsDeltasExactlyOnce) {
  Rng fault_rng(3);
  sim::DatagramFault dup;
  dup.duplicate = 1.0;
  link.set_fault(dup, &fault_rng);

  LiveClient& client = make_client();
  const std::uint64_t sub_id = subscribe(client, "live.home.*", 0);
  ASSERT_NE(sub_id, 0u);
  EXPECT_EQ(link.server().subscriptions(), 1u);
  EXPECT_GE(link.server().stats().dup_suppressed, 1u);

  while (fleet.now() < 4 * kSecond) pump();
  const View* v = client.view(sub_id);
  ASSERT_NE(v, nullptr);
  EXPECT_GT(v->frames, 0u);
  EXPECT_GT(v->dups, 0u);        // wire duplicates arrived...
  EXPECT_EQ(v->gaps, 0u);        // ...but the view never skipped a frame
  EXPECT_EQ(v->last_seq, v->frames);  // and applied each exactly once
  EXPECT_TRUE(v->synced);
  EXPECT_EQ(v->values, filtered(fleet.scalars(0), "live.home.*"));
}

TEST_F(LiveLinkFixture, PauseStepResumeGateTheClock) {
  LiveClient& client = make_client();
  pump();
  const Timestamp before = fleet.now();

  client.mutate(pause());
  op_loop.run_for(10 * kMillisecond);
  EXPECT_TRUE(link.server().paused());
  pump();
  pump();
  EXPECT_EQ(fleet.now(), before) << "paused fleet advanced";

  client.mutate(step(2));
  op_loop.run_for(10 * kMillisecond);
  pump();
  pump();
  pump();  // budget exhausted: no-op
  EXPECT_EQ(fleet.now(), before + 2 * 250 * kMillisecond);

  client.mutate(resume_clock());
  op_loop.run_for(10 * kMillisecond);
  EXPECT_FALSE(link.server().paused());
  pump();
  EXPECT_EQ(fleet.now(), before + 3 * 250 * kMillisecond);
}

TEST_F(LiveLinkFixture, ReplayVerbVerifiesTheRunningFleet) {
  LiveClient& client = make_client();
  Mutation replay;
  replay.kind = MutateKind::Replay;
  replay.home = kAllHomes;

  // No checkpoint yet: the verb fails cleanly.
  bool ok = true;
  std::string error;
  client.mutate(replay, [&](bool mutation_ok, Timestamp, std::string err) {
    ok = mutation_ok;
    error = std::move(err);
  });
  op_loop.run_for(10 * kMillisecond);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("no checkpoint"), std::string::npos) << error;

  client.mutate(checkpoint());
  while (fleet.now() < 6 * kSecond) pump();
  ASSERT_EQ(fleet.checkpoints().size(), 1u);

  // With a checkpoint, Replay re-executes the tail synchronously and
  // confirms the fingerprint matches the live run.
  ok = false;
  client.mutate(replay, [&](bool mutation_ok, Timestamp, std::string err) {
    ok = mutation_ok;
    error = std::move(err);
  });
  op_loop.run_for(10 * kMillisecond);
  EXPECT_TRUE(ok) << error;
}

TEST_F(LiveLinkFixture, HwdbVerbsRejected) {
  hwdb::rpc::RetryPolicy policy;
  policy.max_attempts = 2;
  auto& rpc = link.make_client(policy);
  std::string error;
  rpc.call(hwdb::rpc::QueryRequest{"SELECT * FROM Links"},
           [&](const hwdb::rpc::Response& resp) {
             EXPECT_FALSE(resp.ok);
             error = resp.error;
           });
  op_loop.run_for(10 * kMillisecond);
  EXPECT_EQ(error, "RPC: hwdb verb on a live endpoint");
}

}  // namespace
}  // namespace hw::live
