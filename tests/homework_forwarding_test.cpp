// The forwarding module: proxy-ARP mediation, flow admission and exact-match
// rule installation, DNS-gated egress (including the async reverse-lookup
// path), policy revocation and spoofing defences.
#include "router_fixture.hpp"

namespace hw::homework {
namespace {

using testing::RouterFixture;

struct ForwardingFixture : RouterFixture {
  /// Pings from a host; returns true if the echo reply came back.
  bool ping(sim::Host& host, Ipv4Address dst) {
    bool replied = false;
    host.on_echo_reply([&](Ipv4Address from, std::uint16_t) {
      if (from == dst) replied = true;
    });
    host.ping(dst, 1);
    loop.run_for(2 * kSecond);
    return replied;
  }

  std::optional<Ipv4Address> resolve(sim::Host& host, const std::string& name) {
    std::optional<Ipv4Address> out;
    host.resolve(name, [&](Result<Ipv4Address> r, const std::string&) {
      if (r.ok()) out = r.value();
    });
    loop.run_for(2 * kSecond);
    return out;
  }
};

TEST_F(ForwardingFixture, RouterAnswersGatewayArpAndPing) {
  sim::Host& host = admitted_device("laptop");
  EXPECT_TRUE(ping(host, router.config().router_ip));
  EXPECT_GE(router.forwarding().stats().arp_replies, 1u);
  EXPECT_GE(router.forwarding().stats().echo_replies, 1u);
}

TEST_F(ForwardingFixture, UpstreamReachableAfterResolve) {
  sim::Host& host = admitted_device("laptop");
  const auto ip = resolve(host, "www.example.com");
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ping(host, *ip));
  EXPECT_GE(router.forwarding().stats().flows_installed, 2u);  // fwd + rev
  EXPECT_GT(router.upstream().stats().pings, 0u);
}

TEST_F(ForwardingFixture, SecondPacketUsesInstalledFlow) {
  sim::Host& host = admitted_device("laptop");
  const auto ip = resolve(host, "www.example.com");
  ASSERT_TRUE(ip.has_value());
  ASSERT_TRUE(host.send_udp(*ip, 5555, 9999, 100));
  loop.run_for(kSecond);
  const auto flows_before = router.forwarding().stats().flows_installed;
  const auto pktins_before = router.controller().stats().packet_ins;
  for (int i = 0; i < 10; ++i) {
    host.send_udp(*ip, 5555, 9999, 100);
    loop.run_for(100 * kMillisecond);
  }
  // Same 5-tuple: no new flows, no extra packet-ins.
  EXPECT_EQ(router.forwarding().stats().flows_installed, flows_before);
  EXPECT_EQ(router.controller().stats().packet_ins, pktins_before);
}

TEST_F(ForwardingFixture, DeviceToDeviceIsRouterMediated) {
  sim::Host& a = admitted_device("a");
  sim::Host& b = admitted_device("b");
  ASSERT_TRUE(a.ip() && b.ip());
  EXPECT_TRUE(ping(a, *b.ip()));
  // Mediation: the frame b received came from the *router's* MAC, not a's
  // (devices never exchange Ethernet frames directly, paper §2).
  // We verify via the proxy-ARP path: a asked for b's IP and got the router.
  EXPECT_GE(router.forwarding().stats().arp_replies, 1u);
}

TEST_F(ForwardingFixture, DeniedDestinationDeviceUnreachable) {
  sim::Host& a = admitted_device("a");
  sim::Host& b = admitted_device("b");
  deny(b);
  loop.run_for(kSecond);
  EXPECT_FALSE(ping(a, *b.ip()));
}

TEST_F(ForwardingFixture, SpoofedSourceDropped) {
  sim::Host& host = admitted_device("laptop");
  sim::Host& victim = admitted_device("victim");
  // Forge traffic claiming the victim's address.
  const auto dropped_before = router.forwarding().stats().dropped_unknown_source;
  const Bytes forged = net::build_udp(
      host.mac(), router.config().router_mac, *victim.ip(),
      Ipv4Address{8, 8, 8, 8}, 1234, 9999, Bytes(32, 0));
  router.datapath().receive_frame(3, forged);  // host's port... any port
  loop.run_for(kSecond);
  EXPECT_GT(router.forwarding().stats().dropped_unknown_source, dropped_before);
}

TEST_F(ForwardingFixture, RestrictedDeviceResolvedFlowAllowed) {
  sim::Host& kid = admitted_device("console");
  policy::PolicyDocument p;
  p.id = "kids";
  p.who.macs = {kid.mac().to_string()};
  p.sites.kind = policy::SiteRuleKind::AllowOnly;
  p.sites.domains = {"*.facebook.com"};
  router.policy().install(std::move(p));

  const auto fb = resolve(kid, "www.facebook.com");
  ASSERT_TRUE(fb.has_value());
  EXPECT_TRUE(ping(kid, *fb));
}

TEST_F(ForwardingFixture, RestrictedDeviceUnresolvedFlowReverseLooked) {
  sim::Host& kid = admitted_device("console");
  policy::PolicyDocument p;
  p.id = "kids";
  p.who.macs = {kid.mac().to_string()};
  p.sites.kind = policy::SiteRuleKind::AllowOnly;
  p.sites.domains = {"*.facebook.com"};
  router.policy().install(std::move(p));

  // The console talks straight to netflix's address without resolving it:
  // the reverse lookup (PTR → video.netflix.com) says "not facebook" → drop.
  EXPECT_FALSE(ping(kid, Ipv4Address{45, 57, 3, 1}));
  EXPECT_GE(router.forwarding().stats().reverse_lookups_triggered, 1u);
  EXPECT_GE(router.forwarding().stats().flows_denied, 1u);

  // Straight to facebook's address: PTR matches the allow list → allowed.
  EXPECT_TRUE(ping(kid, Ipv4Address{31, 13, 72, 1}));
}

TEST_F(ForwardingFixture, NetworkBlockedDeviceCannotSend) {
  sim::Host& host = admitted_device("laptop");
  policy::PolicyDocument p;
  p.id = "grounded";
  p.who.macs = {host.mac().to_string()};
  p.block_network = true;
  router.policy().install(std::move(p));
  EXPECT_FALSE(ping(host, router.config().upstream.dns_ip));
  // The policy compiles to proactive drop flows: packets die in the table
  // without a controller round trip (the reactive deny path never fires).
  std::size_t compiled_drops = 0;
  router.datapath().table().for_each([&](const ofp::FlowEntry& e) {
    if (nox::is_desired_cookie(e.cookie) && e.actions.empty()) ++compiled_drops;
  });
  EXPECT_GE(compiled_drops, 2u)
      << "block policy must lower to a src/dst drop-flow pair";
}

TEST_F(ForwardingFixture, PolicyChangeRevokesInstalledFlows) {
  sim::Host& host = admitted_device("laptop");
  const auto ip = resolve(host, "www.example.com");
  ASSERT_TRUE(ip.has_value());
  ASSERT_TRUE(ping(host, *ip));

  auto count_reactive = [&] {
    std::size_t n = 0;
    router.datapath().table().for_each(
        [&](const ofp::FlowEntry& e) { n += e.cookie == 0 ? 1 : 0; });
    return n;
  };
  auto count_compiled_drops = [&] {
    std::size_t n = 0;
    router.datapath().table().for_each([&](const ofp::FlowEntry& e) {
      n += nox::is_desired_cookie(e.cookie) && e.actions.empty() ? 1 : 0;
    });
    return n;
  };
  const auto reactive_before = count_reactive();

  // Install a blocking policy: the change handler must flush the forwarding
  // band (the compiled drop pair takes its place in the table) so the next
  // packet is denied.
  policy::PolicyDocument p;
  p.id = "grounded";
  p.who.macs = {host.mac().to_string()};
  p.block_network = true;
  router.policy().install(std::move(p));
  loop.run_for(kSecond);
  EXPECT_LT(count_reactive(), reactive_before);
  EXPECT_GE(count_compiled_drops(), 2u);
  EXPECT_GE(router.forwarding().stats().policy_revocations, 1u);
  EXPECT_FALSE(ping(host, *ip));

  // Lifting the policy removes the drop pair and restores connectivity on
  // the next admission.
  router.policy().uninstall("grounded");
  loop.run_for(kSecond);
  EXPECT_EQ(count_compiled_drops(), 0u);
  EXPECT_TRUE(ping(host, *ip));
}

TEST_F(ForwardingFixture, RevocationPreservesServiceRules) {
  sim::Host& host = admitted_device("laptop");
  router.forwarding().revoke_all_flows();
  loop.run_for(kSecond);
  // DHCP/DNS/ARP interception rules survive: DNS still works.
  EXPECT_TRUE(resolve(host, "www.example.com").has_value());
}

TEST_F(ForwardingFixture, DenyDeviceRevokesItsFlows) {
  sim::Host& host = admitted_device("laptop");
  const auto ip = resolve(host, "www.example.com");
  ASSERT_TRUE(ping(host, *ip));
  deny(host);
  loop.run_for(kSecond);
  EXPECT_FALSE(ping(host, *ip));
}

TEST_F(ForwardingFixture, RateLimitPolicyCapsDeviceUpload) {
  sim::Host& host = admitted_device("torrent-box");
  const auto dst = resolve(host, "www.example.com");
  ASSERT_TRUE(dst.has_value());

  // Cap the device at 80 kbit/s (10 KB/s).
  policy::PolicyDocument p;
  p.id = "cap";
  p.who.macs = {host.mac().to_string()};
  p.rate_limit_bps = 80'000;
  router.policy().install(std::move(p));

  // Offer ~50 KB/s for 10 virtual seconds.
  for (int i = 0; i < 1000; ++i) {
    host.send_udp(*dst, 5000, 9999, 500);
    loop.run_for(10 * kMillisecond);
  }
  loop.run_for(2 * kSecond);
  EXPECT_GE(router.forwarding().stats().rate_limited_flows, 1u);

  // Note: flow-rule byte counters (and hence the Flows table) count packets
  // *before* queue policing, as in real OVS — delivered volume is read from
  // the queue counters on the uplink egress.
  const std::uint32_t queue_id = host.ip()->value() & 0xffff;
  const auto* q = router.datapath().queue_counters(
      router.config().uplink_port, queue_id);
  ASSERT_NE(q, nullptr);
  EXPECT_GT(q->dropped, 0u);            // the cap actually policed
  EXPECT_GT(q->tx_bytes, 50'000u);      // traffic does flow
  EXPECT_LT(q->tx_bytes, 160'000u);     // ~10 KB/s * 10 s + burst, not 500 KB
}

TEST_F(ForwardingFixture, UncappedDeviceUnaffectedByOthersCap) {
  sim::Host& capped = admitted_device("capped");
  sim::Host& free_dev = admitted_device("free");
  const auto dst = resolve(capped, "www.example.com");
  ASSERT_TRUE(dst.has_value());
  ASSERT_TRUE(resolve(free_dev, "www.example.com").has_value());

  policy::PolicyDocument p;
  p.id = "cap";
  p.who.macs = {capped.mac().to_string()};
  p.rate_limit_bps = 80'000;
  router.policy().install(std::move(p));

  for (int i = 0; i < 500; ++i) {
    capped.send_udp(*dst, 5000, 9999, 500);
    free_dev.send_udp(*dst, 5001, 9999, 500);
    loop.run_for(10 * kMillisecond);
  }
  loop.run_for(2 * kSecond);

  // The capped device's upload queue policed traffic; the free device's
  // flows were installed with plain outputs (no queue at all).
  const auto uplink = router.config().uplink_port;
  const auto* capped_q = router.datapath().queue_counters(
      uplink, capped.ip()->value() & 0xffff);
  ASSERT_NE(capped_q, nullptr);
  EXPECT_GT(capped_q->dropped, 0u);
  EXPECT_EQ(router.datapath().queue_counters(uplink,
                                             free_dev.ip()->value() & 0xffff),
            nullptr);
}

TEST_F(ForwardingFixture, FlowsIdleOutAndReadmit) {
  sim::Host& host = admitted_device("laptop");
  const auto ip = resolve(host, "www.example.com");
  ASSERT_TRUE(ping(host, *ip));
  // Flow idle timeout is 10s; wait it out.
  loop.run_for(15 * kSecond);
  const auto installs_before = router.forwarding().stats().flows_installed;
  EXPECT_TRUE(ping(host, *ip));
  EXPECT_GT(router.forwarding().stats().flows_installed, installs_before);
}

}  // namespace
}  // namespace hw::homework
