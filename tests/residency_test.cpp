// The residency plane (docs/residency.md): content-addressed image storage,
// the deterministic eviction policy, and the headline contract — a fleet
// that hibernates cold homes and pages them back on demand produces merged
// non-histogram telemetry bit-identical to an always-resident fleet, at
// every worker-thread count, because the virtual world is closed and wake
// catch-up replays every missed timer at its recorded virtual time.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "live/client.hpp"
#include "live/fleet.hpp"
#include "live/mutation.hpp"
#include "live/server.hpp"
#include "residency/image_store.hpp"
#include "residency/profile.hpp"
#include "residency/residency.hpp"
#include "router_fixture.hpp"
#include "util/rand.hpp"

namespace hw::residency {
namespace {

std::string diff_maps(const std::map<std::string, double>& a,
                      const std::map<std::string, double>& b) {
  std::string out;
  for (const auto& [name, value] : a) {
    const auto it = b.find(name);
    if (it == b.end()) {
      out += name + ": " + std::to_string(value) + " vs <absent>\n";
    } else if (value != it->second) {
      out += name + ": " + std::to_string(value) + " vs " +
             std::to_string(it->second) + "\n";
    }
  }
  for (const auto& [name, value] : b) {
    if (a.count(name) == 0) {
      out += name + ": <absent> vs " + std::to_string(value) + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// ImageStore

struct ImageStoreTest : homework::testing::RouterFixture {
  snapshot::SnapshotImage capture_after(Duration run) {
    loop.run_for(run);
    return router.snapshots().capture();
  }
};

TEST_F(ImageStoreTest, PutGetBitExact) {
  ImageStore store;
  const auto image = capture_after(kSecond);
  ASSERT_TRUE(store.put(7, image).ok());
  EXPECT_TRUE(store.contains(7));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.logical_bytes(), image.bytes.size());

  const auto got = store.get(7);
  ASSERT_TRUE(got.ok()) << got.error().message;
  EXPECT_EQ(got.value().bytes, image.bytes);
  EXPECT_EQ(got.value().captured_at, image.captured_at);

  store.erase(7);
  EXPECT_FALSE(store.contains(7));
  EXPECT_EQ(store.logical_bytes(), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
}

TEST_F(ImageStoreTest, DedupPoolsSharedChunksAcrossImages) {
  ImageStore store;
  const auto first = capture_after(kSecond);
  loop.run_for(kSecond);
  const auto second = router.snapshots().capture();
  ASSERT_TRUE(store.put(0, first).ok());
  ASSERT_TRUE(store.put(1, first).ok());   // identical twin: full overlap
  ASSERT_TRUE(store.put(2, second).ok());  // later capture: partial overlap

  EXPECT_EQ(store.logical_bytes(),
            2 * first.bytes.size() + second.bytes.size());
  EXPECT_LT(store.stored_bytes(), store.logical_bytes());
  EXPECT_EQ(store.deduped_bytes(),
            store.logical_bytes() - store.stored_bytes());
  EXPECT_GE(store.deduped_bytes(), first.bytes.size() / 2)
      << "an identical image shared almost nothing";

  // Releasing one referent must not corrupt the survivors' shared chunks.
  store.erase(0);
  const auto twin = store.get(1);
  ASSERT_TRUE(twin.ok());
  EXPECT_EQ(twin.value().bytes, first.bytes);
  const auto later = store.get(2);
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(later.value().bytes, second.bytes);
}

TEST_F(ImageStoreTest, RejectsCorruptImages) {
  ImageStore store;
  auto image = capture_after(kSecond);
  image.bytes[image.bytes.size() / 2] ^= 0xff;
  EXPECT_FALSE(store.put(3, image).ok());
  EXPECT_FALSE(store.contains(3));
  EXPECT_EQ(store.logical_bytes(), 0u);
}

TEST_F(ImageStoreTest, SpillToDiskAndReloadBitExact) {
  ImageStore::Config config;
  config.spill_dir = ::testing::TempDir();
  ImageStore store(config);
  const auto image = capture_after(kSecond);
  ASSERT_TRUE(store.put(5, image).ok());
  ASSERT_TRUE(store.spill(5).ok());
  EXPECT_TRUE(store.contains(5));
  EXPECT_EQ(store.logical_bytes(), 0u) << "spilled image still in memory";

  const auto got = store.get(5);
  ASSERT_TRUE(got.ok()) << got.error().message;
  EXPECT_EQ(got.value().bytes, image.bytes);
  EXPECT_EQ(got.value().captured_at, image.captured_at);
  std::remove((config.spill_dir + "/img-5.hwsn").c_str());
}

// ---------------------------------------------------------------------------
// ResidencyManager policy

TEST(ResidencyManager, WatermarkThenCapLruWithIdTieBreak) {
  ResidencyPolicy policy;
  policy.max_resident = 2;
  policy.idle_watermark = 10 * kSecond;
  ResidencyManager mgr(policy);
  mgr.reset(5, /*now=*/0);

  // Activity: 3 and 4 recently touched; 0/1/2 idle past the watermark.
  mgr.touch(3, 14 * kSecond);
  mgr.touch(4, 15 * kSecond);
  // Watermark pass takes 0, 1, 2 (idle 20 s, tie broken by id). The cap
  // pass has nothing left to do: two residents remain.
  EXPECT_EQ(mgr.select_evictions(20 * kSecond),
            (std::vector<std::size_t>{0, 1, 2}));

  // Same record state, earlier barrier: nobody past the watermark, so the
  // cap pass evicts least-recently-active first — 0, 1, 2 by id tie-break
  // (all last active at 0).
  EXPECT_EQ(mgr.select_evictions(9 * kSecond),
            (std::vector<std::size_t>{0, 1, 2}));

  // Pinned homes are never selected but still count toward the cap: with 0
  // pinned, the watermark pass takes 1 and 2, and the survivors {0, 3, 4}
  // still exceed the cap, so the cap pass evicts the least-recently-active
  // unpinned survivor (3).
  mgr.set_pinned(0, true);
  EXPECT_EQ(mgr.select_evictions(20 * kSecond),
            (std::vector<std::size_t>{1, 2, 3}));
  mgr.set_pinned(0, false);

  // The decision is a pure function: same inputs, same answer.
  EXPECT_EQ(mgr.select_evictions(20 * kSecond),
            mgr.select_evictions(20 * kSecond));
}

TEST(ResidencyManager, DueWakeupsFollowNextEventTime) {
  ResidencyPolicy policy;
  policy.max_resident = 1;
  ResidencyManager mgr(policy);
  mgr.reset(3, 0);
  mgr.on_hibernated(1, kSecond, 4 * kSecond);
  mgr.on_hibernated(2, kSecond, ResidencyManager::kNever);
  EXPECT_EQ(mgr.resident_count(), 1u);
  EXPECT_EQ(mgr.next_wakeup(1), 4 * kSecond);

  EXPECT_TRUE(mgr.due_wakeups(3 * kSecond).empty());
  EXPECT_EQ(mgr.due_wakeups(4 * kSecond), (std::vector<std::size_t>{1}));
  EXPECT_EQ(mgr.due_wakeups(40 * kSecond), (std::vector<std::size_t>{1}))
      << "a home with no pending events must never wake on due";

  mgr.on_resumed(1, 4 * kSecond, 1000);
  EXPECT_EQ(mgr.resident_count(), 2u);
  EXPECT_TRUE(mgr.due_wakeups(40 * kSecond).empty());

  ResidencyPolicy off = policy;
  off.wake_on_due = false;
  ResidencyManager quiet(off);
  quiet.reset(2, 0);
  quiet.on_hibernated(0, kSecond, 2 * kSecond);
  EXPECT_TRUE(quiet.due_wakeups(10 * kSecond).empty());
}

TEST(FleetProfile, SharedTablesMatchHistoricalDerivation) {
  const auto profile = FleetProfile::build(/*fleet_seed=*/42, /*homes=*/4,
                                           /*devices_per_home=*/3);
  ASSERT_EQ(profile->home_seeds.size(), 4u);
  ASSERT_EQ(profile->device_specs.size(), 4u);
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_EQ(profile->home_seeds[h], FleetProfile::home_seed(42, h));
    const auto derived =
        FleetProfile::derive_devices(profile->home_seeds[h], 3);
    ASSERT_EQ(profile->device_specs[h].size(), derived.size());
    for (std::size_t d = 0; d < derived.size(); ++d) {
      EXPECT_EQ(profile->device_specs[h][d].name, derived[d].name);
    }
  }
  // Neighbouring homes decorrelate even for tiny fleet seeds.
  EXPECT_NE(profile->home_seeds[0], profile->home_seeds[1]);
}

TEST(EventLoop, NextEventAtReportsEarliestPending) {
  sim::EventLoop loop;
  EXPECT_EQ(loop.next_event_at(), sim::EventLoop::kNoEvent);
  loop.schedule_at(7 * kSecond, [] {});
  loop.schedule_at(3 * kSecond, [] {});
  EXPECT_EQ(loop.next_event_at(), 3 * kSecond);
}

}  // namespace
}  // namespace hw::residency

// ---------------------------------------------------------------------------
// LiveFleet integration: hibernate cold homes, page back on demand

namespace hw::live {
namespace {

using residency::ResidencyManager;

constexpr Duration kBootSettle = 10 * kMillisecond;

LiveConfig residency_config(std::size_t homes, std::size_t threads) {
  LiveConfig cfg;
  cfg.homes = homes;
  cfg.threads = threads;
  cfg.seed = 7;
  cfg.attack.kind = LiveAttack::Kind::DhcpFlood;
  cfg.attack.home = 0;
  // Flood offers are held short enough that the reclaim sweep fires inside
  // the test window — including while their home is hibernated.
  cfg.dhcp_offer_hold = 2 * kSecond;
  // Every home carries ~1 s periodic maintenance timers, so due-wakeups
  // would page a hibernated home straight back in. Sleeping through the
  // timers (closed world, catch-up on wake) is the interesting regime.
  cfg.residency.wake_on_due = false;
  return cfg;
}

/// Runs `cfg` to `end` applying `schedule` (virtual time -> mutation); the
/// mutations are submitted one barrier ahead so they land at exactly their
/// scheduled virtual barrier regardless of thread count.
std::map<std::string, double> run_schedule(
    LiveConfig cfg, const std::vector<std::pair<Timestamp, Mutation>>& schedule,
    Timestamp end) {
  LiveFleet fleet(cfg);
  fleet.start();
  std::size_t next = 0;
  while (fleet.now() < end) {
    while (next < schedule.size() &&
           fleet.next_barrier() == schedule[next].first) {
      fleet.submit(schedule[next].second);
      ++next;
    }
    fleet.step();
  }
  // Frozen scalars speak for their hibernation barrier; bring every
  // hibernated home current before fingerprinting.
  fleet.refresh_telemetry();
  return fleet.fingerprint();
}

// The property: ANY schedule of hibernate/wake verbs landing on the aligned
// grid leaves merged telemetry bit-identical to the always-resident run, at
// 1, 2 and 8 worker threads. Wake catch-up replays each hibernated home's
// missed virtual time, and the world is closed, so residency scheduling is
// invisible to the fingerprint.
TEST(LiveFleetResidency, RandomHibernateWakeScheduleIsFingerprintInvisible) {
  constexpr std::size_t kHomes = 4;
  const Timestamp kEnd = kBootSettle + 3 * LiveFleet::kCheckpointAlign;

  // Seeded random schedule: at every aligned barrier, flip a coin per home
  // between hibernate and wake (redundant verbs are no-ops, so the schedule
  // needs no validity bookkeeping).
  Rng rng(2011);
  std::vector<std::pair<Timestamp, Mutation>> schedule;
  for (std::size_t k = 1; k <= 2; ++k) {
    const Timestamp barrier = kBootSettle + k * LiveFleet::kCheckpointAlign;
    for (std::uint32_t home = 0; home < kHomes; ++home) {
      if (rng.chance(0.5)) {
        schedule.emplace_back(barrier, hibernate_home(home));
      } else if (rng.chance(0.5)) {
        schedule.emplace_back(barrier, wake_home(home));
      }
    }
  }
  ASSERT_FALSE(schedule.empty()) << "seed produced an empty schedule";

  const auto baseline =
      run_schedule(residency_config(kHomes, 1), {}, kEnd);
  // The flood's short-held offers were reclaimed during the window — the
  // very state machines hibernation must not disturb.
  ASSERT_GT(baseline.at("homework.dhcp.offers_expired"), 0.0);
  ASSERT_GT(baseline.at("homework.dhcp.expired") +
                baseline.at("homework.forwarding.flows_installed"),
            0.0);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto fp =
        run_schedule(residency_config(kHomes, threads), schedule, kEnd);
    EXPECT_EQ(fp, baseline)
        << threads << " threads diverged:\n"
        << hw::residency::diff_maps(fp, baseline);
  }
}

// The offer-expiry regression, explicitly: home 0 hibernates before its
// flood offers' hold elapses and wakes after; the reclaim sweep must fire
// during catch-up at its recorded virtual time, not at wake time.
TEST(LiveFleetResidency, DhcpOfferExpiryFiresAcrossHibernationWindow) {
  const Timestamp kEnd = kBootSettle + 3 * LiveFleet::kCheckpointAlign;
  const std::vector<std::pair<Timestamp, Mutation>> schedule = {
      {kBootSettle + LiveFleet::kCheckpointAlign, hibernate_home(0)},
      {kBootSettle + 2 * LiveFleet::kCheckpointAlign, wake_home(0)},
  };
  const auto baseline = run_schedule(residency_config(2, 1), {}, kEnd);
  const auto fp = run_schedule(residency_config(2, 1), schedule, kEnd);
  ASSERT_GT(baseline.at("homework.dhcp.offers_expired"), 0.0);
  EXPECT_EQ(fp, baseline) << hw::residency::diff_maps(fp, baseline);
}

TEST(LiveFleetResidency, HibernatedHomeStaysObservable) {
  LiveFleet fleet(residency_config(2, 2));
  fleet.start();
  fleet.advance_to(2 * kSecond);
  const auto before = fleet.scalars(1);
  const std::string mac = fleet.device_mac(1, "laptop");

  fleet.submit(hibernate_home(1));
  fleet.advance_to(kBootSettle + LiveFleet::kCheckpointAlign);
  ASSERT_TRUE(fleet.residency().hibernated(1));
  EXPECT_EQ(fleet.residency().resident_count(), 1u);
  EXPECT_TRUE(fleet.image_store().contains(1));
  EXPECT_GT(fleet.image_store().stored_bytes(), 0u);

  // Status, scalars and device identity keep answering from frozen state.
  const LiveHomeStatus status = fleet.status(1);
  EXPECT_TRUE(status.hibernated);
  EXPECT_GT(status.devices, 0u);
  const auto frozen = fleet.scalars(1);
  EXPECT_GE(frozen.size(), before.size());
  EXPECT_EQ(fleet.device_mac(1, "laptop"), mac);
  EXPECT_FALSE(fleet.status(0).hibernated);

  // An external stimulus pages it back in at the next barrier.
  fleet.touch(1);
  fleet.step();
  EXPECT_FALSE(fleet.residency().hibernated(1));
  EXPECT_FALSE(fleet.image_store().contains(1))
      << "resident home left a stale image behind";
  EXPECT_FALSE(fleet.status(1).hibernated);
}

// A checkpoint taken while part of the fleet sleeps stitches stored images
// (restamped to the checkpoint's capture tag) together with live captures —
// and the result replays bit-identically.
TEST(LiveFleetResidency, MixedCheckpointReplaysBitIdentical) {
  const LiveConfig cfg = residency_config(4, 2);
  LiveFleet fleet(cfg);
  fleet.start();
  fleet.submit(hibernate_home(2));
  fleet.submit(hibernate_home(3));
  fleet.advance_to(kBootSettle + LiveFleet::kCheckpointAlign);
  ASSERT_TRUE(fleet.residency().hibernated(2));
  ASSERT_TRUE(fleet.residency().hibernated(3));

  fleet.submit(checkpoint());
  fleet.advance_to(kBootSettle + 2 * LiveFleet::kCheckpointAlign);
  ASSERT_EQ(fleet.checkpoints().size(), 1u);
  const FleetCheckpoint& cp = fleet.checkpoints()[0];
  ASSERT_EQ(cp.images.size(), 4u);
  // The sleeping homes' images are their hibernation-time captures.
  EXPECT_LT(cp.images[2].captured_at, cp.captured_at);
  EXPECT_EQ(cp.images[0].captured_at, cp.captured_at);

  fleet.advance_to(kBootSettle + 3 * LiveFleet::kCheckpointAlign);
  fleet.refresh_telemetry();
  const auto live_fp = fleet.fingerprint();
  for (const std::size_t threads : {1u, 2u}) {
    auto replayed = LiveFleet::replay_fingerprint(cfg, cp, fleet.log(),
                                                  fleet.now(), threads);
    ASSERT_TRUE(replayed.ok()) << replayed.error().message;
    EXPECT_EQ(replayed.value(), live_fp)
        << hw::residency::diff_maps(replayed.value(), live_fp);
  }
}

TEST(LiveFleetResidency, PolicyEvictsIdleHomesAndCountsPeak) {
  LiveConfig cfg = residency_config(4, 2);
  cfg.residency.max_resident = 1;
  cfg.residency.idle_watermark = kSecond;
  cfg.residency.wake_on_due = false;
  LiveFleet fleet(cfg);
  fleet.start();
  EXPECT_EQ(fleet.resident_peak(), 4u);
  fleet.advance_to(kBootSettle + LiveFleet::kCheckpointAlign);
  // All four idle past the watermark; the cap holds nobody above it.
  EXPECT_EQ(fleet.residency().resident_count(), 0u);
  EXPECT_EQ(fleet.image_store().size(), 4u);

  // Waking one home leaves the rest asleep.
  fleet.submit(wake_home(2));
  fleet.advance_to(kBootSettle + LiveFleet::kCheckpointAlign + kSecond);
  EXPECT_FALSE(fleet.residency().hibernated(2));
  EXPECT_EQ(fleet.residency().resident_count(), 1u);
  fleet.refresh_telemetry();
  EXPECT_FALSE(fleet.fingerprint().empty());
}

// ---------------------------------------------------------------------------
// Operator plane: hibernate/wake verbs and subscription touch

struct ResidencyLinkFixture : ::testing::Test {
  ResidencyLinkFixture() : fleet(residency_config(2, 2)), link(op_loop, fleet) {
    fleet.start();
  }

  LiveClient& make_client() {
    hwdb::rpc::RetryPolicy policy;
    policy.max_attempts = 5;
    policy.timeout = 50 * kMillisecond;
    policy.backoff_base = 10 * kMillisecond;
    clients.push_back(std::make_unique<LiveClient>(link.make_client(policy)));
    return *clients.back();
  }

  void pump() {
    link.server().pump();
    op_loop.run_for(10 * kMillisecond);
  }

  sim::EventLoop op_loop;
  LiveFleet fleet;
  InProcLiveLink link;
  std::vector<std::unique_ptr<LiveClient>> clients;
};

TEST_F(ResidencyLinkFixture, HibernateAndWakeVerbsRoundTrip) {
  LiveClient& client = make_client();
  bool ok = false;
  Timestamp applied_at = 0;
  client.mutate(hibernate_home(1),
                [&](bool mutation_ok, Timestamp at, std::string) {
                  ok = mutation_ok;
                  applied_at = at;
                });
  op_loop.run_for(10 * kMillisecond);
  ASSERT_TRUE(ok);
  // Hibernations land on the checkpoint-aligned grid, like captures.
  EXPECT_EQ(applied_at, kBootSettle + LiveFleet::kCheckpointAlign);

  while (fleet.now() < applied_at) pump();
  ASSERT_TRUE(fleet.residency().hibernated(1));

  ok = false;
  client.mutate(wake_home(1), [&](bool mutation_ok, Timestamp, std::string) {
    ok = mutation_ok;
  });
  op_loop.run_for(10 * kMillisecond);
  ASSERT_TRUE(ok);
  pump();
  EXPECT_FALSE(fleet.residency().hibernated(1));
}

TEST_F(ResidencyLinkFixture, SubscriptionTouchPagesHomeBackIn) {
  LiveClient& client = make_client();
  client.mutate(hibernate_home(0));
  op_loop.run_for(10 * kMillisecond);
  while (fleet.now() < kBootSettle + LiveFleet::kCheckpointAlign) pump();
  ASSERT_TRUE(fleet.residency().hibernated(0));

  // Subscribing to the sleeping home's series is an external stimulus: the
  // operator wants live data, so the home pages back in.
  std::uint64_t sub_id = 0;
  client.subscribe_series("live.home.*", 0, 1, 64,
                          [&](Result<std::uint64_t> r) {
                            ASSERT_TRUE(r.ok()) << r.error().message;
                            sub_id = r.value();
                          });
  op_loop.run_for(10 * kMillisecond);
  ASSERT_NE(sub_id, 0u);
  pump();
  EXPECT_FALSE(fleet.residency().hibernated(0));

  // And the stream serves the woken home's live values.
  for (int i = 0; i < 4; ++i) pump();
  const View* v = client.view(sub_id);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->synced);
  EXPECT_FALSE(v->values.empty());
}

}  // namespace
}  // namespace hw::live
