// Adversarial scenario suite: the five seeded hostile workloads run green,
// replay bit-identically per seed, compose with chaos fault plans, and the
// TableFull/microflow promises hold under randomized hostile interleavings.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "net/packet.hpp"
#include "openflow/channel.hpp"
#include "openflow/datapath.hpp"
#include "openflow/flow_table.hpp"
#include "scenario/dhcp_starvation.hpp"
#include "scenario/guest_churn.hpp"
#include "scenario/iot_swarm.hpp"
#include "scenario/roaming.hpp"
#include "scenario/table_exhaustion.hpp"
#include "telemetry/metrics.hpp"
#include "util/rand.hpp"

namespace hw {
namespace {

using scenario::Report;

/// Runs a scenario under a fresh registry; returns its report plus the
/// home-side scalar fingerprint (non-histogram, the deterministic view).
template <typename S>
std::pair<Report, std::map<std::string, double>> run_scoped(
    typename S::Config config = S::default_config()) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);
  S s(config);
  Report report = s.run();
  return {std::move(report), registry.scalars()};
}

// -- The five scenarios, green at their default seed -------------------------

TEST(ScenarioGreen, DhcpStarvation) {
  auto [report, scalars] = run_scoped<scenario::DhcpStarvationScenario>(
      scenario::Scenario::Config{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.attack_events, 1000u);
  EXPECT_GT(report.attack_rate(), 0.0);
  ASSERT_EQ(report.recovery_samples.size(), 3u);  // the three late joiners
  EXPECT_LE(report.recovery_p50(), report.recovery_p99());
  EXPECT_GT(scalars.count("homework.dhcp.pool_exhausted"), 0u);
}

TEST(ScenarioGreen, TableExhaustion) {
  auto [report, scalars] = run_scoped<scenario::TableExhaustionScenario>();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.attack_events, 1000u);
  EXPECT_FALSE(report.recovery_samples.empty());  // post-attack echo probes
  (void)scalars;
}

TEST(ScenarioGreen, IotSwarm) {
  auto [report, scalars] = run_scoped<scenario::IotSwarmScenario>();
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto& params = scenario::IotSwarmScenario::Params{};
  EXPECT_EQ(report.recovery_samples.size(), params.devices);  // bind latencies
  (void)scalars;
}

TEST(ScenarioGreen, GuestChurn) {
  auto [report, scalars] = run_scoped<scenario::GuestChurnScenario>();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.recovery_samples.size(), 18u);  // permit→bind per guest
  (void)scalars;
}

TEST(ScenarioGreen, RoamingFleet) {
  auto [report, scalars] = run_scoped<scenario::RoamingScenario>();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.recovery_samples.size(), 4u);  // one rebind per pair
  (void)scalars;
}

// -- Seed determinism: same seed, same fingerprint ---------------------------

TEST(ScenarioDeterminism, DhcpStarvationReplaysBitIdentically) {
  scenario::Scenario::Config config;
  config.seed = 4242;
  auto [r1, f1] = run_scoped<scenario::DhcpStarvationScenario>(config);
  auto [r2, f2] = run_scoped<scenario::DhcpStarvationScenario>(config);
  EXPECT_TRUE(r1.ok()) << r1.to_string();
  EXPECT_EQ(r1.attack_events, r2.attack_events);
  EXPECT_EQ(r1.recovery_samples, r2.recovery_samples);
  EXPECT_EQ(f1, f2);
}

TEST(ScenarioDeterminism, GuestChurnReplaysBitIdentically) {
  auto config = scenario::GuestChurnScenario::default_config();
  config.seed = 99;
  auto [r1, f1] = run_scoped<scenario::GuestChurnScenario>(config);
  auto [r2, f2] = run_scoped<scenario::GuestChurnScenario>(config);
  EXPECT_TRUE(r1.ok()) << r1.to_string();
  EXPECT_EQ(r1.recovery_samples, r2.recovery_samples);
  EXPECT_EQ(f1, f2);
}

// -- Chaos composition: the attack under a PR 3 fault plan -------------------

TEST(ScenarioChaos, DhcpStarvationSurvivesFaultPlan) {
  scenario::Scenario::Config config;
  config.seed = 7;
  sim::FaultPlan plan;
  plan.seed = 77;
  sim::FaultWindow loss1;
  loss1.kind = sim::FaultKind::LinkLoss;
  loss1.start = 3 * kSecond;
  loss1.duration = 2 * kSecond;
  loss1.loss = 0.3;
  plan.windows.push_back(loss1);
  sim::FaultWindow outage;
  outage.kind = sim::FaultKind::ControllerOutage;
  outage.start = 6 * kSecond;
  outage.duration = 2 * kSecond;
  plan.windows.push_back(outage);
  sim::FaultWindow loss2;
  loss2.kind = sim::FaultKind::LinkLoss;
  loss2.start = 11 * kSecond;
  loss2.duration = 2 * kSecond;
  loss2.loss = 0.2;
  plan.windows.push_back(loss2);
  config.faults = plan;

  auto [report, scalars] = run_scoped<scenario::DhcpStarvationScenario>(config);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // The chaos actually ran: the injector opened and closed its windows.
  EXPECT_EQ(scalars["sim.fault.windows_started"], 3.0);
  EXPECT_EQ(scalars["sim.fault.windows_ended"], 3.0);
}

// -- TableFull property suite ------------------------------------------------

ofp::Match hostile_match(Rng& rng) {
  ofp::Match m = ofp::Match::any();
  m.with_dl_type(0x0800)
      .with_nw_dst(Ipv4Address{10, 0, 0, static_cast<std::uint8_t>(
                                             rng.uniform(48))})
      .with_tp_dst(static_cast<std::uint16_t>(1000 + rng.uniform(48)));
  return m;
}

ofp::Match exact_probe(Ipv4Address dst, std::uint16_t tp_dst) {
  ofp::Match m;
  m.wildcards = 0;
  m.in_port = 1;
  m.dl_src = MacAddress::from_index(1);
  m.dl_dst = MacAddress::from_index(2);
  m.dl_vlan = 0xffff;
  m.dl_type = 0x0800;
  m.nw_proto = 17;
  m.nw_src = Ipv4Address{192, 168, 1, 100};
  m.nw_dst = dst;
  m.tp_src = 40000;
  m.tp_dst = tp_dst;
  return m;
}

TEST(TableFullProperty, CapacityHoldsUnderHostileInterleavings) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    telemetry::MetricRegistry registry;
    telemetry::ScopedMetricRegistry scoped(registry);
    Rng rng(seed);
    ofp::FlowTable table(24);
    Timestamp now = 0;
    std::uint64_t rejections = 0;
    for (int op = 0; op < 3000; ++op) {
      now += rng.uniform(800 * kMillisecond);
      const auto roll = rng.uniform(100);
      if (roll < 60) {
        ofp::FlowMod add;
        add.match = hostile_match(rng);
        add.idle_timeout = static_cast<std::uint16_t>(1 + rng.uniform(5));
        add.actions = ofp::output_to(1);
        const auto result = table.apply(add, now);
        if (result == ofp::FlowModResult::TableFull) {
          ++rejections;
          // A rejection only ever happens with the table exactly full.
          ASSERT_EQ(table.size(), table.capacity()) << "seed " << seed;
        }
      } else if (roll < 80) {
        table.expire(now, /*suspend_idle=*/rng.chance(0.25));
      } else if (roll < 90) {
        ofp::FlowMod del;
        del.command = ofp::FlowModCommand::Delete;
        del.match = hostile_match(rng);
        table.apply(del, now);
      } else {
        table.lookup(
            exact_probe(Ipv4Address{10, 0, 0, static_cast<std::uint8_t>(
                                                  rng.uniform(48))},
                        static_cast<std::uint16_t>(1000 + rng.uniform(48))),
            now, 64);
      }
      ASSERT_LE(table.size(), table.capacity()) << "seed " << seed;
    }
    EXPECT_GT(rejections, 0u) << "seed " << seed;
    EXPECT_EQ(table.stats().table_full, rejections) << "seed " << seed;
  }
}

TEST(TableFullProperty, EveryRejectionAnswersAllTablesFull) {
  sim::EventLoop loop;
  ofp::Datapath dp(loop, {.datapath_id = 1, .table_capacity = 8});
  ofp::InProcConnection conn(loop);
  std::vector<ofp::Envelope> received;
  conn.controller_end().on_receive([&](const Bytes& encoded) {
    auto env = ofp::decode(encoded);
    ASSERT_TRUE(env.ok());
    received.push_back(std::move(env).take());
  });
  dp.connect(conn.datapath_end());
  loop.run_for(kMillisecond);

  Rng rng(11);
  for (int i = 0; i < 64; ++i) {
    ofp::FlowMod add;
    add.match = ofp::Match::any();
    add.match.with_tp_dst(static_cast<std::uint16_t>(2000 + i));
    add.actions = ofp::output_to(1);
    conn.controller_end().send(
        ofp::encode({static_cast<std::uint32_t>(100 + i), std::move(add)}));
    if (rng.chance(0.3)) loop.run_for(kMillisecond);
  }
  loop.run_for(kMillisecond);

  std::uint64_t errors = 0;
  for (const auto& env : received) {
    if (const auto* err = std::get_if<ofp::ErrorMsg>(&env.msg)) {
      ++errors;
      EXPECT_EQ(err->type, ofp::ErrorType::FlowModFailed);
      EXPECT_EQ(err->code, 0u);  // OFPFMFC_ALL_TABLES_FULL
    }
  }
  EXPECT_EQ(dp.table().size(), 8u);
  EXPECT_EQ(errors, 64u - 8u);
  EXPECT_EQ(dp.table().stats().table_full, errors);
}

TEST(TableFullProperty, MicroflowNeverServesEvictedFlow) {
  sim::EventLoop loop;
  ofp::Datapath dp(loop, {.datapath_id = 1, .table_capacity = 4});
  ofp::InProcConnection conn(loop);
  std::vector<ofp::Envelope> received;
  conn.controller_end().on_receive([&](const Bytes& encoded) {
    auto env = ofp::decode(encoded);
    ASSERT_TRUE(env.ok());
    received.push_back(std::move(env).take());
  });
  class Collector final : public sim::FrameSink {
   public:
    void deliver(const Bytes& frame) override { frames.push_back(frame); }
    std::vector<Bytes> frames;
  } out1, out2;
  dp.add_port(1, "p1", MacAddress::from_index(0xa1), &out1);
  dp.add_port(2, "p2", MacAddress::from_index(0xa2), &out2);
  dp.connect(conn.datapath_end());
  loop.run_for(kMillisecond);

  // Install a short-idle rule, warm the microflow cache with it, then let
  // hostile-churn expiry evict it: the cached handle must die with it.
  ofp::FlowMod add;
  add.match = ofp::Match::any();
  add.match.with_tp_dst(7777);
  add.idle_timeout = 1;
  add.actions = ofp::output_to(2);
  conn.controller_end().send(ofp::encode({5, std::move(add)}));
  loop.run_for(kMillisecond);

  const Bytes frame =
      net::build_udp(MacAddress::from_index(1), MacAddress::from_index(2),
                     Ipv4Address{192, 168, 1, 100}, Ipv4Address{10, 1, 1, 1},
                     1234, 7777, Bytes(32, 0));
  dp.receive_frame(1, frame);  // classifier hit, cached
  dp.receive_frame(1, frame);  // microflow hit
  loop.run_for(kMillisecond);
  ASSERT_EQ(out2.frames.size(), 2u);
  EXPECT_GE(dp.stats().microflow_hits, 1u);

  loop.run_for(3 * kSecond);  // idle expiry sweeps the rule out
  const std::size_t packet_ins_before = [&] {
    std::size_t n = 0;
    for (const auto& env : received) {
      if (std::get_if<ofp::PacketIn>(&env.msg) != nullptr) ++n;
    }
    return n;
  }();

  dp.receive_frame(1, frame);
  loop.run_for(kMillisecond);
  // Not forwarded from a stale cache handle: the frame missed and went to
  // the controller instead.
  EXPECT_EQ(out2.frames.size(), 2u);
  std::size_t packet_ins_after = 0;
  for (const auto& env : received) {
    if (std::get_if<ofp::PacketIn>(&env.msg) != nullptr) ++packet_ins_after;
  }
  EXPECT_EQ(packet_ins_after, packet_ins_before + 1);
  EXPECT_GE(dp.stats().microflow_invalidations, 1u);
}

// -- spoofed_discover frame shape -------------------------------------------

TEST(SpoofedDiscover, ParsesAsBroadcastDhcp) {
  const auto mac = MacAddress::from_index(0x123456);
  const Bytes frame = scenario::spoofed_discover(mac, 0xabcd, "evil");
  const auto parsed = net::ParsedPacket::parse(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().eth.src, mac);
  EXPECT_TRUE(parsed.value().eth.dst.is_broadcast());
}

}  // namespace
}  // namespace hw
