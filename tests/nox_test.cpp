// NOX controller framework: component dependency ordering, the OpenFlow
// handshake, ordered packet-in dispatch with Stop/Continue disposition, and
// the async stats/echo APIs — against a real Datapath over a real channel.
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "nox/controller.hpp"
#include "nox/liveness.hpp"
#include "openflow/datapath.hpp"

namespace hw::nox {
namespace {

class Recorder : public Component {
 public:
  Recorder(std::string name, std::vector<std::string>& log,
           std::vector<std::string> deps = {}, Disposition disposition = Disposition::Continue)
      : Component(std::move(name)), log_(log), deps_(std::move(deps)),
        disposition_(disposition) {}

  std::vector<std::string> dependencies() const override { return deps_; }

  void install(Controller& ctl) override {
    Component::install(ctl);
    log_.push_back("install:" + name());
  }
  void handle_datapath_join(DatapathId dpid, const ofp::FeaturesReply&) override {
    log_.push_back("join:" + name() + ":" + std::to_string(dpid));
  }
  Disposition handle_packet_in(const PacketInEvent& ev) override {
    log_.push_back("pktin:" + name() + ":" + std::to_string(ev.msg.in_port));
    return disposition_;
  }
  void handle_flow_removed(DatapathId, const ofp::FlowRemoved&) override {
    log_.push_back("flowrem:" + name());
  }

 private:
  std::vector<std::string>& log_;
  std::vector<std::string> deps_;
  Disposition disposition_;
};

TEST(ControllerComponents, InstallFollowsDependencyOrder) {
  sim::EventLoop loop;
  Controller ctl(loop);
  std::vector<std::string> log;
  ctl.add_component(std::make_unique<Recorder>("c", log,
                                               std::vector<std::string>{"b"}));
  ctl.add_component(std::make_unique<Recorder>("a", log));
  ctl.add_component(std::make_unique<Recorder>("b", log,
                                               std::vector<std::string>{"a"}));
  ctl.start();
  // "c" is registered first but depends on b which depends on a.
  EXPECT_EQ(log, (std::vector<std::string>{"install:a", "install:b", "install:c"}));
}

TEST(ControllerComponents, CycleThrows) {
  sim::EventLoop loop;
  Controller ctl(loop);
  std::vector<std::string> log;
  ctl.add_component(std::make_unique<Recorder>("a", log,
                                               std::vector<std::string>{"b"}));
  ctl.add_component(std::make_unique<Recorder>("b", log,
                                               std::vector<std::string>{"a"}));
  EXPECT_THROW(ctl.start(), std::runtime_error);
}

TEST(ControllerComponents, UnknownDependencyThrows) {
  sim::EventLoop loop;
  Controller ctl(loop);
  std::vector<std::string> log;
  ctl.add_component(std::make_unique<Recorder>("a", log,
                                               std::vector<std::string>{"ghost"}));
  EXPECT_THROW(ctl.start(), std::runtime_error);
}

TEST(ControllerComponents, LookupByNameAndType) {
  sim::EventLoop loop;
  Controller ctl(loop);
  std::vector<std::string> log;
  ctl.add_component(std::make_unique<Recorder>("a", log));
  ctl.start();
  EXPECT_NE(ctl.component("a"), nullptr);
  EXPECT_EQ(ctl.component("nope"), nullptr);
  EXPECT_NE(ctl.component_as<Recorder>("a"), nullptr);
}

struct HandshakeFixture : ::testing::Test {
  HandshakeFixture()
      : dp(loop, {.datapath_id = 7}), conn(loop), ctl(loop) {
    dp.add_port(1, "p1", MacAddress::from_index(1), &sink);
    dp.add_port(2, "p2", MacAddress::from_index(2), &sink2);
  }

  void connect_all() {
    ctl.start();
    dp.connect(conn.datapath_end());
    ctl.connect_datapath(conn.controller_end());
    loop.run_for(10 * kMillisecond);
  }

  class Collector final : public sim::FrameSink {
   public:
    void deliver(const Bytes& frame) override { frames.push_back(frame); }
    std::vector<Bytes> frames;
  };

  sim::EventLoop loop;
  Collector sink, sink2;
  ofp::Datapath dp;
  ofp::InProcConnection conn;
  Controller ctl;
  std::vector<std::string> log;
};

TEST_F(HandshakeFixture, DatapathJoinsAndAnnounces) {
  ctl.add_component(std::make_unique<Recorder>("mod", log));
  connect_all();
  EXPECT_TRUE(ctl.datapath_connected(7));
  ASSERT_EQ(ctl.datapaths().size(), 1u);
  const auto* features = ctl.features(7);
  ASSERT_NE(features, nullptr);
  EXPECT_EQ(features->ports.size(), 2u);
  EXPECT_EQ(log, (std::vector<std::string>{"install:mod", "join:mod:7"}));
}

TEST_F(HandshakeFixture, PacketInChainStopsAtConsumer) {
  ctl.add_component(std::make_unique<Recorder>("first", log,
                                               std::vector<std::string>{},
                                               Disposition::Stop));
  ctl.add_component(std::make_unique<Recorder>("second", log));
  connect_all();
  dp.receive_frame(1, net::build_udp(MacAddress::from_index(9),
                                     MacAddress::from_index(8),
                                     Ipv4Address{1, 1, 1, 1},
                                     Ipv4Address{2, 2, 2, 2}, 10, 20,
                                     Bytes(8, 0)));
  loop.run_for(10 * kMillisecond);
  // "second" never sees the packet.
  EXPECT_EQ(std::count(log.begin(), log.end(), "pktin:first:1"), 1);
  EXPECT_EQ(std::count_if(log.begin(), log.end(),
                          [](const std::string& s) {
                            return s.rfind("pktin:second", 0) == 0;
                          }),
            0);
  EXPECT_EQ(ctl.stats().packet_ins, 1u);
}

TEST_F(HandshakeFixture, InstallFlowReachesDatapathTable) {
  connect_all();
  ofp::Match m = ofp::Match::any();
  m.with_dl_type(0x0800);
  ctl.install_flow(7, m, ofp::output_to(2), 0x7000, 5, 0);
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(dp.table().size(), 1u);
  EXPECT_EQ(ctl.stats().flow_mods, 1u);

  ctl.delete_flows(7, ofp::Match::any());
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(dp.table().size(), 0u);
}

TEST_F(HandshakeFixture, PacketOutEgresses) {
  connect_all();
  ofp::PacketOut po;
  po.actions = ofp::output_to(2);
  po.data = net::build_udp(MacAddress::from_index(9), MacAddress::from_index(8),
                           Ipv4Address{1, 1, 1, 1}, Ipv4Address{2, 2, 2, 2}, 1,
                           2, Bytes(4, 0));
  ctl.send_packet_out(7, po);
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(sink2.frames.size(), 1u);
}

TEST_F(HandshakeFixture, AsyncStatsCallback) {
  connect_all();
  ofp::Match m = ofp::Match::any();
  ctl.install_flow(7, m, ofp::output_to(2));
  loop.run_for(10 * kMillisecond);

  bool fired = false;
  ofp::StatsRequest req;
  req.type = ofp::StatsType::Aggregate;
  req.body = ofp::FlowStatsRequest{};
  ctl.request_stats(7, req, [&](const ofp::StatsReply& reply) {
    fired = true;
    EXPECT_EQ(std::get<ofp::AggregateStatsReplyBody>(reply.body).flow_count, 1u);
  });
  loop.run_for(10 * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST_F(HandshakeFixture, EchoRoundTrip) {
  connect_all();
  bool alive = false;
  ctl.send_echo(7, [&] { alive = true; });
  loop.run_for(10 * kMillisecond);
  EXPECT_TRUE(alive);
}

TEST_F(HandshakeFixture, FlowRemovedReachesComponents) {
  ctl.add_component(std::make_unique<Recorder>("mod", log));
  connect_all();
  ofp::Match m = ofp::Match::any();
  m.with_dl_type(0x0800);
  ctl.install_flow(7, m, ofp::output_to(2), 0x7000, /*idle=*/1, 0,
                   /*notify_removal=*/true);
  loop.run_for(3 * kSecond);
  EXPECT_NE(std::find(log.begin(), log.end(), "flowrem:mod"), log.end());
  EXPECT_EQ(ctl.stats().flow_removed, 1u);
}

TEST_F(HandshakeFixture, LivenessMonitorTracksRttAndDeath) {
  LivenessMonitor::Config lm_config;
  lm_config.probe_interval = kSecond;
  lm_config.max_misses = 2;
  auto monitor = std::make_unique<LivenessMonitor>(lm_config);
  LivenessMonitor* lm = monitor.get();
  ctl.add_component(std::move(monitor));
  connect_all();

  std::vector<DatapathId> dead, recovered;
  lm->on_dead([&](DatapathId d) { dead.push_back(d); });
  lm->on_recovered([&](DatapathId d) { recovered.push_back(d); });

  // Healthy channel: probes answered, peer alive, RTT measured.
  loop.run_for(5 * kSecond);
  const auto* peer = lm->peer(7);
  ASSERT_NE(peer, nullptr);
  EXPECT_TRUE(peer->alive);
  EXPECT_GT(peer->replies, 2u);
  EXPECT_EQ(peer->consecutive_misses, 0);
  EXPECT_TRUE(dead.empty());

  // Channel dies: misses accumulate, death fires exactly once.
  conn.disconnect();
  loop.run_for(10 * kSecond);
  EXPECT_FALSE(lm->peer(7)->alive);
  EXPECT_EQ(dead, (std::vector<DatapathId>{7}));
  EXPECT_TRUE(recovered.empty());
}

TEST_F(HandshakeFixture, LivenessReplyAfterDeclaredDeadResurrects) {
  LivenessMonitor::Config lm_config;
  lm_config.probe_interval = kSecond;
  lm_config.max_misses = 2;
  auto monitor = std::make_unique<LivenessMonitor>(lm_config);
  LivenessMonitor* lm = monitor.get();
  ctl.add_component(std::move(monitor));
  connect_all();

  std::vector<DatapathId> dead, recovered;
  lm->on_dead([&](DatapathId d) { dead.push_back(d); });
  lm->on_recovered([&](DatapathId d) { recovered.push_back(d); });

  conn.disconnect();
  loop.run_for(10 * kSecond);
  ASSERT_EQ(dead, (std::vector<DatapathId>{7}));
  ASSERT_FALSE(lm->peer(7)->alive);

  // The monitor keeps probing a dead peer; once the channel heals, the next
  // echo reply resurrects it and fires on_recovered exactly once.
  conn.reconnect();
  loop.run_for(3 * kSecond);
  EXPECT_TRUE(lm->peer(7)->alive);
  EXPECT_EQ(recovered, (std::vector<DatapathId>{7}));
  EXPECT_EQ(lm->peer(7)->consecutive_misses, 0);
  EXPECT_EQ(dead.size(), 1u);  // no second death event

  // Dying again after a recovery fires on_dead again (repeatable cycle).
  conn.disconnect();
  loop.run_for(10 * kSecond);
  EXPECT_EQ(dead, (std::vector<DatapathId>{7, 7}));
}

TEST_F(HandshakeFixture, LivenessMaxMissesOneFiresOnFirstConfirmedMiss) {
  LivenessMonitor::Config lm_config;
  lm_config.probe_interval = kSecond;
  lm_config.max_misses = 1;
  auto monitor = std::make_unique<LivenessMonitor>(lm_config);
  LivenessMonitor* lm = monitor.get();
  ctl.add_component(std::move(monitor));
  connect_all();

  std::vector<DatapathId> dead;
  lm->on_dead([&](DatapathId d) { dead.push_back(d); });

  conn.disconnect();
  // Probe round 1 (t≈1s) records the first miss; round 2 (t≈2s) confirms it
  // — consecutive_misses becomes 2 > max_misses — and must fire there, not a
  // round later.
  loop.run_for(kSecond + 100 * kMillisecond);
  EXPECT_TRUE(dead.empty());
  EXPECT_EQ(lm->peer(7)->consecutive_misses, 1);
  loop.run_for(kSecond);
  EXPECT_EQ(dead, (std::vector<DatapathId>{7}));
  EXPECT_FALSE(lm->peer(7)->alive);
}

TEST_F(HandshakeFixture, BarrierCallbackFiresAfterRoundTrip) {
  connect_all();
  bool confirmed = false;
  ctl.send_barrier(7, [&] { confirmed = true; });
  EXPECT_FALSE(confirmed);  // needs the datapath's BarrierReply
  loop.run_for(10 * kMillisecond);
  EXPECT_TRUE(confirmed);
}

/// Installs one table-setup flow on every datapath join, the way the real
/// modules (DHCP, DNS, forwarding) do — re-sync must replay it.
class FlowOnJoin final : public Component {
 public:
  FlowOnJoin() : Component("flow-on-join") {}
  void handle_datapath_join(DatapathId dpid, const ofp::FeaturesReply&) override {
    ofp::Match m = ofp::Match::any();
    m.with_dl_type(0x0800);
    controller().install_flow(dpid, m, ofp::output_to(2), 0x7000);
  }
};

TEST_F(HandshakeFixture, ResyncAfterChannelOutageReinstallsFlows) {
  ctl.add_component(std::make_unique<Recorder>("mod", log));
  ctl.add_component(std::make_unique<FlowOnJoin>());
  connect_all();
  ASSERT_EQ(dp.table().size(), 1u);

  // Sever the channel and wipe the table behind the controller's back.
  conn.disconnect();
  dp.restart();  // volatile state gone; HELLO queued into a dead channel
  ASSERT_EQ(dp.table().size(), 0u);

  std::vector<DatapathId> resynced;
  ctl.on_resynced([&](DatapathId d) { resynced.push_back(d); });
  const auto resynced_flows_before = ctl.stats().resynced_flows;

  conn.reconnect();
  ctl.resync_datapath(7);
  loop.run_for(100 * kMillisecond);

  // The rejoin replayed every component's datapath-join flow setup and the
  // barrier confirmed it landed in the table.
  EXPECT_EQ(resynced, (std::vector<DatapathId>{7}));
  EXPECT_GE(ctl.stats().reconnects, 1u);
  EXPECT_GT(ctl.stats().resynced_flows, resynced_flows_before);
  EXPECT_EQ(dp.table().size(), 1u);
  EXPECT_EQ(std::count(log.begin(), log.end(), "join:mod:7"), 2);
}

TEST_F(HandshakeFixture, HelloOnIdentifiedChannelTriggersResync) {
  connect_all();
  std::vector<DatapathId> resynced;
  ctl.on_resynced([&](DatapathId d) { resynced.push_back(d); });

  // A datapath restart on a live channel re-sends HELLO; the controller must
  // treat that as "peer lost its state" and drive a re-sync on its own.
  dp.restart();
  loop.run_for(100 * kMillisecond);
  EXPECT_EQ(resynced, (std::vector<DatapathId>{7}));
  EXPECT_GE(ctl.stats().reconnects, 1u);
}

TEST_F(HandshakeFixture, ResyncForUnknownDatapathIsCountedAndRearmed) {
  ctl.add_component(std::make_unique<FlowOnJoin>());

  // Nothing has identified yet: the resync request cannot be served. It must
  // not vanish silently — it is counted and re-armed.
  ASSERT_EQ(ctl.stats().resync_skipped, 0u);
  ctl.resync_datapath(7);
  EXPECT_EQ(ctl.stats().resync_skipped, 1u);

  // When dpid 7 finally identifies, the armed request upgrades the fresh
  // join into a full re-sync: on_resynced fires even though this connection
  // never dropped.
  std::vector<DatapathId> resynced;
  ctl.on_resynced([&](DatapathId d) { resynced.push_back(d); });
  connect_all();
  loop.run_for(100 * kMillisecond);
  EXPECT_EQ(resynced, (std::vector<DatapathId>{7}));
  EXPECT_GT(ctl.stats().resynced_flows, 0u);
  EXPECT_EQ(dp.table().size(), 1u);

  // The armed request was consumed: a second request for a now-known dpid
  // is served immediately and does not bump the skip counter.
  ctl.resync_datapath(7);
  loop.run_for(100 * kMillisecond);
  EXPECT_EQ(ctl.stats().resync_skipped, 1u);
  EXPECT_EQ(resynced, (std::vector<DatapathId>{7, 7}));
}

TEST_F(HandshakeFixture, SendToUnknownDatapathIsSafe) {
  connect_all();
  ctl.install_flow(999, ofp::Match::any(), ofp::output_to(1));
  ctl.send_packet_out(999, {});
  ctl.request_stats(999, {}, [](const ofp::StatsReply&) { FAIL(); });
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(ctl.stats().flow_mods, 0u);
}

}  // namespace
}  // namespace hw::nox
