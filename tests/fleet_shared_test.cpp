// Shared-controller fleet: N home datapaths over framed stream channels into
// one controller event loop per shard, with per-dpid state keeping homes that
// reuse identical MACs and RFC1918 addresses fully isolated.
#include "fleet/shared.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace hw::fleet {
namespace {

SharedFleetConfig base_config() {
  SharedFleetConfig cfg;
  cfg.homes = 8;
  cfg.threads = 1;
  cfg.seed = 2011;
  cfg.duration = 4 * kSecond;
  cfg.devices_per_home = 2;
  return cfg;
}

TEST(SharedFleet, HomesBindAndInstallFlowsThroughOneController) {
  SharedFleetRunner runner(base_config());
  const SharedFleetResult r = runner.run();

  ASSERT_EQ(r.homes.size(), 8u);
  EXPECT_EQ(r.homes_ok, 8u) << "every home must fully bind";
  for (std::size_t i = 0; i < r.homes.size(); ++i) {
    const SharedHomeStatus& home = r.homes[i];
    EXPECT_EQ(home.home_id, i);
    EXPECT_EQ(home.dpid, i + 1);
    EXPECT_EQ(home.devices_bound, 2u) << "home " << i;
    EXPECT_TRUE(home.all_bound) << "home " << i;
    EXPECT_GT(home.flow_entries, 0u) << "home " << i;
  }

  // The shared controller saw every home's DHCP exchange, installed per-home
  // forwarding rules, and all of it travelled through the stream framer.
  EXPECT_EQ(r.scalar_totals.at("homework.dhcp.acks"), 16.0);
  EXPECT_GT(r.scalar_totals.at("homework.forwarding.flows_installed"), 0.0);
  EXPECT_GT(r.scalar_totals.at("openflow.channel.rx_messages"), 0.0);
  EXPECT_GT(r.scalar_totals.at("openflow.channel.frames_ok"), 0.0);
  EXPECT_EQ(r.scalar_totals.at("openflow.channel.frames_bad"), 0.0);
}

TEST(SharedFleet, IdenticalAddressesInEveryHomeStayIsolated) {
  // Every home attaches devices with the SAME MACs, which then hold the SAME
  // 192.168.1.x leases; only datapath-id keying keeps the controller's
  // registry, DHCP scopes and flow rules from colliding. If any layer still
  // assumed a single home, binds or flow installs would go missing.
  SharedFleetConfig cfg = base_config();
  cfg.homes = 4;
  SharedFleetRunner runner(cfg);
  const SharedFleetResult r = runner.run();

  ASSERT_EQ(r.homes.size(), 4u);
  EXPECT_EQ(r.homes_ok, 4u);
  for (const SharedHomeStatus& home : r.homes) {
    EXPECT_EQ(home.flow_entries, r.homes.front().flow_entries)
        << "home " << home.home_id << " diverged from its identical twins";
    EXPECT_GT(home.flow_entries, 3u)
        << "home " << home.home_id
        << " holds only the module table setup, no traffic rules";
  }
}

struct Fingerprint {
  std::map<std::string, double> totals;
  std::vector<std::tuple<std::size_t, std::uint64_t, std::size_t, std::size_t,
                         bool>>
      per_home;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const SharedFleetResult& r) {
  Fingerprint fp;
  fp.totals = r.scalar_totals;
  for (const SharedHomeStatus& h : r.homes) {
    fp.per_home.emplace_back(h.home_id, h.dpid, h.devices_bound,
                             h.flow_entries, h.all_bound);
  }
  return fp;
}

TEST(SharedFleet, MergedTelemetryBitIdenticalAcrossWorkerPoolSizes) {
  SharedFleetConfig cfg = base_config();
  cfg.threads = 1;
  const Fingerprint one = fingerprint(SharedFleetRunner(cfg).run());
  cfg.threads = 2;
  const Fingerprint two = fingerprint(SharedFleetRunner(cfg).run());
  cfg.threads = 8;
  const Fingerprint eight = fingerprint(SharedFleetRunner(cfg).run());

  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one.per_home.size(), 8u);
}

TEST(SharedFleet, ReconcileFingerprintBitIdenticalAcrossThreadsUnderRestarts) {
  // The divergence workload: every odd home cold-restarts mid-run and rejoins
  // through a reconcile round. The reconcile.* counters are per-home
  // deterministic, so the merged fingerprint — including rounds, delta and
  // convergence counts — must be bit-identical at any worker-pool size.
  SharedFleetConfig cfg = base_config();
  cfg.duration = 5 * kSecond;
  cfg.restart_odd_homes = true;
  cfg.threads = 1;
  const SharedFleetResult base = SharedFleetRunner(cfg).run();
  const Fingerprint one = fingerprint(base);
  cfg.threads = 2;
  const Fingerprint two = fingerprint(SharedFleetRunner(cfg).run());
  cfg.threads = 8;
  const Fingerprint eight = fingerprint(SharedFleetRunner(cfg).run());

  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);

  // Every home — restarted or not — ends converged on its desired state.
  EXPECT_EQ(base.homes_ok, 8u);
  for (const SharedHomeStatus& home : base.homes) {
    EXPECT_TRUE(home.converged) << "home " << home.home_id;
  }
  // The reconciler really drove the recovery: join rounds for all 8 homes,
  // a rebuild round per restarted odd home (service flows re-added as
  // deltas) and a converged zero-delta round per admin-resynced even home.
  EXPECT_GE(base.scalar_totals.at("reconcile.rounds"), 16.0);
  EXPECT_GT(base.scalar_totals.at("reconcile.deltas_added"), 0.0);
  EXPECT_GE(base.scalar_totals.at("reconcile.converged_rounds"), 4.0);
}

TEST(SharedFleet, ReplayAndReconcileFleetsConvergeToIdenticalState) {
  // Differential: the same fleet, same seeds, same odd-home restarts, run
  // once with legacy replay-resync and once with the reconciler. Final flow
  // tables (rows, priorities, actions, cookies) and leases must be
  // identical in every home.
  SharedFleetConfig cfg = base_config();
  cfg.homes = 4;
  cfg.duration = 5 * kSecond;
  cfg.restart_odd_homes = true;
  cfg.collect_state = true;

  cfg.reconcile = false;
  const SharedFleetResult replay = SharedFleetRunner(cfg).run();
  cfg.reconcile = true;
  const SharedFleetResult reconcile = SharedFleetRunner(cfg).run();

  ASSERT_EQ(replay.homes.size(), 4u);
  ASSERT_EQ(reconcile.homes.size(), 4u);
  EXPECT_EQ(replay.homes_ok, 4u);
  EXPECT_EQ(reconcile.homes_ok, 4u);
  for (std::size_t i = 0; i < replay.homes.size(); ++i) {
    EXPECT_EQ(replay.homes[i].flow_rows, reconcile.homes[i].flow_rows)
        << "home " << i << " flow tables diverged between resync strategies";
    EXPECT_EQ(replay.homes[i].leases, reconcile.homes[i].leases)
        << "home " << i;
    EXPECT_FALSE(reconcile.homes[i].leases.empty()) << "home " << i;
  }
  // Both recover the restarted homes, the reconciler with strictly fewer
  // re-sent flows (the even homes' tables survive and need zero deltas).
  EXPECT_LT(reconcile.scalar_totals.at("nox.channel.resynced_flows"),
            replay.scalar_totals.at("nox.channel.resynced_flows"));
}

TEST(SharedFleet, FramedChannelsReassembleUnderTinyMtu) {
  // A 5-byte read ceiling means no OpenFlow message ever arrives whole; the
  // framers must reassemble every handshake and packet-in from partials.
  SharedFleetConfig cfg = base_config();
  cfg.homes = 2;
  cfg.channel_mtu = 5;
  const SharedFleetResult r = SharedFleetRunner(cfg).run();

  EXPECT_EQ(r.homes_ok, 2u);
  EXPECT_GT(r.scalar_totals.at("openflow.channel.frames_partial"), 0.0);
  EXPECT_EQ(r.scalar_totals.at("openflow.channel.frames_bad"), 0.0);
}

}  // namespace
}  // namespace hw::fleet
