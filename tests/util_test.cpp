// Unit tests for the util layer: wire codecs, addresses, containers, JSON.
#include <gtest/gtest.h>

#include "util/addr.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/rand.hpp"
#include "util/ring_buffer.hpp"
#include "util/strings.hpp"
#include "util/token_bucket.hpp"

namespace hw {
namespace {

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader

TEST(Bytes, WriteReadRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ull);
  w.fixed_string("hi", 4);
  const Bytes buf = std::move(w).take();
  ASSERT_EQ(buf.size(), 1u + 2 + 4 + 8 + 4);

  ByteReader r(buf);
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0102030405060708ull);
  EXPECT_EQ(r.fixed_string(4).value(), "hi");
  EXPECT_TRUE(r.empty());
}

TEST(Bytes, NetworkByteOrderOnTheWire) {
  ByteWriter w;
  w.u16(0x0102);
  w.u32(0x03040506);
  const Bytes buf = w.bytes();
  EXPECT_EQ(buf[0], 0x01);  // big-endian: MSB first
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[5], 0x06);
}

TEST(Bytes, ShortReadsFailCleanly) {
  Bytes buf{0x01, 0x02};
  ByteReader r(buf);
  EXPECT_TRUE(r.u16().ok());
  EXPECT_FALSE(r.u16().ok());
  EXPECT_FALSE(r.u8().ok());
  EXPECT_FALSE(r.raw(1).ok());
  EXPECT_FALSE(r.skip(1).ok());
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u32(42);
  w.patch_u16(0, 0xbeef);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u16().value(), 0xbeef);
}

TEST(Bytes, FixedStringTruncatesAndPads) {
  ByteWriter w;
  w.fixed_string("abcdef", 4);
  w.fixed_string("x", 4);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.fixed_string(4).value(), "abcd");
  EXPECT_EQ(r.fixed_string(4).value(), "x");  // NUL padding stripped
}

TEST(Bytes, HexDump) {
  Bytes buf{0x00, 0xff, 0x10};
  EXPECT_EQ(hex_dump(buf), "00 ff 10");
  EXPECT_EQ(hex_dump(buf, 2), "00 ff ...");
}

// ---------------------------------------------------------------------------
// Addresses

TEST(MacAddress, ParseAndFormat) {
  auto mac = MacAddress::parse("Aa:bB:cC:01:23:45");
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(mac.value().to_string(), "aa:bb:cc:01:23:45");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").ok());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee").ok());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:f").ok());
  EXPECT_FALSE(MacAddress::parse("aa-bb-cc-dd-ee-ff").ok());
  EXPECT_FALSE(MacAddress::parse("gg:bb:cc:dd:ee:ff").ok());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:ff:00").ok());
}

TEST(MacAddress, Classification) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_TRUE(MacAddress::parse("01:00:5e:00:00:01").value().is_multicast());
  EXPECT_FALSE(MacAddress::from_index(7).is_multicast());
  EXPECT_TRUE(MacAddress::zero().is_zero());
}

TEST(MacAddress, FromIndexIsStableAndUnique) {
  EXPECT_EQ(MacAddress::from_index(1), MacAddress::from_index(1));
  EXPECT_NE(MacAddress::from_index(1), MacAddress::from_index(2));
  EXPECT_EQ(MacAddress::from_index(0x010203).to_string(), "02:00:00:01:02:03");
}

TEST(Ipv4Address, ParseAndFormat) {
  auto ip = Ipv4Address::parse("192.168.1.42");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip.value().to_string(), "192.168.1.42");
  EXPECT_EQ(ip.value(), (Ipv4Address{192, 168, 1, 42}));
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.256").ok());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").ok());
}

TEST(Ipv4Address, SubnetMembership) {
  const Ipv4Subnet subnet{Ipv4Address{192, 168, 1, 0}, 24};
  EXPECT_TRUE(subnet.contains(Ipv4Address{192, 168, 1, 200}));
  EXPECT_FALSE(subnet.contains(Ipv4Address{192, 168, 2, 1}));
  EXPECT_EQ(subnet.mask().to_string(), "255.255.255.0");
  EXPECT_EQ((Ipv4Subnet{Ipv4Address{10, 0, 0, 0}, 8}).mask().to_string(),
            "255.0.0.0");
}

TEST(Ipv4Address, SameSubnetEdgeCases) {
  const Ipv4Address a{192, 168, 1, 1};
  EXPECT_TRUE(a.same_subnet(Ipv4Address{10, 0, 0, 1}, 0));   // /0 matches all
  EXPECT_TRUE(a.same_subnet(a, 32));
  EXPECT_FALSE(a.same_subnet(Ipv4Address{192, 168, 1, 2}, 32));
}

// ---------------------------------------------------------------------------
// RingBuffer

TEST(RingBuffer, FillsThenOverwritesOldest) {
  RingBuffer<int> ring(3);
  EXPECT_FALSE(ring.push(1));
  EXPECT_FALSE(ring.push(2));
  EXPECT_FALSE(ring.push(3));
  EXPECT_TRUE(ring.push(4));  // evicts 1
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.oldest(), 2);
  EXPECT_EQ(ring.newest(), 4);
  EXPECT_EQ(ring.evicted(), 1u);
}

TEST(RingBuffer, IterationOrder) {
  RingBuffer<int> ring(4);
  for (int i = 1; i <= 6; ++i) ring.push(i);
  std::vector<int> fwd;
  ring.for_each([&](int v) {
    fwd.push_back(v);
    return true;
  });
  EXPECT_EQ(fwd, (std::vector<int>{3, 4, 5, 6}));
  std::vector<int> rev;
  ring.for_each_newest_first([&](int v) {
    rev.push_back(v);
    return true;
  });
  EXPECT_EQ(rev, (std::vector<int>{6, 5, 4, 3}));
}

TEST(RingBuffer, EarlyTermination) {
  RingBuffer<int> ring(8);
  for (int i = 0; i < 8; ++i) ring.push(i);
  int count = 0;
  ring.for_each_newest_first([&](int) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST(RingBuffer, ConstantMemory) {
  RingBuffer<int> ring(16);
  for (int i = 0; i < 100000; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 16u);
  EXPECT_EQ(ring.capacity(), 16u);
  EXPECT_EQ(ring.evicted(), 100000u - 16);
  EXPECT_EQ(ring.newest(), 99999);
}

// ---------------------------------------------------------------------------
// Strings

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(split_whitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("aBc"), "ABC");
  EXPECT_TRUE(iequals("SELECT", "select"));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_TRUE(starts_with_i("Content-Length: 4", "content-length"));
}

TEST(Strings, DomainMatches) {
  EXPECT_TRUE(domain_matches("www.facebook.com", "*.facebook.com"));
  EXPECT_TRUE(domain_matches("facebook.com", "*.facebook.com"));
  EXPECT_TRUE(domain_matches("a.b.facebook.com", "*.facebook.com"));
  EXPECT_FALSE(domain_matches("notfacebook.com", "*.facebook.com"));
  EXPECT_FALSE(domain_matches("facebook.com.evil.net", "*.facebook.com"));
  EXPECT_TRUE(domain_matches("Example.COM", "example.com"));
  EXPECT_FALSE(domain_matches("sub.example.com", "example.com"));
}

// ---------------------------------------------------------------------------
// JSON

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null").value().is_null());
  EXPECT_EQ(Json::parse("true").value().as_bool(), true);
  EXPECT_EQ(Json::parse("-12.5").value().as_number(), -12.5);
  EXPECT_EQ(Json::parse("\"hi\\n\"").value().as_string(), "hi\n");
  EXPECT_EQ(Json::parse("1e3").value().as_number(), 1000.0);
}

TEST(Json, ParseNested) {
  auto j = Json::parse(R"({"a": [1, {"b": "c"}], "d": {}})");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value()["a"].as_array().size(), 2u);
  EXPECT_EQ(j.value()["a"].as_array()[1]["b"].as_string(), "c");
  EXPECT_TRUE(j.value()["d"].is_object());
  EXPECT_TRUE(j.value()["missing"].is_null());
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
  EXPECT_FALSE(Json::parse("1 2").ok());
  EXPECT_FALSE(Json::parse("tru").ok());
}

TEST(Json, DumpRoundTrip) {
  Json j(JsonObject{});
  j.set("n", 42);
  j.set("s", "quote\"and\\slash");
  j.set("arr", Json(JsonArray{Json(1), Json(false), Json(nullptr)}));
  const std::string text = j.dump();
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()["n"].as_int(), 42);
  EXPECT_EQ(parsed.value()["s"].as_string(), "quote\"and\\slash");
  EXPECT_EQ(parsed.value()["arr"].as_array().size(), 3u);
}

TEST(Json, IntegersDumpWithoutExponent) {
  Json j(static_cast<std::int64_t>(3955420));
  EXPECT_EQ(j.dump(), "3955420");
}

TEST(Json, UnicodeEscape) {
  auto j = Json::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().as_string(), "A\xc3\xa9");
}

TEST(Json, DeepNestingRejected) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::parse(deep).ok());
}

// ---------------------------------------------------------------------------
// Logging

namespace {
std::vector<std::string>* g_captured = nullptr;
void capture_sink(LogLevel, std::string_view module, std::string_view msg) {
  g_captured->push_back(std::string(module) + ": " + std::string(msg));
}
}  // namespace

TEST(Logging, LevelGateAndSinkCapture) {
  std::vector<std::string> captured;
  g_captured = &captured;
  set_log_sink(&capture_sink);
  const LogLevel before = log_level();

  set_log_level(LogLevel::Warn);
  HW_LOG_DEBUG("mod", "dropped %d", 1);
  HW_LOG_INFO("mod", "also dropped");
  HW_LOG_WARN("mod", "kept %s %d", "arg", 2);
  HW_LOG_ERROR("mod", "kept too");
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "mod: kept arg 2");
  EXPECT_EQ(captured[1], "mod: kept too");

  set_log_level(LogLevel::Off);
  HW_LOG_ERROR("mod", "silenced");
  EXPECT_EQ(captured.size(), 2u);

  set_log_sink(nullptr);
  set_log_level(before);
  g_captured = nullptr;
}

// ---------------------------------------------------------------------------
// TokenBucket

TEST(TokenBucket, BurstThenRateLimits) {
  TokenBucket bucket(1000, 500);  // 1000 B/s, 500 B burst
  EXPECT_TRUE(bucket.try_consume(0, 500));
  EXPECT_FALSE(bucket.try_consume(0, 1));
  // After 100ms, 100 bytes refilled.
  EXPECT_TRUE(bucket.try_consume(100 * kMillisecond, 100));
  EXPECT_FALSE(bucket.try_consume(100 * kMillisecond, 10));
}

TEST(TokenBucket, AvailableAt) {
  TokenBucket bucket(1000, 100);
  ASSERT_TRUE(bucket.try_consume(0, 100));
  const Timestamp when = bucket.available_at(0, 50);
  EXPECT_GE(when, 50 * kMillisecond);
  EXPECT_LE(when, 60 * kMillisecond);
}

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    const auto v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace hw
