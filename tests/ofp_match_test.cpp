// OpenFlow match semantics: wildcard handling, CIDR nw masks, extraction
// from packets, wire round-trips, and a property sweep against a reference
// implementation of field comparison.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/packet.hpp"
#include "openflow/flow_key.hpp"
#include "openflow/match.hpp"
#include "util/rand.hpp"

namespace hw::ofp {
namespace {

const MacAddress kMacA = MacAddress::from_index(1);
const MacAddress kMacB = MacAddress::from_index(2);
const Ipv4Address kIpA{192, 168, 1, 100};
const Ipv4Address kIpB{10, 1, 2, 3};

Match packet_fields(std::uint16_t in_port = 3) {
  Match m;
  m.wildcards = 0;
  m.in_port = in_port;
  m.dl_src = kMacA;
  m.dl_dst = kMacB;
  m.dl_vlan = 0xffff;
  m.dl_type = 0x0800;
  m.nw_proto = 6;
  m.nw_src = kIpA;
  m.nw_dst = kIpB;
  m.tp_src = 40000;
  m.tp_dst = 80;
  return m;
}

TEST(Match, AnyCoversEverything) {
  EXPECT_TRUE(Match::any().covers(packet_fields()));
  Match other = packet_fields();
  other.nw_src = Ipv4Address{8, 8, 8, 8};
  other.in_port = 60000;
  EXPECT_TRUE(Match::any().covers(other));
}

TEST(Match, ExactRequiresAllFieldsEqual) {
  Match rule = packet_fields();
  EXPECT_TRUE(rule.covers(packet_fields()));
  Match pkt = packet_fields();
  pkt.tp_dst = 81;
  EXPECT_FALSE(rule.covers(pkt));
}

TEST(Match, SingleFieldBuilders) {
  Match rule = Match::any();
  rule.with_tp_dst(53);
  Match pkt = packet_fields();
  EXPECT_FALSE(rule.covers(pkt));
  pkt.tp_dst = 53;
  EXPECT_TRUE(rule.covers(pkt));

  Match port_rule = Match::any();
  port_rule.with_in_port(3);
  EXPECT_TRUE(port_rule.covers(packet_fields(3)));
  EXPECT_FALSE(port_rule.covers(packet_fields(4)));
}

TEST(Match, CidrNwMasks) {
  Match rule = Match::any();
  rule.with_nw_dst(Ipv4Address{10, 1, 2, 0}, 24);
  Match pkt = packet_fields();
  pkt.nw_dst = Ipv4Address{10, 1, 2, 200};
  EXPECT_TRUE(rule.covers(pkt));
  pkt.nw_dst = Ipv4Address{10, 1, 3, 200};
  EXPECT_FALSE(rule.covers(pkt));

  // /0 wildcards everything.
  Match any_dst = Match::any();
  any_dst.with_nw_dst(Ipv4Address{1, 2, 3, 4}, 0);
  EXPECT_TRUE(any_dst.covers(packet_fields()));
}

TEST(Match, IgnoredBitsEncoding) {
  Match m = Match::any();
  EXPECT_GE(m.nw_src_ignored_bits(), 32);
  m.with_nw_src(kIpA, 32);
  EXPECT_EQ(m.nw_src_ignored_bits(), 0);
  m.with_nw_src(kIpA, 24);
  EXPECT_EQ(m.nw_src_ignored_bits(), 8);
  m.with_nw_dst(kIpB, 16);
  EXPECT_EQ(m.nw_dst_ignored_bits(), 16);
}

TEST(Match, FromUdpPacket) {
  const Bytes frame = net::build_udp(kMacA, kMacB, kIpA, kIpB, 5000, 53,
                                     Bytes(8, 0));
  auto parsed = net::ParsedPacket::parse(frame);
  ASSERT_TRUE(parsed.ok());
  const Match m = Match::from_packet(parsed.value(), 7);
  EXPECT_TRUE(m.is_exact());
  EXPECT_EQ(m.in_port, 7);
  EXPECT_EQ(m.dl_src, kMacA);
  EXPECT_EQ(m.dl_type, 0x0800);
  EXPECT_EQ(m.nw_proto, 17);
  EXPECT_EQ(m.tp_src, 5000);
  EXPECT_EQ(m.tp_dst, 53);
}

TEST(Match, FromArpPacketUsesNwFields) {
  net::ArpMessage arp;
  arp.op = net::ArpOp::Request;
  arp.sender_mac = kMacA;
  arp.sender_ip = kIpA;
  arp.target_ip = kIpB;
  auto parsed = net::ParsedPacket::parse(net::build_arp(arp));
  ASSERT_TRUE(parsed.ok());
  const Match m = Match::from_packet(parsed.value(), 1);
  EXPECT_EQ(m.dl_type, 0x0806);
  EXPECT_EQ(m.nw_proto, 1);  // ARP opcode
  EXPECT_EQ(m.nw_src, kIpA);
  EXPECT_EQ(m.nw_dst, kIpB);
}

TEST(Match, FromIcmpPacketPutsTypeCodeInPorts) {
  const Bytes frame = net::build_icmp_echo(kMacA, kMacB, kIpA, kIpB,
                                           net::IcmpType::EchoRequest, 1, 2);
  auto parsed = net::ParsedPacket::parse(frame);
  ASSERT_TRUE(parsed.ok());
  const Match m = Match::from_packet(parsed.value(), 1);
  EXPECT_EQ(m.nw_proto, 1);
  EXPECT_EQ(m.tp_src, 8);  // echo request type
  EXPECT_EQ(m.tp_dst, 0);  // code
}

TEST(Match, WireRoundTrip) {
  Match m = Match::any();
  m.with_in_port(4)
      .with_dl_src(kMacA)
      .with_dl_type(0x0800)
      .with_nw_proto(17)
      .with_nw_src(kIpA, 24)
      .with_nw_dst(kIpB, 32)
      .with_tp_dst(53);
  ByteWriter w;
  m.serialize(w);
  EXPECT_EQ(w.size(), kMatchWireSize);
  ByteReader r(w.bytes());
  auto parsed = Match::parse(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().same_pattern(m));
  EXPECT_EQ(parsed.value().wildcards, m.wildcards);
  EXPECT_EQ(parsed.value().nw_src_ignored_bits(), 8);
}

TEST(Match, SamePatternDistinguishesWildcards) {
  Match a = Match::any();
  a.with_tp_dst(80);
  Match b = Match::any();
  b.with_tp_dst(80);
  EXPECT_TRUE(a.same_pattern(b));
  b.with_nw_proto(6);
  EXPECT_FALSE(a.same_pattern(b));
}

TEST(Match, ToStringShowsOnlyConcreteFields) {
  Match m = Match::any();
  EXPECT_EQ(m.to_string(), "{*}");
  m.with_tp_dst(53);
  EXPECT_NE(m.to_string().find("tp_dst=53"), std::string::npos);
  EXPECT_EQ(m.to_string().find("tp_src"), std::string::npos);
}

// Property sweep: covers() agrees with a per-field reference for random
// rules and packets.
class MatchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchProperty, CoversAgreesWithReference) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    // Random packet fields.
    Match pkt;
    pkt.wildcards = 0;
    pkt.in_port = static_cast<std::uint16_t>(rng.uniform(4));
    pkt.dl_src = MacAddress::from_index(static_cast<std::uint32_t>(rng.uniform(3)));
    pkt.dl_dst = MacAddress::from_index(static_cast<std::uint32_t>(rng.uniform(3)));
    pkt.dl_type = rng.chance(0.5) ? 0x0800 : 0x0806;
    pkt.nw_proto = static_cast<std::uint8_t>(rng.uniform(3) * 5 + 6);
    pkt.nw_src = Ipv4Address{static_cast<std::uint32_t>(rng.next())};
    pkt.nw_dst = Ipv4Address{static_cast<std::uint32_t>(rng.next())};
    pkt.tp_src = static_cast<std::uint16_t>(rng.uniform(4));
    pkt.tp_dst = static_cast<std::uint16_t>(rng.uniform(4));

    // Random rule: each field independently wildcarded or copied/perturbed.
    Match rule = Match::any();
    bool expect = true;
    auto pick = [&](auto setter, auto pkt_value, auto other_value) {
      const int choice = static_cast<int>(rng.uniform(3));
      if (choice == 0) return;  // wildcard: always matches
      if (choice == 1) {
        setter(pkt_value);
      } else {
        setter(other_value);
        if (pkt_value != other_value) expect = false;
      }
    };
    pick([&](std::uint16_t v) { rule.with_in_port(v); }, pkt.in_port,
         static_cast<std::uint16_t>(pkt.in_port + 1));
    pick([&](MacAddress v) { rule.with_dl_src(v); }, pkt.dl_src,
         MacAddress::from_index(77));
    pick([&](std::uint16_t v) { rule.with_dl_type(v); }, pkt.dl_type,
         static_cast<std::uint16_t>(0x86dd));
    pick([&](std::uint8_t v) { rule.with_nw_proto(v); }, pkt.nw_proto,
         static_cast<std::uint8_t>(pkt.nw_proto + 1));
    pick([&](std::uint16_t v) { rule.with_tp_dst(v); }, pkt.tp_dst,
         static_cast<std::uint16_t>(pkt.tp_dst + 1));

    // nw_src via a random prefix length.
    const int prefix = static_cast<int>(rng.uniform(33));
    rule.with_nw_src(pkt.nw_src, prefix);  // always matches by construction
    EXPECT_EQ(rule.covers(pkt), expect) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchProperty,
                         ::testing::Values(1, 2, 3, 42, 1337));

// ---------------------------------------------------------------------------
// FlowKey / FlowMask: the packed representation the classifier runs on.

TEST(FlowKey, RoundTripThroughMatch) {
  const Match m = packet_fields();
  const FlowKey key = FlowKey::from_match(m);
  const Match back = key.to_match(0);
  EXPECT_EQ(back.in_port, m.in_port);
  EXPECT_EQ(back.dl_src, m.dl_src);
  EXPECT_EQ(back.dl_dst, m.dl_dst);
  EXPECT_EQ(back.dl_vlan, m.dl_vlan);
  EXPECT_EQ(back.dl_vlan_pcp, m.dl_vlan_pcp);
  EXPECT_EQ(back.dl_type, m.dl_type);
  EXPECT_EQ(back.nw_tos, m.nw_tos);
  EXPECT_EQ(back.nw_proto, m.nw_proto);
  EXPECT_EQ(back.nw_src, m.nw_src);
  EXPECT_EQ(back.nw_dst, m.nw_dst);
  EXPECT_EQ(back.tp_src, m.tp_src);
  EXPECT_EQ(back.tp_dst, m.tp_dst);
  EXPECT_EQ(FlowKey::from_match(back), key);
}

TEST(FlowKey, HashFollowsValue) {
  const FlowKey a = FlowKey::from_match(packet_fields());
  const FlowKey b = FlowKey::from_match(packet_fields());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  Match other = packet_fields();
  other.tp_dst = 81;
  const FlowKey c = FlowKey::from_match(other);
  EXPECT_NE(a, c);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(FlowMask, ApplyZeroesWildcardedFields) {
  Match rule = Match::any();
  rule.with_tp_dst(53);
  const FlowMask mask = FlowMask::from_wildcards(rule.wildcards);

  Match pkt_a = packet_fields();
  pkt_a.tp_dst = 53;
  Match pkt_b = packet_fields(9);  // different in_port: wildcarded
  pkt_b.dl_src = MacAddress::from_index(42);
  pkt_b.tp_dst = 53;
  EXPECT_EQ(apply(mask, FlowKey::from_match(pkt_a)),
            apply(mask, FlowKey::from_match(pkt_b)));

  Match pkt_c = packet_fields();
  pkt_c.tp_dst = 80;  // concrete field differs
  EXPECT_NE(apply(mask, FlowKey::from_match(pkt_a)),
            apply(mask, FlowKey::from_match(pkt_c)));
}

TEST(FlowMask, NwPrefixMasking) {
  Match rule = Match::any();
  rule.with_nw_dst(Ipv4Address{10, 1, 2, 0}, 24);
  const FlowMask mask = FlowMask::from_wildcards(rule.wildcards);
  Match pkt_a = packet_fields();
  pkt_a.nw_dst = Ipv4Address{10, 1, 2, 7};
  Match pkt_b = packet_fields();
  pkt_b.nw_dst = Ipv4Address{10, 1, 2, 250};
  Match pkt_c = packet_fields();
  pkt_c.nw_dst = Ipv4Address{10, 1, 3, 7};
  EXPECT_EQ(apply(mask, FlowKey::from_match(pkt_a)),
            apply(mask, FlowKey::from_match(pkt_b)));
  EXPECT_NE(apply(mask, FlowKey::from_match(pkt_a)),
            apply(mask, FlowKey::from_match(pkt_c)));
}

// Field-by-field reference implementations of the pattern relations, used
// as oracles for the FlowKey/FlowMask-based production code.
bool ref_same_pattern(const Match& a, const Match& b) {
  if (a.wildcards != b.wildcards) return false;
  const auto concrete = [&](std::uint32_t bit) {
    return (a.wildcards & bit) == 0;
  };
  if (concrete(Wildcards::kInPort) && a.in_port != b.in_port) return false;
  if (concrete(Wildcards::kDlVlan) && a.dl_vlan != b.dl_vlan) return false;
  if (concrete(Wildcards::kDlSrc) && !(a.dl_src == b.dl_src)) return false;
  if (concrete(Wildcards::kDlDst) && !(a.dl_dst == b.dl_dst)) return false;
  if (concrete(Wildcards::kDlType) && a.dl_type != b.dl_type) return false;
  if (concrete(Wildcards::kNwProto) && a.nw_proto != b.nw_proto) return false;
  if (concrete(Wildcards::kTpSrc) && a.tp_src != b.tp_src) return false;
  if (concrete(Wildcards::kTpDst) && a.tp_dst != b.tp_dst) return false;
  if (concrete(Wildcards::kDlVlanPcp) && a.dl_vlan_pcp != b.dl_vlan_pcp) {
    return false;
  }
  if (concrete(Wildcards::kNwTos) && a.nw_tos != b.nw_tos) return false;
  const auto prefix_equal = [](std::uint32_t x, std::uint32_t y, int ignored) {
    if (ignored >= 32) return true;
    const std::uint32_t mask = ignored == 0 ? ~0u : ~0u << ignored;
    return (x & mask) == (y & mask);
  };
  if (!prefix_equal(a.nw_src.value(), b.nw_src.value(),
                    a.nw_src_ignored_bits())) {
    return false;
  }
  return prefix_equal(a.nw_dst.value(), b.nw_dst.value(),
                      a.nw_dst_ignored_bits());
}

bool ref_overlaps(const Match& a, const Match& b) {
  const auto both = [&](std::uint32_t bit) {
    return (a.wildcards & bit) == 0 && (b.wildcards & bit) == 0;
  };
  if (both(Wildcards::kInPort) && a.in_port != b.in_port) return false;
  if (both(Wildcards::kDlVlan) && a.dl_vlan != b.dl_vlan) return false;
  if (both(Wildcards::kDlSrc) && !(a.dl_src == b.dl_src)) return false;
  if (both(Wildcards::kDlDst) && !(a.dl_dst == b.dl_dst)) return false;
  if (both(Wildcards::kDlType) && a.dl_type != b.dl_type) return false;
  if (both(Wildcards::kNwProto) && a.nw_proto != b.nw_proto) return false;
  if (both(Wildcards::kTpSrc) && a.tp_src != b.tp_src) return false;
  if (both(Wildcards::kTpDst) && a.tp_dst != b.tp_dst) return false;
  if (both(Wildcards::kDlVlanPcp) && a.dl_vlan_pcp != b.dl_vlan_pcp) {
    return false;
  }
  if (both(Wildcards::kNwTos) && a.nw_tos != b.nw_tos) return false;
  const auto prefixes_agree = [](std::uint32_t x, int ix, std::uint32_t y,
                                 int iy) {
    // Two prefixes intersect iff they agree on the shorter (more ignored
    // bits) of the two masks.
    const int ignored = std::max(ix, iy);
    if (ignored >= 32) return true;
    const std::uint32_t mask = ignored == 0 ? ~0u : ~0u << ignored;
    return (x & mask) == (y & mask);
  };
  if (!prefixes_agree(a.nw_src.value(), a.nw_src_ignored_bits(),
                      b.nw_src.value(), b.nw_src_ignored_bits())) {
    return false;
  }
  return prefixes_agree(a.nw_dst.value(), a.nw_dst_ignored_bits(),
                        b.nw_dst.value(), b.nw_dst_ignored_bits());
}

/// Random rule over small value pools so pattern collisions actually occur.
Match random_match(Rng& rng) {
  Match m = Match::any();
  if (rng.chance(0.5)) {
    m.with_in_port(static_cast<std::uint16_t>(rng.uniform(3)));
  }
  if (rng.chance(0.4)) {
    m.with_dl_src(MacAddress::from_index(static_cast<std::uint32_t>(rng.uniform(3))));
  }
  if (rng.chance(0.4)) {
    m.with_dl_dst(MacAddress::from_index(static_cast<std::uint32_t>(rng.uniform(3))));
  }
  if (rng.chance(0.3)) {
    m.wildcards &= ~Wildcards::kDlVlan;
    m.dl_vlan = static_cast<std::uint16_t>(rng.uniform(3));
  }
  if (rng.chance(0.3)) {
    m.wildcards &= ~Wildcards::kDlVlanPcp;
    m.dl_vlan_pcp = static_cast<std::uint8_t>(rng.uniform(4));
  }
  if (rng.chance(0.5)) m.with_dl_type(rng.chance(0.7) ? 0x0800 : 0x0806);
  if (rng.chance(0.3)) {
    m.wildcards &= ~Wildcards::kNwTos;
    m.nw_tos = static_cast<std::uint8_t>(rng.uniform(3) << 2);
  }
  if (rng.chance(0.4)) {
    m.with_nw_proto(static_cast<std::uint8_t>(rng.chance(0.5) ? 6 : 17));
  }
  if (rng.chance(0.5)) {
    m.with_nw_src(Ipv4Address{static_cast<std::uint32_t>(0x0a000000 +
                                                         rng.uniform(4))},
                  static_cast<int>(rng.uniform(5)) * 8);
  }
  if (rng.chance(0.5)) {
    m.with_nw_dst(Ipv4Address{static_cast<std::uint32_t>(0x0a000000 +
                                                         rng.uniform(4))},
                  static_cast<int>(rng.uniform(5)) * 8);
  }
  if (rng.chance(0.4)) {
    m.with_tp_src(static_cast<std::uint16_t>(rng.uniform(3)));
  }
  if (rng.chance(0.4)) {
    m.with_tp_dst(static_cast<std::uint16_t>(rng.uniform(3) * 100));
  }
  return m;
}

class FlowKeyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowKeyProperty, RelationsAgreeWithFieldReference) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    const Match a = random_match(rng);
    const Match b = random_match(rng);
    EXPECT_EQ(a.same_pattern(b), ref_same_pattern(a, b)) << "iter " << iter;
    EXPECT_EQ(a.overlaps(b), ref_overlaps(a, b)) << "iter " << iter;
    EXPECT_EQ(a.overlaps(b), b.overlaps(a)) << "iter " << iter;
    // A rule survives the FlowKey round trip up to pattern equality
    // (wildcarded fields may hold arbitrary values).
    const Match back = FlowKey::from_match(a).to_match(a.wildcards);
    EXPECT_TRUE(a.same_pattern(back)) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowKeyProperty,
                         ::testing::Values(4, 8, 15, 16, 23));

}  // namespace
}  // namespace hw::ofp
