// The Homework DNS proxy module: interception, policy-gated resolution,
// the per-device name cache, flow verdicts and reverse lookups (paper §2).
#include "router_fixture.hpp"

namespace hw::homework {
namespace {

using testing::RouterFixture;

struct DnsFixture : RouterFixture {
  /// Resolves synchronously in virtual time; empty result = failure.
  std::optional<Ipv4Address> resolve(sim::Host& host, const std::string& name) {
    std::optional<Ipv4Address> out;
    bool done = false;
    host.resolve(name, [&](Result<Ipv4Address> r, const std::string&) {
      if (r.ok()) out = r.value();
      done = true;
    });
    const Timestamp deadline = loop.now() + 5 * kSecond;
    while (!done && loop.now() < deadline) loop.run_for(50 * kMillisecond);
    return out;
  }

  void install_kids_policy(const sim::Host& kid) {
    policy::PolicyDocument p;
    p.id = "kids";
    p.who.macs = {kid.mac().to_string()};
    p.sites.kind = policy::SiteRuleKind::AllowOnly;
    p.sites.domains = {"*.facebook.com"};
    router.policy().install(std::move(p));
  }
};

TEST_F(DnsFixture, ResolvesThroughProxy) {
  sim::Host& host = admitted_device("laptop");
  const auto ip = resolve(host, "www.example.com");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "93.184.216.34");
  EXPECT_EQ(router.dns().stats().queries, 1u);
  EXPECT_EQ(router.dns().stats().forwarded, 1u);
  EXPECT_EQ(router.dns().stats().responses, 1u);
  EXPECT_EQ(router.upstream().stats().dns_queries, 1u);
}

TEST_F(DnsFixture, UnknownNameGetsNxdomain) {
  sim::Host& host = admitted_device("laptop");
  EXPECT_FALSE(resolve(host, "no.such.host").has_value());
  EXPECT_EQ(router.upstream().stats().dns_nxdomain, 1u);
}

TEST_F(DnsFixture, UnpermittedDeviceQueriesDropped) {
  sim::Host& host = make_device("intruder");
  // Give it a forged address so it can even emit a query.
  host.start_dhcp();
  loop.run_for(kSecond);
  EXPECT_FALSE(host.ip().has_value());
  // Queries from unleased devices never reach upstream.
  EXPECT_EQ(router.upstream().stats().dns_queries, 0u);
}

TEST_F(DnsFixture, PolicyBlockedNameRefused) {
  sim::Host& kid = admitted_device("console");
  install_kids_policy(kid);
  EXPECT_FALSE(resolve(kid, "video.netflix.com").has_value());
  EXPECT_TRUE(resolve(kid, "www.facebook.com").has_value());
  EXPECT_EQ(router.dns().stats().blocked, 1u);
  // The refused query never went upstream.
  EXPECT_EQ(router.upstream().stats().dns_queries, 1u);
}

TEST_F(DnsFixture, PolicyDoesNotAffectOtherDevices) {
  sim::Host& kid = admitted_device("console");
  sim::Host& adult = admitted_device("laptop");
  install_kids_policy(kid);
  EXPECT_TRUE(resolve(adult, "video.netflix.com").has_value());
}

TEST_F(DnsFixture, NameCacheFeedsFlowVerdicts) {
  sim::Host& kid = admitted_device("console");
  install_kids_policy(kid);
  ASSERT_TRUE(resolve(kid, "www.facebook.com").has_value());

  // Facebook's address is now cached for the console → Allow.
  EXPECT_EQ(router.dns().check_flow(kid.mac(), Ipv4Address{31, 13, 72, 1}),
            DnsProxy::FlowVerdict::Allow);
  // Netflix's address was never resolved → Unknown (triggers reverse lookup).
  EXPECT_EQ(router.dns().check_flow(kid.mac(), Ipv4Address{45, 57, 3, 1}),
            DnsProxy::FlowVerdict::Unknown);
  const auto names = router.dns().names_for(kid.mac());
  EXPECT_NE(std::find(names.begin(), names.end(), "www.facebook.com"),
            names.end());
}

TEST_F(DnsFixture, UnrestrictedDeviceFlowsAllowed) {
  sim::Host& host = admitted_device("laptop");
  EXPECT_EQ(router.dns().check_flow(host.mac(), Ipv4Address{8, 8, 8, 8}),
            DnsProxy::FlowVerdict::Allow);
}

TEST_F(DnsFixture, ReverseLookupAllowsMatchingDomain) {
  sim::Host& kid = admitted_device("console");
  install_kids_policy(kid);

  // facebook.com's address reverse-resolves to a facebook name → Allow.
  std::optional<DnsProxy::FlowVerdict> verdict;
  router.dns().reverse_lookup(router.controller().datapaths()[0], kid.mac(),
                              Ipv4Address{31, 13, 72, 1},
                              [&](DnsProxy::FlowVerdict v) { verdict = v; });
  loop.run_for(kSecond);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, DnsProxy::FlowVerdict::Allow);
  EXPECT_EQ(router.dns().stats().reverse_lookups, 1u);
  // And the verdict is cached for synchronous reuse.
  EXPECT_EQ(router.dns().check_flow(kid.mac(), Ipv4Address{31, 13, 72, 1}),
            DnsProxy::FlowVerdict::Allow);
}

TEST_F(DnsFixture, ReverseLookupDeniesNonMatchingDomain) {
  sim::Host& kid = admitted_device("console");
  install_kids_policy(kid);
  std::optional<DnsProxy::FlowVerdict> verdict;
  router.dns().reverse_lookup(router.controller().datapaths()[0], kid.mac(),
                              Ipv4Address{45, 57, 3, 1},
                              [&](DnsProxy::FlowVerdict v) { verdict = v; });
  loop.run_for(kSecond);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, DnsProxy::FlowVerdict::Deny);
}

TEST_F(DnsFixture, ReverseLookupTimesOutClosed) {
  sim::Host& kid = admitted_device("console");
  install_kids_policy(kid);
  // An address with no PTR record and no upstream response path: point the
  // lookup at an address the upstream zone does not know → NXDOMAIN → Deny.
  std::optional<DnsProxy::FlowVerdict> verdict;
  router.dns().reverse_lookup(router.controller().datapaths()[0], kid.mac(),
                              Ipv4Address{203, 0, 113, 9},
                              [&](DnsProxy::FlowVerdict v) { verdict = v; });
  loop.run_for(4 * kSecond);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, DnsProxy::FlowVerdict::Deny);
}

TEST_F(DnsFixture, CacheEntriesExpireAfterTtl) {
  sim::Host& kid = admitted_device("console");
  install_kids_policy(kid);
  ASSERT_TRUE(resolve(kid, "www.facebook.com").has_value());
  ASSERT_EQ(router.dns().check_flow(kid.mac(), Ipv4Address{31, 13, 72, 1}),
            DnsProxy::FlowVerdict::Allow);
  // Default cache TTL is 600 s; past it the verdict must revert to Unknown
  // ("flow not matching previously requested names" → reverse lookup).
  loop.run_for(601 * kSecond);
  EXPECT_EQ(router.dns().check_flow(kid.mac(), Ipv4Address{31, 13, 72, 1}),
            DnsProxy::FlowVerdict::Unknown);
}

TEST_F(DnsFixture, FlushCacheForgetsVerdicts) {
  sim::Host& kid = admitted_device("console");
  install_kids_policy(kid);
  ASSERT_TRUE(resolve(kid, "www.facebook.com").has_value());
  ASSERT_EQ(router.dns().check_flow(kid.mac(), Ipv4Address{31, 13, 72, 1}),
            DnsProxy::FlowVerdict::Allow);
  router.dns().flush_cache();
  EXPECT_EQ(router.dns().check_flow(kid.mac(), Ipv4Address{31, 13, 72, 1}),
            DnsProxy::FlowVerdict::Unknown);
}

TEST_F(DnsFixture, PolicyInstallFlushesCacheAutomatically) {
  sim::Host& kid = admitted_device("console");
  ASSERT_TRUE(resolve(kid, "video.netflix.com").has_value());
  // Unrestricted → Allow (no cache needed).
  ASSERT_EQ(router.dns().check_flow(kid.mac(), Ipv4Address{45, 57, 3, 1}),
            DnsProxy::FlowVerdict::Allow);
  // Now restrict: the policy change handler flushes; netflix must no longer
  // be allowed through a stale verdict.
  install_kids_policy(kid);
  EXPECT_NE(router.dns().check_flow(kid.mac(), Ipv4Address{45, 57, 3, 1}),
            DnsProxy::FlowVerdict::Allow);
}

TEST_F(DnsFixture, ConcurrentQueriesFromTwoDevices) {
  sim::Host& a = admitted_device("a");
  sim::Host& b = admitted_device("b");
  std::optional<Ipv4Address> ra, rb;
  a.resolve("www.example.com", [&](Result<Ipv4Address> r, const std::string&) {
    if (r.ok()) ra = r.value();
  });
  b.resolve("www.facebook.com", [&](Result<Ipv4Address> r, const std::string&) {
    if (r.ok()) rb = r.value();
  });
  loop.run_for(2 * kSecond);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(ra->to_string(), "93.184.216.34");
  EXPECT_EQ(rb->to_string(), "31.13.72.1");
}

}  // namespace
}  // namespace hw::homework
