// Packet codec tests: every layer must round-trip through its wire format,
// since the router's modules parse exactly what hosts serialize.
#include <gtest/gtest.h>

#include "net/app_map.hpp"
#include "net/checksum.hpp"
#include "net/dhcp.hpp"
#include "net/dns.hpp"
#include "net/packet.hpp"
#include "util/rand.hpp"

namespace hw::net {
namespace {

const MacAddress kMacA = MacAddress::from_index(1);
const MacAddress kMacB = MacAddress::from_index(2);
const Ipv4Address kIpA{192, 168, 1, 100};
const Ipv4Address kIpB{10, 0, 0, 1};

// ---------------------------------------------------------------------------
// Checksums

TEST(Checksum, Rfc1071Example) {
  // Canonical example: checksum of this sequence is 0xddf2 (RFC 1071 §3).
  Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);  // ~0xddf2
}

TEST(Checksum, OddLength) {
  Bytes data{0x01, 0x02, 0x03};
  // Manual: 0x0102 + 0x0300 = 0x0402 → ~ = 0xfbfd
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(Checksum, Ipv4HeaderVerifies) {
  Ipv4Header h;
  h.src = kIpA;
  h.dst = kIpB;
  h.protocol = 17;
  ByteWriter w;
  h.serialize(w, 100);
  // A correct header checksums to zero over its own bytes.
  EXPECT_EQ(internet_checksum(w.bytes()), 0);
}

// ---------------------------------------------------------------------------
// Layer round-trips

TEST(Ethernet, RoundTrip) {
  ByteWriter w;
  EthernetHeader{kMacB, kMacA, 0x0800}.serialize(w);
  ByteReader r(w.bytes());
  auto h = EthernetHeader::parse(r);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().dst, kMacB);
  EXPECT_EQ(h.value().src, kMacA);
  EXPECT_EQ(h.value().type(), EtherType::Ipv4);
}

TEST(Arp, RoundTrip) {
  ArpMessage m;
  m.op = ArpOp::Reply;
  m.sender_mac = kMacA;
  m.sender_ip = kIpA;
  m.target_mac = kMacB;
  m.target_ip = kIpB;
  ByteWriter w;
  m.serialize(w);
  ByteReader r(w.bytes());
  auto parsed = ArpMessage::parse(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().op, ArpOp::Reply);
  EXPECT_EQ(parsed.value().sender_ip, kIpA);
  EXPECT_EQ(parsed.value().target_mac, kMacB);
}

TEST(Arp, RejectsNonEthernetIpv4) {
  ByteWriter w;
  w.u16(2);  // wrong hardware type
  w.u16(0x0800);
  w.u8(6);
  w.u8(4);
  w.u16(1);
  w.zeros(20);
  ByteReader r(w.bytes());
  EXPECT_FALSE(ArpMessage::parse(r).ok());
}

TEST(Ipv4, RoundTrip) {
  Ipv4Header h;
  h.src = kIpA;
  h.dst = kIpB;
  h.ttl = 7;
  h.protocol = 6;
  h.dscp = 0x20;
  ByteWriter w;
  h.serialize(w, 42);
  ByteReader r(w.bytes());
  auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().src, kIpA);
  EXPECT_EQ(parsed.value().dst, kIpB);
  EXPECT_EQ(parsed.value().ttl, 7);
  EXPECT_EQ(parsed.value().protocol, 6);
  EXPECT_EQ(parsed.value().total_length, kIpv4MinHeaderSize + 42);
}

TEST(Ipv4, RejectsBadVersion) {
  ByteWriter w;
  w.u8(0x55);  // version 5
  w.zeros(19);
  ByteReader r(w.bytes());
  EXPECT_FALSE(Ipv4Header::parse(r).ok());
}

TEST(Udp, RoundTrip) {
  UdpHeader h{5353, 53, 0};
  ByteWriter w;
  h.serialize(w, 10);
  ByteReader r(w.bytes());
  auto parsed = UdpHeader::parse(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().src_port, 5353);
  EXPECT_EQ(parsed.value().dst_port, 53);
  EXPECT_EQ(parsed.value().length, kUdpHeaderSize + 10);
}

TEST(Tcp, RoundTripWithFlags) {
  TcpHeader h;
  h.src_port = 40000;
  h.dst_port = 443;
  h.seq = 12345;
  h.ack = 67890;
  h.flags = TcpFlags::kSyn | TcpFlags::kAck;
  ByteWriter w;
  h.serialize(w);
  ByteReader r(w.bytes());
  auto parsed = TcpHeader::parse(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().syn());
  EXPECT_TRUE(parsed.value().ack_set());
  EXPECT_FALSE(parsed.value().fin());
  EXPECT_EQ(parsed.value().seq, 12345u);
}

TEST(Icmp, RoundTrip) {
  IcmpHeader h{IcmpType::EchoRequest, 0, 77, 3};
  ByteWriter w;
  h.serialize(w);
  ByteReader r(w.bytes());
  auto parsed = IcmpHeader::parse(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().type, IcmpType::EchoRequest);
  EXPECT_EQ(parsed.value().identifier, 77);
  EXPECT_EQ(parsed.value().sequence, 3);
}

// ---------------------------------------------------------------------------
// DNS codec

TEST(Dns, QueryRoundTrip) {
  auto q = DnsMessage::query(0x1234, "WWW.Example.COM");
  const Bytes wire = q.serialize();
  auto parsed = DnsMessage::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 0x1234);
  EXPECT_FALSE(parsed.value().is_response);
  ASSERT_EQ(parsed.value().questions.size(), 1u);
  EXPECT_EQ(parsed.value().questions[0].name, "www.example.com");  // lowered
  EXPECT_EQ(parsed.value().questions[0].qtype, DnsType::A);
}

TEST(Dns, ResponseWithAnswersRoundTrip) {
  auto q = DnsMessage::query(7, "a.example.com");
  auto resp = q.make_response();
  resp.answers.push_back(DnsRecord::a("a.example.com", kIpB, 60));
  resp.answers.push_back(DnsRecord::cname("a.example.com", "b.example.com"));
  const Bytes wire = resp.serialize();
  auto parsed = DnsMessage::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().is_response);
  ASSERT_EQ(parsed.value().answers.size(), 2u);
  EXPECT_EQ(parsed.value().answers[0].address, kIpB);
  EXPECT_EQ(parsed.value().answers[0].ttl, 60u);
  EXPECT_EQ(parsed.value().answers[1].target, "b.example.com");
}

TEST(Dns, PtrRoundTripAndReverseName) {
  EXPECT_EQ(DnsMessage::reverse_name(Ipv4Address{192, 0, 2, 1}),
            "1.2.0.192.in-addr.arpa");
  auto q = DnsMessage::query(9, DnsMessage::reverse_name(kIpB), DnsType::Ptr);
  auto resp = q.make_response();
  resp.answers.push_back(
      DnsRecord::ptr(q.questions[0].name, "server.example.com"));
  auto parsed = DnsMessage::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().answers[0].target, "server.example.com");
}

TEST(Dns, CompressedNamesParse) {
  // Hand-built response with a compression pointer: answer name points back
  // to the question name at offset 12.
  ByteWriter w;
  w.u16(1);       // id
  w.u16(0x8180);  // response, RD, RA
  w.u16(1);       // qd
  w.u16(1);       // an
  w.u16(0);
  w.u16(0);
  // question: example.com A IN
  w.u8(7);
  w.raw("example", 7);
  w.u8(3);
  w.raw("com", 3);
  w.u8(0);
  w.u16(1);
  w.u16(1);
  // answer: pointer to offset 12, A IN ttl=5 rdata 10.0.0.1
  w.u8(0xc0);
  w.u8(12);
  w.u16(1);
  w.u16(1);
  w.u32(5);
  w.u16(4);
  w.u32(Ipv4Address{10, 0, 0, 1}.value());

  auto parsed = DnsMessage::parse(w.bytes());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().answers.size(), 1u);
  EXPECT_EQ(parsed.value().answers[0].name, "example.com");
  EXPECT_EQ(parsed.value().answers[0].address, (Ipv4Address{10, 0, 0, 1}));
}

TEST(Dns, PointerLoopRejected) {
  ByteWriter w;
  w.u16(1);
  w.u16(0);
  w.u16(1);
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u8(0xc0);  // name: pointer to itself
  w.u8(12);
  w.u16(1);
  w.u16(1);
  EXPECT_FALSE(DnsMessage::parse(w.bytes()).ok());
}

TEST(Dns, TruncatedRejected) {
  auto q = DnsMessage::query(1, "x.test");
  Bytes wire = q.serialize();
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(DnsMessage::parse(wire).ok());
}

TEST(Dns, ImplausibleCountsRejected) {
  ByteWriter w;
  w.u16(1);
  w.u16(0);
  w.u16(40000);  // 40k questions
  w.u16(0);
  w.u16(0);
  w.u16(0);
  EXPECT_FALSE(DnsMessage::parse(w.bytes()).ok());
}

// ---------------------------------------------------------------------------
// DHCP codec

TEST(Dhcp, DiscoverRoundTrip) {
  auto m = DhcpMessage::discover(0xcafe, kMacA, "toms-laptop");
  auto parsed = DhcpMessage::parse(m.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().message_type, DhcpMessageType::Discover);
  EXPECT_EQ(parsed.value().xid, 0xcafeu);
  EXPECT_EQ(parsed.value().chaddr, kMacA);
  EXPECT_EQ(parsed.value().hostname, "toms-laptop");
  EXPECT_TRUE(parsed.value().is_request);
  EXPECT_TRUE(parsed.value().broadcast_flag);
}

TEST(Dhcp, AckWithOptionsRoundTrip) {
  DhcpMessage m;
  m.is_request = false;
  m.xid = 1;
  m.chaddr = kMacB;
  m.message_type = DhcpMessageType::Ack;
  m.yiaddr = kIpA;
  m.server_identifier = Ipv4Address{192, 168, 1, 1};
  m.lease_time_secs = 3600;
  m.subnet_mask = Ipv4Address{0xffffffffu};
  m.router = Ipv4Address{192, 168, 1, 1};
  m.dns_servers = {Ipv4Address{192, 168, 1, 1}, Ipv4Address{8, 8, 8, 8}};
  auto parsed = DhcpMessage::parse(m.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().message_type, DhcpMessageType::Ack);
  EXPECT_EQ(parsed.value().yiaddr, kIpA);
  EXPECT_EQ(parsed.value().subnet_mask->to_string(), "255.255.255.255");
  ASSERT_EQ(parsed.value().dns_servers.size(), 2u);
  EXPECT_EQ(parsed.value().dns_servers[1], (Ipv4Address{8, 8, 8, 8}));
  EXPECT_EQ(*parsed.value().lease_time_secs, 3600u);
}

TEST(Dhcp, MissingMessageTypeRejected) {
  auto m = DhcpMessage::discover(5, kMacA);
  Bytes wire = m.serialize();
  // Overwrite the message-type option (code 53 right after the cookie at 240).
  ASSERT_EQ(wire[240], 53);
  wire[240] = 0;  // pad
  wire[241] = 0;
  wire[242] = 0;
  EXPECT_FALSE(DhcpMessage::parse(wire).ok());
}

TEST(Dhcp, BadCookieRejected) {
  auto m = DhcpMessage::discover(5, kMacA);
  Bytes wire = m.serialize();
  wire[236] = 0;  // clobber magic cookie
  EXPECT_FALSE(DhcpMessage::parse(wire).ok());
}

TEST(Dhcp, TruncatedRejected) {
  auto m = DhcpMessage::discover(5, kMacA);
  Bytes wire = m.serialize();
  wire.resize(200);
  EXPECT_FALSE(DhcpMessage::parse(wire).ok());
}

// ---------------------------------------------------------------------------
// Whole-frame construction / dissection

TEST(Packet, UdpFrameDissects) {
  Bytes payload(32, 0x55);
  const Bytes frame = build_udp(kMacA, kMacB, kIpA, kIpB, 1111, 2222, payload);
  auto p = ParsedPacket::parse(frame);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().eth.src, kMacA);
  ASSERT_TRUE(p.value().ip.has_value());
  ASSERT_TRUE(p.value().udp.has_value());
  EXPECT_EQ(p.value().udp->src_port, 1111);
  EXPECT_EQ(p.value().l4_payload.size(), 32u);
  auto tuple = p.value().five_tuple();
  ASSERT_TRUE(tuple.has_value());
  EXPECT_EQ(tuple->protocol, 17);
  EXPECT_EQ(tuple->dst_port, 2222);
  EXPECT_EQ(tuple->reversed().src_port, 2222);
}

TEST(Packet, TcpFrameDissects) {
  TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kPsh | TcpFlags::kAck;
  const Bytes frame = build_tcp(kMacA, kMacB, kIpA, kIpB, tcp, Bytes(10, 1));
  auto p = ParsedPacket::parse(frame);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p.value().tcp.has_value());
  EXPECT_EQ(p.value().l4_payload.size(), 10u);
  EXPECT_FALSE(p.value().is_dns());
  EXPECT_FALSE(p.value().is_dhcp());
}

TEST(Packet, DhcpAndDnsClassifiers) {
  const Bytes dhcp_frame =
      build_dhcp_frame(kMacA, MacAddress::broadcast(), Ipv4Address::any(),
                       Ipv4Address::broadcast(), true,
                       DhcpMessage::discover(1, kMacA).serialize());
  auto p = ParsedPacket::parse(dhcp_frame);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().is_dhcp());

  const Bytes dns_frame = build_udp(kMacA, kMacB, kIpA, kIpB, 5000, 53,
                                    DnsMessage::query(1, "x.com").serialize());
  auto d = ParsedPacket::parse(dns_frame);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().is_dns());
}

TEST(Packet, ArpFrameDissects) {
  ArpMessage arp;
  arp.op = ArpOp::Request;
  arp.sender_mac = kMacA;
  arp.sender_ip = kIpA;
  arp.target_ip = kIpB;
  auto p = ParsedPacket::parse(build_arp(arp));
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p.value().arp.has_value());
  EXPECT_TRUE(p.value().eth.dst.is_broadcast());
  EXPECT_FALSE(p.value().five_tuple().has_value());
}

TEST(Packet, GarbageRejected) {
  Bytes garbage{1, 2, 3};
  EXPECT_FALSE(ParsedPacket::parse(garbage).ok());
}

TEST(Packet, UnknownEtherTypeKeepsEthernetOnly) {
  const Bytes frame = build_ethernet(kMacA, kMacB, static_cast<EtherType>(0x88cc),
                                     Bytes{1, 2, 3});
  auto p = ParsedPacket::parse(frame);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p.value().ip.has_value());
  EXPECT_FALSE(p.value().arp.has_value());
}

// Property-style sweep: UDP frames round-trip for many port/size combos.
class UdpRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UdpRoundTrip, FiveTupleSurvives) {
  const auto [port, size] = GetParam();
  const Bytes frame =
      build_udp(kMacA, kMacB, kIpA, kIpB, static_cast<std::uint16_t>(port),
                static_cast<std::uint16_t>(65535 - port),
                Bytes(static_cast<std::size_t>(size), 0x7e));
  auto p = ParsedPacket::parse(frame);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().udp->src_port, port);
  EXPECT_EQ(p.value().udp->dst_port, 65535 - port);
  EXPECT_EQ(p.value().l4_payload.size(), static_cast<std::size_t>(size));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UdpRoundTrip,
    ::testing::Combine(::testing::Values(1, 53, 80, 5060, 32000, 65534),
                       ::testing::Values(0, 1, 64, 512, 1400)));

// ---------------------------------------------------------------------------
// Application mapping ("imperfect application–protocol mapping")

TEST(AppMap, KnownPorts) {
  auto t = [](std::uint8_t proto, std::uint16_t sport, std::uint16_t dport) {
    FiveTuple tuple;
    tuple.protocol = proto;
    tuple.src_port = sport;
    tuple.dst_port = dport;
    return classify_app(tuple);
  };
  EXPECT_EQ(t(6, 40000, 80), AppProtocol::Web);
  EXPECT_EQ(t(6, 443, 40000), AppProtocol::WebSecure);  // either direction
  EXPECT_EQ(t(17, 5000, 53), AppProtocol::Dns);
  EXPECT_EQ(t(17, 68, 67), AppProtocol::Dhcp);
  EXPECT_EQ(t(6, 40000, 993), AppProtocol::Email);
  EXPECT_EQ(t(6, 40000, 1935), AppProtocol::Streaming);
  EXPECT_EQ(t(17, 40000, 5060), AppProtocol::VoIP);
  EXPECT_EQ(t(17, 40000, 3074), AppProtocol::Gaming);
  EXPECT_EQ(t(6, 40000, 6881), AppProtocol::FileShare);
  EXPECT_EQ(t(1, 0, 0), AppProtocol::Icmp);
  EXPECT_EQ(t(6, 40000, 12345), AppProtocol::Other);
}

TEST(AppMap, NamesAreStable) {
  EXPECT_EQ(app_protocol_name(AppProtocol::Web), "web");
  EXPECT_EQ(app_protocol_name(AppProtocol::WebSecure), "web-tls");
  EXPECT_EQ(app_protocol_name(AppProtocol::Streaming), "streaming");
  EXPECT_EQ(app_protocol_name(AppProtocol::Other), "other");
}

}  // namespace
}  // namespace hw::net
