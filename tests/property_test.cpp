// Property-based suites: randomized operation sequences checked against
// simple reference models.
//
//  * FlowTable vs a brute-force reference (add/modify/delete/lookup/expire)
//  * hwdb window algebra (ROWS/RANGE/SINCE consistency on random streams)
//  * DHCP server invariants under random client behaviour
//  * OpenFlow envelope round-trips for randomized flow-mods
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <set>

#include "hwdb/database.hpp"
#include "hwdb/udp_transport.hpp"
#include "openflow/flow_table.hpp"
#include "router_fixture.hpp"
#include "util/rand.hpp"

namespace hw {
namespace {

// ---------------------------------------------------------------------------
// FlowTable vs reference model

/// Straight-line reference implementation of OpenFlow table semantics:
/// a list of entries, linear scans everywhere.
class ReferenceTable {
 public:
  struct Entry {
    ofp::Match match;
    std::uint16_t priority;
    ofp::ActionList actions;
    Timestamp install_time;
    Timestamp last_used;
    std::uint16_t idle_timeout;
    std::uint16_t hard_timeout;
    std::uint64_t packets = 0;
  };

  void apply(const ofp::FlowMod& mod, Timestamp now) {
    switch (mod.command) {
      case ofp::FlowModCommand::Add: {
        for (auto& e : entries_) {
          if (e.priority == mod.priority && e.match.same_pattern(mod.match)) {
            e.actions = mod.actions;
            e.idle_timeout = mod.idle_timeout;
            e.hard_timeout = mod.hard_timeout;
            e.install_time = now;
            e.last_used = now;
            e.packets = 0;
            return;
          }
        }
        entries_.push_back(Entry{mod.match, mod.priority, mod.actions, now, now,
                                 mod.idle_timeout, mod.hard_timeout, 0});
        break;
      }
      case ofp::FlowModCommand::Modify:
      case ofp::FlowModCommand::ModifyStrict: {
        const bool strict = mod.command == ofp::FlowModCommand::ModifyStrict;
        bool any = false;
        for (auto& e : entries_) {
          const bool hit = strict ? (e.priority == mod.priority &&
                                     e.match.same_pattern(mod.match))
                                  : mod.match.covers(e.match);
          if (hit) {
            e.actions = mod.actions;
            any = true;
          }
        }
        if (!any) {
          // Per spec, MODIFY with no match behaves like ADD.
          ofp::FlowMod add = mod;
          add.command = ofp::FlowModCommand::Add;
          apply(add, now);
        }
        break;
      }
      case ofp::FlowModCommand::Delete: {
        entries_.remove_if(
            [&](const Entry& e) { return mod.match.covers(e.match); });
        break;
      }
      case ofp::FlowModCommand::DeleteStrict: {
        entries_.remove_if([&](const Entry& e) {
          return e.priority == mod.priority && e.match.same_pattern(mod.match);
        });
        break;
      }
      default:
        break;
    }
  }

  /// Highest priority wins; FIFO among equal priorities (insertion order).
  Entry* lookup(const ofp::Match& pkt, Timestamp now) {
    Entry* best = nullptr;
    for (auto& e : entries_) {
      if (!e.match.covers(pkt)) continue;
      if (best == nullptr || e.priority > best->priority) best = &e;
    }
    if (best != nullptr) {
      best->last_used = now;
      ++best->packets;
    }
    return best;
  }

  std::size_t expire(Timestamp now) {
    const std::size_t before = entries_.size();
    entries_.remove_if([&](const Entry& e) {
      if (e.hard_timeout != 0 &&
          now >= e.install_time + static_cast<Duration>(e.hard_timeout) * kSecond) {
        return true;
      }
      return e.idle_timeout != 0 &&
             now >= e.last_used + static_cast<Duration>(e.idle_timeout) * kSecond;
    });
    return before - entries_.size();
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::list<Entry> entries_;
};

ofp::Match random_rule(Rng& rng) {
  ofp::Match m = ofp::Match::any();
  if (rng.chance(0.5)) m.with_in_port(static_cast<std::uint16_t>(rng.uniform(3)));
  if (rng.chance(0.5)) m.with_dl_type(rng.chance(0.8) ? 0x0800 : 0x0806);
  if (rng.chance(0.4)) {
    m.with_nw_proto(static_cast<std::uint8_t>(rng.chance(0.5) ? 6 : 17));
  }
  if (rng.chance(0.4)) {
    m.with_nw_src(Ipv4Address{static_cast<std::uint32_t>(0x0a000000 + rng.uniform(4))},
                  static_cast<int>(rng.uniform(3)) * 8 + 16);
  }
  if (rng.chance(0.4)) {
    m.with_tp_dst(static_cast<std::uint16_t>(rng.uniform(4) * 100));
  }
  return m;
}

ofp::Match random_packet(Rng& rng) {
  ofp::Match m;
  m.wildcards = 0;
  m.in_port = static_cast<std::uint16_t>(rng.uniform(3));
  m.dl_src = MacAddress::from_index(static_cast<std::uint32_t>(rng.uniform(4)));
  m.dl_dst = MacAddress::from_index(static_cast<std::uint32_t>(rng.uniform(4)));
  m.dl_vlan = 0xffff;
  m.dl_type = rng.chance(0.8) ? 0x0800 : 0x0806;
  m.nw_proto = static_cast<std::uint8_t>(rng.chance(0.5) ? 6 : 17);
  m.nw_src = Ipv4Address{static_cast<std::uint32_t>(0x0a000000 + rng.uniform(4) +
                                                    (rng.uniform(3) << 16))};
  m.nw_dst = Ipv4Address{static_cast<std::uint32_t>(rng.next())};
  m.tp_src = static_cast<std::uint16_t>(rng.uniform(4));
  m.tp_dst = static_cast<std::uint16_t>(rng.uniform(4) * 100);
  return m;
}

void run_flow_table_differential(std::uint64_t seed, int steps) {
  Rng rng(seed);
  ofp::FlowTable table;
  ReferenceTable reference;
  Timestamp now = 0;

  for (int step = 0; step < steps; ++step) {
    now += rng.uniform(kSecond);
    const double dice = rng.uniform01();
    if (dice < 0.30) {
      ofp::FlowMod mod;
      mod.command = ofp::FlowModCommand::Add;
      mod.match = random_rule(rng);
      mod.priority = static_cast<std::uint16_t>(rng.uniform(4) * 100);
      mod.actions = ofp::output_to(static_cast<std::uint16_t>(rng.uniform(4) + 1));
      if (rng.chance(0.3)) mod.idle_timeout = 5;
      if (rng.chance(0.2)) mod.hard_timeout = 20;
      table.apply(mod, now);
      reference.apply(mod, now);
    } else if (dice < 0.40) {
      ofp::FlowMod mod;
      mod.command = rng.chance(0.5) ? ofp::FlowModCommand::Modify
                                    : ofp::FlowModCommand::ModifyStrict;
      mod.match = random_rule(rng);
      mod.priority = static_cast<std::uint16_t>(rng.uniform(4) * 100);
      mod.actions = ofp::output_to(static_cast<std::uint16_t>(rng.uniform(4) + 1));
      if (rng.chance(0.3)) mod.idle_timeout = 5;
      table.apply(mod, now);
      reference.apply(mod, now);
    } else if (dice < 0.50) {
      ofp::FlowMod del;
      del.command = rng.chance(0.5) ? ofp::FlowModCommand::Delete
                                    : ofp::FlowModCommand::DeleteStrict;
      del.match = random_rule(rng);
      del.priority = static_cast<std::uint16_t>(rng.uniform(4) * 100);
      table.apply(del, now);
      reference.apply(del, now);
    } else if (dice < 0.60) {
      ASSERT_EQ(table.expire(now).size(), reference.expire(now))
          << "step " << step;
    } else {
      const ofp::Match pkt = random_packet(rng);
      // peek is read-only and must agree with the lookup that follows it.
      const ofp::FlowEntry* peeked = table.peek(pkt);
      ofp::FlowEntry* got = table.lookup(pkt, now, 64);
      ReferenceTable::Entry* want = reference.lookup(pkt, now);
      ASSERT_EQ(got != nullptr, want != nullptr) << "step " << step;
      EXPECT_EQ(peeked, got) << "step " << step;
      if (got != nullptr) {
        // Ties resolve to the earliest-installed entry in both models, so
        // the comparison can be by identity: same priority, same actions,
        // same per-entry counters.
        EXPECT_EQ(got->priority, want->priority) << "step " << step;
        EXPECT_EQ(got->actions, want->actions) << "step " << step;
        EXPECT_EQ(got->packet_count, want->packets) << "step " << step;
      }
    }
    ASSERT_EQ(table.size(), reference.size()) << "step " << step;
  }
}

class FlowTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableProperty, AgreesWithReferenceModel) {
  run_flow_table_differential(GetParam(), 2000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableProperty,
                         ::testing::Values(1, 7, 42, 99, 12345));

class FlowTableDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableDifferential, TenThousandRandomOps) {
  run_flow_table_differential(GetParam() * 977 + 13, 10000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableDifferential,
                         ::testing::Values(2, 31));

// ---------------------------------------------------------------------------
// hwdb window algebra on random streams

class HwdbWindowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HwdbWindowProperty, WindowsAreConsistentSlices) {
  Rng rng(GetParam());
  sim::EventLoop loop;
  hwdb::Database db(loop);
  ASSERT_TRUE(db.create_table(hwdb::Schema("S", {{"v", hwdb::ColumnType::Int}}),
                              256)
                  .ok());
  for (int i = 0; i < 300; ++i) {
    loop.run_for(rng.uniform(500 * kMillisecond) + 1);
    ASSERT_TRUE(db.insert("S", {hwdb::Value{i}}).ok());
  }

  const auto all = db.query("SELECT ts, v FROM S").value();
  // ROWS n == the last n rows of the full scan.
  for (const std::uint64_t n : {1u, 10u, 77u, 256u, 1000u}) {
    const auto rows =
        db.query("SELECT ts, v FROM S [ROWS " + std::to_string(n) + "]").value();
    const std::size_t expect = std::min<std::size_t>(n, all.rows.size());
    ASSERT_EQ(rows.rows.size(), expect);
    for (std::size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(rows.rows[i][1].as_int(),
                all.rows[all.rows.size() - expect + i][1].as_int());
    }
  }
  // RANGE w == SINCE (now - w).
  for (const std::uint64_t w : {1u, 5u, 30u}) {
    const Timestamp cut =
        loop.now() >= w * kSecond ? loop.now() - w * kSecond : 0;
    const auto range =
        db.query("SELECT v FROM S [RANGE " + std::to_string(w) + " SECONDS]")
            .value();
    const auto since =
        db.query("SELECT v FROM S [SINCE " + std::to_string(cut) + "]").value();
    ASSERT_EQ(range.rows.size(), since.rows.size()) << "w=" << w;
  }
  // Aggregates agree with manual reduction over the same window.
  const auto agg =
      db.query("SELECT sum(v), count(*), min(v), max(v) FROM S [ROWS 50] "
               "GROUP BY ts")
          .value();
  (void)agg;  // grouped by ts: one row per distinct timestamp — just not empty
  const auto sum_all =
      db.query("SELECT count(*) FROM S GROUP BY v").value();
  EXPECT_EQ(sum_all.rows.size(), std::min<std::size_t>(300, 256));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwdbWindowProperty, ::testing::Values(3, 17, 2025));

// ---------------------------------------------------------------------------
// DHCP server invariants under random client behaviour

class DhcpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DhcpProperty, NoDoubleAllocationEver) {
  homework::HomeworkRouter::Config config;
  config.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  config.pool_start = Ipv4Address{192, 168, 1, 100};
  config.pool_end = Ipv4Address{192, 168, 1, 107};  // 8 addresses, 6 devices

  sim::EventLoop loop;
  Rng rng(GetParam());
  homework::HomeworkRouter router(loop, rng, config);
  router.start();

  std::vector<std::unique_ptr<sim::Host>> hosts;
  for (std::uint32_t i = 0; i < 6; ++i) {
    sim::Host::Config hc;
    hc.name = "d" + std::to_string(i);
    hc.mac = MacAddress::from_index(i + 1);
    hosts.push_back(std::make_unique<sim::Host>(loop, hc, rng));
    router.attach_device(*hosts.back(), std::nullopt);
  }

  // Random chaos: devices join, release, rejoin, get denied/re-permitted.
  for (int step = 0; step < 200; ++step) {
    auto& host = *hosts[rng.uniform(hosts.size())];
    switch (rng.uniform(4)) {
      case 0:
        host.start_dhcp();
        break;
      case 1:
        host.release_dhcp();
        break;
      case 2:
        router.registry().set_state(host.mac(), homework::DeviceState::Denied,
                                    loop.now());
        break;
      default:
        router.registry().set_state(host.mac(),
                                    homework::DeviceState::Permitted,
                                    loop.now());
        break;
    }
    loop.run_for(rng.uniform(2 * kSecond) + 100 * kMillisecond);

    // Invariant 1: no two bound hosts share an address.
    std::set<std::uint32_t> bound;
    for (const auto& h : hosts) {
      if (h->ip()) {
        EXPECT_TRUE(bound.insert(h->ip()->value()).second)
            << "duplicate address at step " << step;
      }
    }
    // Invariant 2: every bound address is inside the pool.
    for (const auto& h : hosts) {
      if (h->ip()) {
        EXPECT_GE(h->ip()->value(), config.pool_start.value());
        EXPECT_LE(h->ip()->value(), config.pool_end.value());
      }
    }
    // Invariant 3: denied devices never hold a *registry* lease for long —
    // their flows get revoked and the next DHCP exchange NAKs. (The client
    // may still believe in its address until then; the router is the
    // authority we check.)
    for (const auto& h : hosts) {
      const auto* rec = router.registry().find(h->mac());
      if (rec != nullptr && rec->state == homework::DeviceState::Denied) {
        // Lease record may persist until expiry, but no *new* leases appear:
        // enforced by the NAK counters rising; cheap structural check here:
        if (rec->lease) {
          EXPECT_LE(rec->lease->granted_at, loop.now());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DhcpProperty, ::testing::Values(11, 222, 3333));

// ---------------------------------------------------------------------------
// OpenFlow randomized codec round-trips

class OfpCodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfpCodecProperty, RandomFlowModsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    ofp::FlowMod mod;
    mod.match = random_rule(rng);
    mod.cookie = rng.next();
    mod.command = static_cast<ofp::FlowModCommand>(rng.uniform(5));
    mod.idle_timeout = static_cast<std::uint16_t>(rng.uniform(600));
    mod.hard_timeout = static_cast<std::uint16_t>(rng.uniform(600));
    mod.priority = static_cast<std::uint16_t>(rng.uniform(65536));
    mod.buffer_id = static_cast<std::uint32_t>(rng.next());
    mod.out_port = static_cast<std::uint16_t>(rng.uniform(65536));
    mod.flags = static_cast<std::uint16_t>(rng.uniform(4));
    const int n_actions = static_cast<int>(rng.uniform(4));
    for (int a = 0; a < n_actions; ++a) {
      switch (rng.uniform(5)) {
        case 0:
          mod.actions.push_back(
              ofp::ActionOutput{static_cast<std::uint16_t>(rng.uniform(65536)),
                                static_cast<std::uint16_t>(rng.uniform(2048))});
          break;
        case 1:
          mod.actions.push_back(ofp::ActionSetDlSrc{
              MacAddress::from_index(static_cast<std::uint32_t>(rng.next()))});
          break;
        case 2:
          mod.actions.push_back(ofp::ActionSetNwDst{
              Ipv4Address{static_cast<std::uint32_t>(rng.next())}});
          break;
        case 3:
          mod.actions.push_back(ofp::ActionSetTpDst{
              static_cast<std::uint16_t>(rng.uniform(65536))});
          break;
        default:
          mod.actions.push_back(
              ofp::ActionEnqueue{static_cast<std::uint16_t>(rng.uniform(64)),
                                 static_cast<std::uint32_t>(rng.uniform(16))});
          break;
      }
    }
    const auto xid = static_cast<std::uint32_t>(rng.next());
    auto decoded = ofp::decode(ofp::encode({xid, mod}));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value().xid, xid);
    const auto& out = std::get<ofp::FlowMod>(decoded.value().msg);
    EXPECT_TRUE(out.match.same_pattern(mod.match));
    EXPECT_EQ(out.cookie, mod.cookie);
    EXPECT_EQ(out.command, mod.command);
    EXPECT_EQ(out.priority, mod.priority);
    EXPECT_EQ(out.actions, mod.actions);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfpCodecProperty, ::testing::Values(5, 55, 555));

// ---------------------------------------------------------------------------
// RPC retry schedule + duplicate-suppression invariants

class RetryPolicyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RetryPolicyProperty, ScheduleIsMonotoneAndBounded) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    hwdb::rpc::RetryPolicy policy;
    policy.max_attempts = static_cast<int>(rng.uniform(8)) + 1;
    policy.timeout = (rng.uniform(500) + 1) * kMillisecond;
    policy.backoff_base = (rng.uniform(200) + 1) * kMillisecond;
    policy.backoff_cap =
        policy.backoff_base + rng.uniform(2000) * kMillisecond;

    const auto schedule = policy.schedule();
    // One wait per transmission: the call fails only after max_attempts
    // sends, never earlier, never later.
    ASSERT_EQ(schedule.size(), static_cast<std::size_t>(policy.max_attempts));
    EXPECT_EQ(schedule.front(), policy.timeout);
    for (std::size_t n = 0; n < schedule.size(); ++n) {
      // Monotone: each wait is at least as long as the previous one.
      if (n > 0) EXPECT_GE(schedule[n], schedule[n - 1]);
      // Bounded: backoff growth stops at the cap.
      EXPECT_LE(schedule[n], policy.timeout + policy.backoff_cap);
    }
    // The backoff sequence itself is monotone and capped.
    for (int r = 0; r + 1 < policy.max_attempts; ++r) {
      EXPECT_LE(policy.retry_backoff(r), policy.backoff_cap);
      if (r > 0) EXPECT_GE(policy.retry_backoff(r), policy.retry_backoff(r - 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryPolicyProperty,
                         ::testing::Values(6, 66, 666));

class RpcDedupProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpcDedupProperty, ExactlyOnceUnderRandomDropsAndDuplicates) {
  Rng rng(GetParam());
  sim::EventLoop loop;
  hwdb::Database db(loop);
  ASSERT_TRUE(
      db.create_table(hwdb::Schema("Keys", {{"k", hwdb::ColumnType::Int}}), 256)
          .ok());
  hwdb::rpc::InProcRpcLink link(loop, db);

  hwdb::rpc::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.timeout = 20 * kMillisecond;
  policy.backoff_base = 10 * kMillisecond;
  policy.backoff_cap = 50 * kMillisecond;
  auto& client = link.make_client(policy);

  // Re-randomize the link's drop/duplicate/delay mix every 200 ms while a
  // unique key is inserted every 25 ms — an arbitrary interleaving of lost
  // requests, lost responses and duplicated datagrams.
  Rng fault_rng(GetParam() ^ 0xfa017u);
  for (int b = 0; b < 8; ++b) {
    loop.schedule_at(b * 200 * kMillisecond, [&, b] {
      sim::DatagramFault fault;
      fault.drop = rng.uniform01() * 0.6;
      fault.duplicate = rng.uniform01() * 0.5;
      fault.extra_delay = rng.uniform(3) * kMillisecond;
      link.set_fault(fault, &fault_rng);
    });
  }
  // Heal the link for the tail so every in-flight retry chain can finish.
  loop.schedule_at(1600 * kMillisecond,
                   [&] { link.set_fault(sim::DatagramFault{}, &fault_rng); });

  std::set<std::int64_t> acked;
  for (std::int64_t k = 0; k < 64; ++k) {
    loop.schedule_at(k * 25 * kMillisecond, [&, k] {
      client.insert("Keys", {hwdb::Value{k}},
                    [&acked, k](const hwdb::rpc::Response& resp) {
                      if (resp.ok) acked.insert(k);
                    });
    });
  }
  loop.run_until(10 * kSecond);
  EXPECT_EQ(client.pending(), 0u);

  // Every key the server applied, it applied exactly once — no matter how
  // the drops and duplicates interleaved with the retry schedule...
  std::multiset<std::int64_t> applied;
  auto rs = db.query("SELECT k FROM Keys");
  ASSERT_TRUE(rs.ok());
  for (const auto& row : rs.value().rows) applied.insert(row[0].as_int());
  std::set<std::int64_t> distinct(applied.begin(), applied.end());
  EXPECT_EQ(distinct.size(), applied.size());

  // ...and an OK ack is a promise: the insert is in the table. (The converse
  // does not hold — an applied insert whose response kept getting lost times
  // out client-side.)
  for (const std::int64_t k : acked) EXPECT_TRUE(distinct.count(k)) << k;

  // Suppression only happens for datagrams the client re-sent or the link
  // duplicated.
  EXPECT_LE(link.server().stats().dup_suppressed,
            client.stats().retries + link.stats().fault_duplicated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpcDedupProperty,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace hw
