// Shared test fixture: a booted HomeworkRouter with helper methods to attach
// devices and drive them through admission, used by the module-level and
// integration suites.
#pragma once

#include <gtest/gtest.h>

#include "homework/router.hpp"

namespace hw::homework::testing {

struct RouterFixture : ::testing::Test {
  explicit RouterFixture(HomeworkRouter::Config config = default_config())
      : rng(7), router(loop, rng, std::move(config)) {
    router.upstream().add_zone_entry("www.example.com",
                                     Ipv4Address{93, 184, 216, 34});
    router.upstream().add_zone_entry("www.facebook.com",
                                     Ipv4Address{31, 13, 72, 1});
    router.upstream().add_zone_entry("video.netflix.com",
                                     Ipv4Address{45, 57, 3, 1});
    router.start();
  }

  static HomeworkRouter::Config default_config() {
    HomeworkRouter::Config config;
    config.admission = DeviceRegistry::AdmissionDefault::Pending;
    return config;
  }

  /// Creates a host and attaches it (wired unless a position is given).
  sim::Host& make_device(const std::string& name,
                         std::optional<sim::Position> position = std::nullopt) {
    sim::Host::Config hc;
    hc.name = name;
    hc.mac = MacAddress::from_index(next_mac_++);
    hosts_.push_back(std::make_unique<sim::Host>(loop, hc, rng));
    attachments_.push_back(router.attach_device(*hosts_.back(), position));
    return *hosts_.back();
  }

  void permit(const sim::Host& host) {
    router.registry().set_state(host.mac(), DeviceState::Permitted, loop.now());
  }
  void deny(const sim::Host& host) {
    router.registry().set_state(host.mac(), DeviceState::Denied, loop.now());
  }

  /// Runs DHCP to completion for a permitted host; returns its address.
  std::optional<Ipv4Address> bind(sim::Host& host, Duration budget = 5 * kSecond) {
    host.start_dhcp();
    const Timestamp deadline = loop.now() + budget;
    while (loop.now() < deadline && !host.ip()) {
      loop.run_for(50 * kMillisecond);
    }
    return host.ip();
  }

  sim::Host& admitted_device(const std::string& name,
                             std::optional<sim::Position> position = std::nullopt) {
    sim::Host& host = make_device(name, position);
    permit(host);
    EXPECT_TRUE(bind(host).has_value()) << name << " failed to lease";
    return host;
  }

  /// Device→router link of the most recently attached device — a raw frame
  /// injection point for spoofed-traffic tests.
  [[nodiscard]] sim::DuplexLink* last_link() {
    return attachments_.empty() ? nullptr : attachments_.back().link;
  }

  sim::EventLoop loop;
  Rng rng;
  HomeworkRouter router;

 private:
  std::vector<std::unique_ptr<sim::Host>> hosts_;
  std::vector<HomeworkRouter::Attachment> attachments_;
  std::uint32_t next_mac_ = 1;
};

}  // namespace hw::homework::testing
