// Flow table semantics: priority order, add/modify/delete (strict and not),
// overlap checking, idle/hard timeouts, counters and stats queries.
#include <gtest/gtest.h>

#include "openflow/flow_table.hpp"

namespace hw::ofp {
namespace {

Match exact_pkt(std::uint16_t tp_dst, Ipv4Address src = Ipv4Address{10, 0, 0, 1}) {
  Match m;
  m.wildcards = 0;
  m.in_port = 1;
  m.dl_src = MacAddress::from_index(1);
  m.dl_dst = MacAddress::from_index(2);
  m.dl_vlan = 0xffff;
  m.dl_type = 0x0800;
  m.nw_proto = 6;
  m.nw_src = src;
  m.nw_dst = Ipv4Address{8, 8, 8, 8};
  m.tp_src = 40000;
  m.tp_dst = tp_dst;
  return m;
}

FlowMod add_rule(Match match, std::uint16_t priority, ActionList actions,
                 std::uint16_t idle = 0, std::uint16_t hard = 0) {
  FlowMod mod;
  mod.match = match;
  mod.command = FlowModCommand::Add;
  mod.priority = priority;
  mod.actions = std::move(actions);
  mod.idle_timeout = idle;
  mod.hard_timeout = hard;
  return mod;
}

TEST(FlowTable, LookupHonoursPriority) {
  FlowTable table;
  Match broad = Match::any();
  broad.with_dl_type(0x0800);
  table.apply(add_rule(broad, 100, output_to(1)), 0);
  Match narrow = Match::any();
  narrow.with_dl_type(0x0800).with_tp_dst(80);
  table.apply(add_rule(narrow, 200, output_to(2)), 0);

  FlowEntry* hit = table.lookup(exact_pkt(80), 0, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(std::get<ActionOutput>(hit->actions[0]).port, 2);

  hit = table.lookup(exact_pkt(443), 0, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(std::get<ActionOutput>(hit->actions[0]).port, 1);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable table;
  Match arp_only = Match::any();
  arp_only.with_dl_type(0x0806);
  table.apply(add_rule(arp_only, 1, output_to(1)), 0);
  EXPECT_EQ(table.lookup(exact_pkt(80), 0, 100), nullptr);
  EXPECT_EQ(table.stats().lookups, 1u);
  EXPECT_EQ(table.stats().matches, 0u);
}

TEST(FlowTable, CountersAccumulate) {
  FlowTable table;
  table.apply(add_rule(Match::any(), 1, output_to(1)), 0);
  table.lookup(exact_pkt(80), 10, 100);
  table.lookup(exact_pkt(80), 20, 200);
  const FlowEntry* e = table.peek(exact_pkt(80));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->packet_count, 2u);
  EXPECT_EQ(e->byte_count, 300u);
  EXPECT_EQ(e->last_used, 20u);
}

TEST(FlowTable, AddIdenticalPatternReplacesAndResetsCounters) {
  FlowTable table;
  Match m = Match::any();
  m.with_tp_dst(80);
  table.apply(add_rule(m, 5, output_to(1)), 0);
  table.lookup(exact_pkt(80), 0, 100);
  table.apply(add_rule(m, 5, output_to(9)), 50);
  EXPECT_EQ(table.size(), 1u);
  const FlowEntry* e = table.peek(exact_pkt(80));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->packet_count, 0u);
  EXPECT_EQ(std::get<ActionOutput>(e->actions[0]).port, 9);
}

TEST(FlowTable, CheckOverlapRejects) {
  FlowTable table;
  Match a = Match::any();
  a.with_tp_dst(80);
  table.apply(add_rule(a, 5, output_to(1)), 0);

  Match b = Match::any();
  b.with_nw_proto(6);  // overlaps a (neither is more specific on all fields)
  FlowMod mod = add_rule(b, 5, output_to(2));
  mod.flags = FlowModFlags::kCheckOverlap;
  EXPECT_EQ(table.apply(mod, 0), FlowModResult::Overlap);
  // Different priority never overlaps.
  mod.priority = 6;
  EXPECT_EQ(table.apply(mod, 0), FlowModResult::Added);
}

TEST(FlowTable, ModifyRewritesActionsKeepsCounters) {
  FlowTable table;
  Match m = Match::any();
  m.with_tp_dst(80);
  table.apply(add_rule(m, 5, output_to(1)), 0);
  table.lookup(exact_pkt(80), 0, 100);

  FlowMod mod;
  mod.match = Match::any();  // non-strict: covers everything
  mod.command = FlowModCommand::Modify;
  mod.actions = output_to(7);
  EXPECT_EQ(table.apply(mod, 0), FlowModResult::Modified);
  const FlowEntry* e = table.peek(exact_pkt(80));
  EXPECT_EQ(std::get<ActionOutput>(e->actions[0]).port, 7);
  EXPECT_EQ(e->packet_count, 1u);  // counters preserved on modify
}

TEST(FlowTable, ModifyWithNoMatchActsAsAdd) {
  FlowTable table;
  FlowMod mod;
  mod.match = Match::any();
  mod.match.with_tp_dst(99);
  mod.command = FlowModCommand::ModifyStrict;
  mod.priority = 3;
  mod.actions = output_to(1);
  EXPECT_EQ(table.apply(mod, 0), FlowModResult::Added);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, DeleteNonStrictRemovesCovered) {
  FlowTable table;
  Match a = Match::any();
  a.with_dl_type(0x0800).with_tp_dst(80);
  Match b = Match::any();
  b.with_dl_type(0x0800).with_tp_dst(443);
  Match c = Match::any();
  c.with_dl_type(0x0806);
  table.apply(add_rule(a, 5, output_to(1)), 0);
  table.apply(add_rule(b, 5, output_to(1)), 0);
  table.apply(add_rule(c, 5, output_to(1)), 0);

  FlowMod del;
  del.match = Match::any();
  del.match.with_dl_type(0x0800);
  del.command = FlowModCommand::Delete;
  std::vector<FlowEntry> removed;
  EXPECT_EQ(table.apply(del, 0, &removed), FlowModResult::Deleted);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(table.size(), 1u);  // the ARP rule survives
}

TEST(FlowTable, DeleteStrictRequiresExactPattern) {
  FlowTable table;
  Match a = Match::any();
  a.with_tp_dst(80);
  table.apply(add_rule(a, 5, output_to(1)), 0);

  FlowMod del;
  del.match = Match::any();  // broader pattern
  del.command = FlowModCommand::DeleteStrict;
  del.priority = 5;
  EXPECT_EQ(table.apply(del, 0), FlowModResult::NoMatch);

  del.match = a;
  del.priority = 4;  // wrong priority
  EXPECT_EQ(table.apply(del, 0), FlowModResult::NoMatch);

  del.priority = 5;
  EXPECT_EQ(table.apply(del, 0), FlowModResult::Deleted);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, DeleteFiltersByOutPort) {
  FlowTable table;
  Match a = Match::any();
  a.with_tp_dst(80);
  Match b = Match::any();
  b.with_tp_dst(443);
  table.apply(add_rule(a, 5, output_to(1)), 0);
  table.apply(add_rule(b, 5, output_to(2)), 0);

  FlowMod del;
  del.match = Match::any();
  del.command = FlowModCommand::Delete;
  del.out_port = 2;
  EXPECT_EQ(table.apply(del, 0), FlowModResult::Deleted);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_NE(table.peek(exact_pkt(80)), nullptr);
}

TEST(FlowTable, TableFull) {
  FlowTable table(2);
  Match a = Match::any();
  a.with_tp_dst(1);
  Match b = Match::any();
  b.with_tp_dst(2);
  Match c = Match::any();
  c.with_tp_dst(3);
  EXPECT_EQ(table.apply(add_rule(a, 5, {}), 0), FlowModResult::Added);
  EXPECT_EQ(table.apply(add_rule(b, 5, {}), 0), FlowModResult::Added);
  EXPECT_EQ(table.apply(add_rule(c, 5, {}), 0), FlowModResult::TableFull);
}

TEST(FlowTable, IdleTimeoutExpiresFromLastUse) {
  FlowTable table;
  table.apply(add_rule(Match::any(), 1, output_to(1), /*idle=*/10), 0);
  table.lookup(exact_pkt(80), 5 * kSecond, 100);
  // At 14s: last use 5s, idle 10s → not yet.
  EXPECT_TRUE(table.expire(14 * kSecond).empty());
  auto removed = table.expire(15 * kSecond);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].second, FlowRemovedReason::IdleTimeout);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, ZeroLengthPacketRefreshesIdleTimeout) {
  // OF 1.0 §3.4: any matched packet counts as use, including zero-length
  // ones — the idle clock restarts even when no payload bytes are carried.
  FlowTable table;
  table.apply(add_rule(Match::any(), 1, output_to(1), /*idle=*/10), 0);
  table.lookup(exact_pkt(80), 2 * kSecond, 100);
  FlowEntry* entry = table.lookup(exact_pkt(80), 8 * kSecond, /*bytes=*/0);
  ASSERT_NE(entry, nullptr);
  // The zero-length hit counts a packet but no bytes.
  EXPECT_EQ(entry->packet_count, 2u);
  EXPECT_EQ(entry->byte_count, 100u);
  // Without the refresh at 8s the entry would expire at 12s (last payload
  // at 2s + idle 10s); the zero-length packet pushed that out to 18s.
  EXPECT_TRUE(table.expire(17 * kSecond).empty());
  auto removed = table.expire(18 * kSecond);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].second, FlowRemovedReason::IdleTimeout);
}

TEST(FlowTable, HardTimeoutExpiresFromInstall) {
  FlowTable table;
  table.apply(add_rule(Match::any(), 1, output_to(1), 0, /*hard=*/20), 0);
  // Constant traffic does not save it.
  for (int s = 1; s <= 19; ++s) table.lookup(exact_pkt(80), s * kSecond, 1);
  EXPECT_TRUE(table.expire(19 * kSecond).empty());
  auto removed = table.expire(20 * kSecond);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].second, FlowRemovedReason::HardTimeout);
}

TEST(FlowTable, ZeroTimeoutsArePermanent) {
  FlowTable table;
  table.apply(add_rule(Match::any(), 1, output_to(1)), 0);
  EXPECT_TRUE(table.expire(~Timestamp{0} / 2).empty());
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, QueryFiltersByMatchAndOutPort) {
  FlowTable table;
  Match web = Match::any();
  web.with_dl_type(0x0800).with_tp_dst(80);
  Match dns = Match::any();
  dns.with_dl_type(0x0800).with_tp_dst(53);
  table.apply(add_rule(web, 5, output_to(1)), 0);
  table.apply(add_rule(dns, 5, output_to(2)), 0);

  EXPECT_EQ(table.query(Match::any()).size(), 2u);
  Match filter = Match::any();
  filter.with_tp_dst(53);
  EXPECT_EQ(table.query(filter).size(), 1u);
  EXPECT_EQ(table.query(Match::any(), 1).size(), 1u);
  EXPECT_EQ(table.query(Match::any(), 9).size(), 0u);
}

TEST(FlowTable, SubtableCountTracksDistinctWildcardPatterns) {
  FlowTable table;
  EXPECT_EQ(table.subtable_count(), 0u);
  Match web = Match::any();
  web.with_dl_type(0x0800).with_tp_dst(80);
  Match dns = Match::any();
  dns.with_dl_type(0x0800).with_tp_dst(53);
  table.apply(add_rule(web, 5, output_to(1)), 0);
  table.apply(add_rule(dns, 6, output_to(2)), 0);
  // Same wildcard bitmap → same subtable.
  EXPECT_EQ(table.subtable_count(), 1u);
  Match arp = Match::any();
  arp.with_dl_type(0x0806);
  table.apply(add_rule(arp, 5, output_to(3)), 0);
  EXPECT_EQ(table.subtable_count(), 2u);
  // Exact rules land in a third subtable.
  table.apply(add_rule(exact_pkt(80), 5, output_to(4)), 0);
  EXPECT_EQ(table.subtable_count(), 3u);

  // Deleting the last entry of a pattern prunes its subtable.
  FlowMod del;
  del.match = Match::any();
  del.match.with_dl_type(0x0806);
  del.command = FlowModCommand::DeleteStrict;
  del.priority = 5;
  EXPECT_EQ(table.apply(del, 0), FlowModResult::Deleted);
  EXPECT_EQ(table.subtable_count(), 2u);
}

TEST(FlowTable, GenerationBumpsOnEveryMutation) {
  FlowTable table;
  const std::uint64_t g0 = table.generation();
  Match m = Match::any();
  m.with_tp_dst(80);
  table.apply(add_rule(m, 5, output_to(1), /*idle=*/1), 0);
  const std::uint64_t g1 = table.generation();
  EXPECT_GT(g1, g0);

  // Lookups are not mutations.
  table.lookup(exact_pkt(80), 0, 64);
  EXPECT_EQ(table.generation(), g1);

  // Replace, modify, delete and expire all invalidate cached handles.
  table.apply(add_rule(m, 5, output_to(2)), 0);
  const std::uint64_t g2 = table.generation();
  EXPECT_GT(g2, g1);
  FlowMod mod;
  mod.match = Match::any();
  mod.command = FlowModCommand::Modify;
  mod.actions = output_to(3);
  table.apply(mod, 0);
  const std::uint64_t g3 = table.generation();
  EXPECT_GT(g3, g2);
  table.apply(add_rule(m, 5, output_to(1), /*idle=*/1), 0);
  const std::uint64_t g4 = table.generation();
  EXPECT_FALSE(table.expire(10 * kSecond).empty());
  EXPECT_GT(table.generation(), g4);
}

TEST(FlowTable, TableFullCounterCountsRejections) {
  FlowTable table(1);
  Match a = Match::any();
  a.with_tp_dst(1);
  Match b = Match::any();
  b.with_tp_dst(2);
  EXPECT_EQ(table.apply(add_rule(a, 5, {}), 0), FlowModResult::Added);
  EXPECT_EQ(table.stats().table_full, 0u);
  EXPECT_EQ(table.apply(add_rule(b, 5, {}), 0), FlowModResult::TableFull);
  EXPECT_EQ(table.apply(add_rule(b, 5, {}), 0), FlowModResult::TableFull);
  EXPECT_EQ(table.stats().table_full, 2u);
  // Replacing an existing pattern is not an insert and must still succeed.
  EXPECT_EQ(table.apply(add_rule(a, 5, output_to(9)), 0),
            FlowModResult::Added);
  EXPECT_EQ(table.stats().table_full, 2u);
}

TEST(FlowTable, PeekAgreesWithLookupWithoutCounterSideEffects) {
  FlowTable table;
  Match broad = Match::any();
  broad.with_dl_type(0x0800);
  Match narrow = Match::any();
  narrow.with_dl_type(0x0800).with_tp_dst(80);
  table.apply(add_rule(broad, 100, output_to(1)), 0);
  table.apply(add_rule(narrow, 200, output_to(2)), 0);

  const FlowEntry* peeked = table.peek(exact_pkt(80));
  ASSERT_NE(peeked, nullptr);
  EXPECT_EQ(peeked->packet_count, 0u);
  EXPECT_EQ(table.stats().lookups, 0u);

  FlowEntry* looked = table.lookup(exact_pkt(80), 0, 64);
  ASSERT_NE(looked, nullptr);
  EXPECT_EQ(looked, peeked);  // same winner through the same code path
  EXPECT_EQ(table.peek(exact_pkt(443)), table.lookup(exact_pkt(443), 0, 64));
  EXPECT_EQ(table.peek(exact_pkt(80, Ipv4Address{1, 2, 3, 4})),
            table.lookup(exact_pkt(80, Ipv4Address{1, 2, 3, 4}), 0, 64));
}

TEST(FlowTable, SubtableScansStayBelowRuleCount) {
  // 100 exact-match rules share one wildcard pattern: a lookup probes one
  // subtable, not one rule at a time.
  FlowTable table;
  for (std::uint16_t i = 0; i < 100; ++i) {
    table.apply(add_rule(exact_pkt(i), 5, output_to(1)), 0);
  }
  EXPECT_EQ(table.subtable_count(), 1u);
  table.lookup(exact_pkt(7), 0, 64);
  EXPECT_EQ(table.stats().subtable_scans, 1u);
}

TEST(FlowTable, ForEachVisitsAll) {
  FlowTable table;
  for (std::uint16_t i = 0; i < 5; ++i) {
    Match m = Match::any();
    m.with_tp_dst(i);
    table.apply(add_rule(m, i, {}), 0);
  }
  int count = 0;
  std::uint16_t last_priority = 0xffff;
  table.for_each([&](const FlowEntry& e) {
    ++count;
    EXPECT_LE(e.priority, last_priority);  // descending priority order
    last_priority = e.priority;
  });
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace hw::ofp
