// The simulated ISP cloud: authoritative DNS (A/PTR), TCP endpoint
// behaviour (handshake, download serving, FIN), ICMP — plus RPC-link loss
// tolerance for the hwdb transports.
#include <gtest/gtest.h>

#include "homework/upstream.hpp"
#include "hwdb/udp_transport.hpp"
#include "net/dns.hpp"

namespace hw::homework {
namespace {

class Collector final : public sim::FrameSink {
 public:
  void deliver(const Bytes& frame) override { frames.push_back(frame); }
  std::vector<net::ParsedPacket> parsed() const {
    std::vector<net::ParsedPacket> out;
    for (const auto& f : frames) {
      auto p = net::ParsedPacket::parse(f);
      if (p.ok()) out.push_back(std::move(p).take());
    }
    return out;
  }
  std::vector<Bytes> frames;
};

struct UpstreamFixture : ::testing::Test {
  UpstreamFixture() : up(loop, {}) {
    up.connect(&router_side);
    up.add_zone_entry("www.example.com", Ipv4Address{93, 184, 216, 34});
  }

  Bytes dns_query(const std::string& name, net::DnsType type,
                  std::uint16_t id = 7) {
    return net::build_udp(MacAddress::from_index(1), MacAddress::from_index(2),
                          Ipv4Address{192, 168, 1, 100},
                          Ipv4Address{8, 8, 8, 8}, 5000, 53,
                          net::DnsMessage::query(id, name, type).serialize());
  }

  sim::EventLoop loop;
  Collector router_side;
  Upstream up;
};

TEST_F(UpstreamFixture, AuthoritativeARecord) {
  up.deliver(dns_query("WWW.Example.COM", net::DnsType::A));
  loop.run_all();
  auto packets = router_side.parsed();
  ASSERT_EQ(packets.size(), 1u);
  auto resp = net::DnsMessage::parse(packets[0].l4_payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().authoritative);
  ASSERT_EQ(resp.value().answers.size(), 1u);
  EXPECT_EQ(resp.value().answers[0].address.to_string(), "93.184.216.34");
  // Reply addressed back to the querying socket.
  EXPECT_EQ(packets[0].udp->dst_port, 5000);
  EXPECT_EQ(packets[0].ip->dst.to_string(), "192.168.1.100");
}

TEST_F(UpstreamFixture, NxdomainForUnknown) {
  up.deliver(dns_query("nope.invalid", net::DnsType::A));
  loop.run_all();
  auto resp = net::DnsMessage::parse(router_side.parsed()[0].l4_payload);
  EXPECT_EQ(resp.value().rcode, net::DnsRcode::NxDomain);
  EXPECT_EQ(up.stats().dns_nxdomain, 1u);
}

TEST_F(UpstreamFixture, PtrFromReverseZone) {
  const std::string reverse =
      net::DnsMessage::reverse_name(Ipv4Address{93, 184, 216, 34});
  up.deliver(dns_query(reverse, net::DnsType::Ptr));
  loop.run_all();
  auto resp = net::DnsMessage::parse(router_side.parsed()[0].l4_payload);
  ASSERT_EQ(resp.value().answers.size(), 1u);
  EXPECT_EQ(resp.value().answers[0].target, "www.example.com");
}

TEST_F(UpstreamFixture, PtrUnknownAddressNxdomain) {
  up.deliver(dns_query("9.9.9.9.in-addr.arpa", net::DnsType::Ptr));
  loop.run_all();
  auto resp = net::DnsMessage::parse(router_side.parsed()[0].l4_payload);
  EXPECT_EQ(resp.value().rcode, net::DnsRcode::NxDomain);
}

TEST_F(UpstreamFixture, ResponsesArriveAfterRtt) {
  up.deliver(dns_query("www.example.com", net::DnsType::A));
  loop.run_until(19 * kMillisecond);  // default rtt is 20 ms
  EXPECT_TRUE(router_side.frames.empty());
  loop.run_until(21 * kMillisecond);
  EXPECT_EQ(router_side.frames.size(), 1u);
}

TEST_F(UpstreamFixture, TcpHandshakeAndDownload) {
  auto send_tcp = [&](std::uint8_t flags, std::size_t payload, std::uint32_t seq) {
    net::TcpHeader tcp;
    tcp.src_port = 44000;
    tcp.dst_port = 80;
    tcp.seq = seq;
    tcp.flags = flags;
    up.deliver(net::build_tcp(MacAddress::from_index(1),
                              MacAddress::from_index(2),
                              Ipv4Address{192, 168, 1, 100},
                              Ipv4Address{93, 184, 216, 34}, tcp,
                              Bytes(payload, 0x42)));
    loop.run_all();
  };

  send_tcp(net::TcpFlags::kSyn, 0, 100);
  auto packets = router_side.parsed();
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(packets[0].tcp->syn());
  EXPECT_TRUE(packets[0].tcp->ack_set());
  EXPECT_EQ(packets[0].tcp->ack, 101u);

  // A data segment to port 80 triggers a served download split into MTU
  // chunks (default: 12000 bytes at 1400/segment → 9 segments).
  router_side.frames.clear();
  send_tcp(net::TcpFlags::kAck | net::TcpFlags::kPsh, 300, 101);
  packets = router_side.parsed();
  ASSERT_GE(packets.size(), 9u);
  std::size_t served = 0;
  for (const auto& p : packets) served += p.l4_payload.size();
  EXPECT_EQ(served, 12000u);
  EXPECT_EQ(up.stats().bytes_served, 12000u);

  // FIN gets FIN-ACK'd.
  router_side.frames.clear();
  send_tcp(net::TcpFlags::kFin, 0, 401);
  packets = router_side.parsed();
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(packets[0].tcp->fin());
}

TEST_F(UpstreamFixture, UnknownPortDataJustAcked) {
  net::TcpHeader tcp;
  tcp.src_port = 44000;
  tcp.dst_port = 12345;  // no download profile
  tcp.seq = 1;
  tcp.flags = net::TcpFlags::kAck | net::TcpFlags::kPsh;
  up.deliver(net::build_tcp(MacAddress::from_index(1), MacAddress::from_index(2),
                            Ipv4Address{192, 168, 1, 100},
                            Ipv4Address{1, 2, 3, 4}, tcp, Bytes(100, 0)));
  loop.run_all();
  auto packets = router_side.parsed();
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(packets[0].l4_payload.empty());  // bare ACK
  EXPECT_EQ(up.stats().bytes_served, 0u);
}

TEST_F(UpstreamFixture, PingAnyAddress) {
  up.deliver(net::build_icmp_echo(MacAddress::from_index(1),
                                  MacAddress::from_index(2),
                                  Ipv4Address{192, 168, 1, 100},
                                  Ipv4Address{203, 0, 113, 77},
                                  net::IcmpType::EchoRequest, 9, 3));
  loop.run_all();
  auto packets = router_side.parsed();
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].icmp->type, net::IcmpType::EchoReply);
  EXPECT_EQ(packets[0].icmp->sequence, 3);
  EXPECT_EQ(packets[0].ip->src.to_string(), "203.0.113.77");
}

TEST_F(UpstreamFixture, GarbageIgnored) {
  up.deliver(Bytes{1, 2, 3});
  up.deliver(Bytes{});
  loop.run_all();
  EXPECT_TRUE(router_side.frames.empty());
}

// ---------------------------------------------------------------------------
// RPC link loss tolerance (UDP gives no delivery guarantees)

TEST(RpcLinkLoss, LostDatagramsDegradeGracefully) {
  sim::EventLoop loop;
  Rng rng(5);
  hwdb::Database db(loop);
  ASSERT_TRUE(db.create_table(hwdb::Schema("T", {{"v", hwdb::ColumnType::Int}}),
                              64)
                  .ok());
  hwdb::rpc::InProcRpcLink::Config config;
  config.loss_probability = 0.3;
  hwdb::rpc::InProcRpcLink link(loop, db, config, &rng);
  auto& client = link.make_client();

  int acked = 0;
  for (int i = 0; i < 100; ++i) {
    client.insert("T", {hwdb::Value{i}},
                  [&](const hwdb::rpc::Response& resp) {
                    if (resp.ok) ++acked;
                  });
  }
  loop.run_for(kSecond);
  // With 30% loss each way, roughly half the acks arrive; the server stored
  // roughly 70% of inserts. Nothing crashes, pending callbacks just linger.
  EXPECT_GT(acked, 20);
  EXPECT_LT(acked, 90);
  EXPECT_GT(db.table("T")->inserted(), 40u);
  EXPECT_GT(client.pending(), 0u);  // un-acked requests remain pending
}

}  // namespace
}  // namespace hw::homework
