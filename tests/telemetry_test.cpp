// The telemetry registry: instrument registration lifetime, snapshot
// aggregation across same-named instruments, histogram percentile
// estimation, and the scoped latency timer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "telemetry/delta.hpp"
#include "telemetry/metrics.hpp"

namespace hw::telemetry {
namespace {

std::optional<MetricSample> find_sample(const std::vector<MetricSample>& samples,
                                        const std::string& name) {
  const auto it = std::find_if(samples.begin(), samples.end(),
                               [&](const MetricSample& s) { return s.name == name; });
  if (it == samples.end()) return std::nullopt;
  return *it;
}

TEST(Registry, InstrumentsAttachAndDetachWithScope) {
  auto& reg = MetricRegistry::instance();
  const std::size_t before = reg.instrument_count();
  {
    Counter c("test.scope.counter");
    Gauge g("test.scope.gauge");
    Histogram h("test.scope.histogram");
    EXPECT_EQ(reg.instrument_count(), before + 3);
    EXPECT_TRUE(reg.total("test.scope.counter").has_value());
  }
  EXPECT_EQ(reg.instrument_count(), before);
  EXPECT_FALSE(reg.total("test.scope.counter").has_value());
}

TEST(Registry, CounterAndGaugeBasics) {
  Counter c("test.basics.counter");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g("test.basics.gauge");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST(Registry, SnapshotAggregatesSameNamedInstruments) {
  // Per-instance cells, per-series export: two hosts carrying the same
  // instrument name must show up as one summed sample.
  Counter a("test.agg.tx_frames");
  Counter b("test.agg.tx_frames");
  a.inc(10);
  b.inc(5);
  const auto samples = MetricRegistry::instance().snapshot();
  const auto sample = find_sample(samples, "test.agg.tx_frames");
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->kind, MetricKind::Counter);
  EXPECT_DOUBLE_EQ(sample->value, 15.0);
  EXPECT_EQ(MetricRegistry::instance().total("test.agg.tx_frames"), 15.0);
}

TEST(Registry, SnapshotIsNameSorted) {
  Counter b("test.sorted.b");
  Counter a("test.sorted.a");
  const auto samples = MetricRegistry::instance().snapshot();
  EXPECT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const MetricSample& x, const MetricSample& y) { return x.name < y.name; }));
}

TEST(Registry, HistogramFlattensIntoDerivedSamples) {
  Histogram h("test.flat.latency_ns");
  h.record(100);
  h.record(200);
  h.record(300);
  const auto samples = MetricRegistry::instance().snapshot();
  const auto count = find_sample(samples, "test.flat.latency_ns.count");
  const auto sum = find_sample(samples, "test.flat.latency_ns.sum");
  const auto mean = find_sample(samples, "test.flat.latency_ns.mean");
  const auto max = find_sample(samples, "test.flat.latency_ns.max");
  ASSERT_TRUE(count.has_value());
  ASSERT_TRUE(sum.has_value());
  ASSERT_TRUE(mean.has_value());
  ASSERT_TRUE(max.has_value());
  EXPECT_DOUBLE_EQ(count->value, 3.0);
  EXPECT_DOUBLE_EQ(sum->value, 600.0);
  EXPECT_DOUBLE_EQ(mean->value, 200.0);
  EXPECT_DOUBLE_EQ(max->value, 300.0);
  for (const char* q : {".p50", ".p90", ".p99"}) {
    ASSERT_TRUE(
        find_sample(samples, std::string("test.flat.latency_ns") + q).has_value())
        << q;
  }
}

TEST(Histogram, PercentilesLandInTheRightBuckets) {
  Histogram h("test.pct.latency_ns");
  // 90 fast observations (~10 ns) and 10 slow ones (~1000 ns): the median
  // must come from the fast bucket, the p99 from the slow one. Buckets are
  // powers of two, so assert bucket ranges, not exact values.
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1000);
  const double p50 = h.percentile(0.50);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p50, 8.0);     // bit_width(10) == 4 → bucket [8, 16)
  EXPECT_LE(p50, 16.0);
  EXPECT_GE(p99, 512.0);   // bit_width(1000) == 10 → bucket [512, 1024)
  EXPECT_LE(p99, 1024.0);
  EXPECT_LE(p50, p99);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_value(), 1000u);
}

TEST(Histogram, EmptyHistogramIsZero) {
  Histogram h("test.empty.latency_ns");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, SnapshotMergesSameNamedHistograms) {
  Histogram a("test.merge.latency_ns");
  Histogram b("test.merge.latency_ns");
  for (int i = 0; i < 50; ++i) a.record(10);
  for (int i = 0; i < 50; ++i) b.record(1000);
  const auto samples = MetricRegistry::instance().snapshot();
  const auto count = find_sample(samples, "test.merge.latency_ns.count");
  ASSERT_TRUE(count.has_value());
  EXPECT_DOUBLE_EQ(count->value, 100.0);
  // With half the merged observations slow, p90 must come from the slow
  // bucket even though neither instrument alone would put it there.
  const auto p90 = find_sample(samples, "test.merge.latency_ns.p90");
  ASSERT_TRUE(p90.has_value());
  EXPECT_GE(p90->value, 512.0);
}

TEST(Histogram, ScopedTimerRecordsOneObservation) {
  Histogram h("test.timer.latency_ns");
  { const ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedRegistry, BareInstrumentsLandInTheActiveScope) {
  MetricRegistry mine;
  const std::size_t process_before = MetricRegistry::instance().instrument_count();
  {
    ScopedMetricRegistry scope(mine);
    Counter c("test.scoped.counter");
    c.inc(3);
    EXPECT_EQ(mine.instrument_count(), 1u);
    EXPECT_EQ(MetricRegistry::instance().instrument_count(), process_before);
    EXPECT_EQ(mine.total("test.scoped.counter"), 3.0);
    EXPECT_FALSE(
        MetricRegistry::instance().total("test.scoped.counter").has_value());
  }
  // Scope gone: bare instruments fall back to the process registry.
  Counter after("test.scoped.after");
  EXPECT_FALSE(mine.total("test.scoped.after").has_value());
  EXPECT_TRUE(
      MetricRegistry::instance().total("test.scoped.after").has_value());
}

TEST(ScopedRegistry, ScopesNestAndRestore) {
  MetricRegistry outer;
  MetricRegistry inner;
  ScopedMetricRegistry outer_scope(outer);
  Counter a("test.nest.a");
  {
    ScopedMetricRegistry inner_scope(inner);
    Counter b("test.nest.b");
    EXPECT_EQ(inner.instrument_count(), 1u);
    // The inner scope detaches b before the outer scope sees anything.
  }
  Counter c("test.nest.c");
  EXPECT_EQ(outer.instrument_count(), 2u);  // a and c
  EXPECT_EQ(inner.instrument_count(), 0u);
}

TEST(ScopedRegistry, ExplicitInjectionWinsOverTheScope) {
  MetricRegistry scoped;
  MetricRegistry injected;
  ScopedMetricRegistry scope(scoped);
  Counter c(injected, "test.inject.counter");
  c.inc();
  EXPECT_EQ(injected.total("test.inject.counter"), 1.0);
  EXPECT_FALSE(scoped.total("test.inject.counter").has_value());
}

TEST(ScopedRegistry, DetachTargetsTheAttachRegistry) {
  // An instrument destroyed under a *different* scope than it was created
  // under must still deregister from where it attached.
  MetricRegistry first;
  MetricRegistry second;
  auto c = [&] {
    ScopedMetricRegistry scope(first);
    return std::make_unique<Counter>("test.detach.counter");
  }();
  {
    ScopedMetricRegistry scope(second);
    c.reset();
  }
  EXPECT_EQ(first.instrument_count(), 0u);
  EXPECT_EQ(second.instrument_count(), 0u);
}

TEST(ScopedRegistry, ScalarsExcludeHistogramSeries) {
  MetricRegistry reg;
  ScopedMetricRegistry scope(reg);
  Counter c("test.scalars.counter");
  Gauge g("test.scalars.gauge");
  Histogram h("test.scalars.latency_ns");
  c.inc(2);
  g.set(-5);
  h.record(100);
  const auto scalars = reg.scalars();
  EXPECT_EQ(scalars.size(), 2u);
  EXPECT_DOUBLE_EQ(scalars.at("test.scalars.counter"), 2.0);
  EXPECT_DOUBLE_EQ(scalars.at("test.scalars.gauge"), -5.0);
}

TEST(HistogramState, MergeIsBucketWise) {
  MetricRegistry reg_a;
  MetricRegistry reg_b;
  Histogram a(reg_a, "test.hstate.latency_ns");
  Histogram b(reg_b, "test.hstate.latency_ns");
  for (int i = 0; i < 90; ++i) a.record(10);
  for (int i = 0; i < 10; ++i) b.record(1000);
  HistogramState merged = reg_a.histogram_states().at("test.hstate.latency_ns");
  merged.merge(reg_b.histogram_states().at("test.hstate.latency_ns"));
  EXPECT_EQ(merged.count, 100u);
  EXPECT_EQ(merged.sum, 90u * 10u + 10u * 1000u);
  EXPECT_EQ(merged.max, 1000u);
  EXPECT_GE(merged.percentile(0.99), 512.0);
  EXPECT_LE(merged.percentile(0.50), 16.0);
}

TEST(ScalarDelta, UnchangedSnapshotYieldsEmptyDelta) {
  const ScalarMap prev = {{"a.counter", 3.0}, {"b.gauge", -1.5}};
  EXPECT_TRUE(scalar_delta(prev, prev).empty());
}

TEST(ScalarDelta, CarriesAbsoluteValuesOfNewAndChangedSeries) {
  const ScalarMap prev = {{"a.counter", 3.0}, {"b.gauge", -1.5}};
  const ScalarMap cur = {{"a.counter", 7.0}, {"b.gauge", -1.5}, {"c.new", 1.0}};
  const ScalarMap delta = scalar_delta(prev, cur);
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_DOUBLE_EQ(delta.at("a.counter"), 7.0);  // absolute, not +4
  EXPECT_DOUBLE_EQ(delta.at("c.new"), 1.0);
  ScalarMap base = prev;
  apply_delta(base, delta);
  EXPECT_EQ(base, cur);
}

TEST(ScalarDelta, ComparisonIsBitWiseSoCounterStepsNeverVanish) {
  // A counter stepping through every successive double must always produce a
  // delta entry, even where operator== would be lossy (-0.0 == 0.0) or false
  // (NaN != NaN would re-report an unchanged NaN under operator!=).
  const ScalarMap neg_zero = {{"x", -0.0}};
  const ScalarMap pos_zero = {{"x", 0.0}};
  const ScalarMap sign_flip = scalar_delta(neg_zero, pos_zero);
  ASSERT_EQ(sign_flip.size(), 1u);
  EXPECT_FALSE(std::signbit(sign_flip.at("x")));
  EXPECT_TRUE(scalar_delta(pos_zero, pos_zero).empty());

  // Monotone counter walk: every step reports exactly the changed series and
  // applying the stream of deltas reproduces the final state.
  ScalarMap state = {{"steps", 0.0}};
  ScalarMap shadow = state;
  for (int i = 1; i <= 64; ++i) {
    ScalarMap next = state;
    next["steps"] = static_cast<double>(i);
    const ScalarMap d = scalar_delta(state, next);
    ASSERT_EQ(d.size(), 1u) << "step " << i;
    apply_delta(shadow, d);
    state = next;
  }
  EXPECT_EQ(shadow, state);
}

TEST(HistogramDelta, MergeRoundTripReproducesCurExactly) {
  MetricRegistry reg;
  Histogram h(reg, "test.hdelta.latency_ns");
  for (int i = 0; i < 50; ++i) h.record(10);
  const HistogramState prev = reg.histogram_states().at("test.hdelta.latency_ns");
  for (int i = 0; i < 25; ++i) h.record(5000);
  h.record(123456);
  const HistogramState cur = reg.histogram_states().at("test.hdelta.latency_ns");

  const HistogramState delta = histogram_delta(prev, cur);
  EXPECT_EQ(delta.count, cur.count - prev.count);
  EXPECT_EQ(delta.sum, cur.sum - prev.sum);
  EXPECT_EQ(delta.max, cur.max);  // max is not subtractive

  HistogramState rebuilt = prev;
  rebuilt.merge(delta);
  EXPECT_EQ(rebuilt.buckets, cur.buckets);
  EXPECT_EQ(rebuilt.count, cur.count);
  EXPECT_EQ(rebuilt.sum, cur.sum);
  EXPECT_EQ(rebuilt.max, cur.max);
}

TEST(HistogramDelta, EmptyWhenNothingRecordedBetweenSnapshots) {
  MetricRegistry reg;
  Histogram h(reg, "test.hdelta.idle_ns");
  h.record(42);
  const HistogramState prev = reg.histogram_states().at("test.hdelta.idle_ns");
  const HistogramState delta = histogram_delta(prev, prev);
  EXPECT_EQ(delta.count, 0u);
  EXPECT_EQ(delta.sum, 0u);
  for (const auto bucket : delta.buckets) EXPECT_EQ(bucket, 0u);
}

}  // namespace
}  // namespace hw::telemetry
