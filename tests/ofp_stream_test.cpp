// Stream-framed secure channel: framer reassembly/split/reject behavior,
// the InProc-vs-Stream differential (same scenario, bit-identical telemetry
// and identical delivered message sequences), and liveness over a stalled
// stream with resync through the framed channel after reconnect.
#include "openflow/stream_channel.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "homework/router.hpp"
#include "openflow/messages.hpp"
#include "sim/host.hpp"
#include "telemetry/metrics.hpp"

namespace hw::ofp {
namespace {

Bytes wire(std::uint32_t xid) { return encode({xid, Hello{}}); }

std::vector<Bytes> collect(StreamFramer& framer,
                           std::span<const std::uint8_t> data) {
  std::vector<Bytes> out;
  framer.feed(data, [&out](const Bytes& frame) { out.push_back(frame); });
  return out;
}

TEST(StreamFramer, SplitsCoalescedReads) {
  StreamFramer framer;
  Bytes stream = wire(1);
  const Bytes second = wire(2);
  stream.insert(stream.end(), second.begin(), second.end());

  const auto frames = collect(framer, stream);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], wire(1));
  EXPECT_EQ(frames[1], wire(2));
  EXPECT_EQ(framer.stats().frames_ok, 2u);
  EXPECT_EQ(framer.stats().frames_coalesced, 2u);
  EXPECT_EQ(framer.stats().frames_partial, 0u);
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(StreamFramer, ReassemblesByteByByte) {
  StreamFramer framer;
  const Bytes msg = encode({9, EchoRequest{{1, 2, 3, 4}}});
  std::vector<Bytes> frames;
  for (const std::uint8_t byte : msg) {
    framer.feed(std::span<const std::uint8_t>(&byte, 1),
                [&frames](const Bytes& f) { frames.push_back(f); });
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], msg);
  EXPECT_EQ(framer.stats().frames_partial, 1u);
  EXPECT_EQ(framer.stats().frames_coalesced, 0u);
}

TEST(StreamFramer, ForeignVersionSkippedWholeKeepsAlignment) {
  StreamFramer framer;
  Bytes stream = wire(1);
  stream[0] = 0x04;  // OF 1.3 HELLO: well-framed, wrong version
  const Bytes valid = wire(2);
  stream.insert(stream.end(), valid.begin(), valid.end());

  const auto frames = collect(framer, stream);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], valid);
  EXPECT_EQ(framer.stats().frames_bad, 1u);
  EXPECT_EQ(framer.stats().frames_ok, 1u);
}

TEST(StreamFramer, GarbagePrefixScansToNextValidHeader) {
  StreamFramer framer;
  Bytes stream(37, 0x00);  // version 0, length 0: unconditionally rejected
  const Bytes valid = wire(3);
  stream.insert(stream.end(), valid.begin(), valid.end());

  const auto frames = collect(framer, stream);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], valid);
  // One contiguous scan run counts once, however many bytes it shed.
  EXPECT_EQ(framer.stats().frames_bad, 1u);
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(StreamFramer, OversizedHeaderRejectedWithoutSwallowingTheStream) {
  StreamFramer framer({/*max_frame=*/64});
  Bytes stream = {kWireVersion, 0, 0xff, 0xff, 0, 0, 0, 1};  // claims 65535
  const Bytes valid = wire(4);
  stream.insert(stream.end(), valid.begin(), valid.end());

  const auto frames = collect(framer, stream);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], valid);
  EXPECT_GE(framer.stats().frames_bad, 1u);
}

TEST(StreamFramer, ResetDropsPartialFrame) {
  StreamFramer framer;
  const Bytes msg = encode({5, EchoRequest{{7, 7, 7}}});
  const auto none = collect(
      framer, std::span<const std::uint8_t>(msg.data(), msg.size() - 2));
  EXPECT_TRUE(none.empty());
  EXPECT_GT(framer.buffered(), 0u);

  framer.reset();  // reconnect: fresh stream
  EXPECT_EQ(framer.buffered(), 0u);
  const auto frames = collect(framer, msg);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], msg);
}

// ---------------------------------------------------------------------------
// Differential: the same seeded fig5-style scenario over InProcConnection and
// over the framed stream channel must produce bit-identical non-histogram
// telemetry (transport-specific series aside) and identical delivered
// message sequences in both directions.

struct ScenarioResult {
  std::map<std::string, double> scalars;
  std::vector<Bytes> to_controller;
  std::vector<Bytes> to_datapath;
  bool bound = false;
};

ScenarioResult run_scenario(homework::HomeworkRouter::Config::Transport t) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);
  sim::EventLoop loop;
  Rng rng(2011);

  homework::HomeworkRouter::Config cfg;
  cfg.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  cfg.transport = t;
  homework::HomeworkRouter router(loop, rng, cfg, registry);

  ScenarioResult out;
  router.connection().controller_end().set_tap(
      [&out](const Bytes& m) { out.to_controller.push_back(m); });
  router.connection().datapath_end().set_tap(
      [&out](const Bytes& m) { out.to_datapath.push_back(m); });

  sim::Host::Config hc;
  hc.name = "a";
  hc.mac = MacAddress::from_index(1);
  sim::Host a(loop, hc, rng);
  hc.name = "b";
  hc.mac = MacAddress::from_index(2);
  sim::Host b(loop, hc, rng);
  router.attach_device(a, std::nullopt);
  router.attach_device(b, std::nullopt);
  router.start();

  a.start_dhcp();
  loop.run_for(kSecond);
  b.start_dhcp();
  loop.run_for(kSecond);
  if (a.ip() && b.ip()) {
    out.bound = true;
    (void)a.send_udp(b.ip().value(), 40000, 7, 64);  // local flow setup
    loop.run_for(kSecond);
    (void)a.ping(cfg.router_ip, 1);
    loop.run_for(kSecond);
  }
  out.scalars = registry.scalars();
  return out;
}

/// Strips series only one transport produces (the stream pipe and framer
/// instruments); everything else must match exactly.
std::map<std::string, double> comparable(
    const std::map<std::string, double>& in) {
  std::map<std::string, double> out;
  for (const auto& [name, value] : in) {
    if (name.rfind("sim.stream.", 0) == 0) continue;
    if (name.rfind("openflow.channel.frames_", 0) == 0) continue;
    // Meta-telemetry: these count telemetry series/rows themselves, and the
    // stream transport legitimately registers extra series (the pipe and
    // framer instruments above), so the export row counts differ by exactly
    // that series delta. Everything they summarize is compared directly.
    if (name == "homework.metrics_export.rows_exported") continue;
    if (name == "hwdb.database.inserts") continue;
    out.emplace(name, value);
  }
  return out;
}

TEST(StreamDifferential, SameScenarioSameTelemetrySameMessageSequences) {
  using Transport = homework::HomeworkRouter::Config::Transport;
  const ScenarioResult inproc = run_scenario(Transport::InProc);
  const ScenarioResult stream = run_scenario(Transport::Stream);

  ASSERT_TRUE(inproc.bound);
  ASSERT_TRUE(stream.bound);
  EXPECT_EQ(inproc.to_controller, stream.to_controller);
  EXPECT_EQ(inproc.to_datapath, stream.to_datapath);
  EXPECT_GT(stream.to_controller.size(), 4u);  // HELLO/FEATURES + traffic
  const auto lhs = comparable(inproc.scalars);
  const auto rhs = comparable(stream.scalars);
  for (const auto& [name, value] : lhs) {
    const auto it = rhs.find(name);
    if (it == rhs.end()) {
      ADD_FAILURE() << "stream run missing series " << name;
    } else {
      EXPECT_EQ(value, it->second) << "series " << name;
    }
  }
  for (const auto& [name, value] : rhs) {
    EXPECT_EQ(lhs.count(name), 1u)
        << "inproc run missing series " << name << " = " << value;
  }
  // The stream run really did go through the framer.
  EXPECT_GT(stream.scalars.at("openflow.channel.frames_ok"), 0.0);
  EXPECT_EQ(stream.scalars.at("openflow.channel.frames_bad"), 0.0);
}

// ---------------------------------------------------------------------------
// Liveness under partial delivery: a stalled stream (bytes in flight frozen,
// possibly mid-frame under a tiny read ceiling) must cross the miss
// threshold, and a reconnect must resync the datapath's flows through the
// framed channel.

TEST(StreamLiveness, StalledStreamGoesDeadThenResyncsAfterReconnect) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);
  sim::EventLoop loop;
  Rng rng(7);

  homework::HomeworkRouter::Config cfg;
  cfg.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  cfg.transport = homework::HomeworkRouter::Config::Transport::Stream;
  cfg.channel_mtu = 5;  // every message arrives in partial reads
  cfg.liveness.probe_interval = kSecond;
  cfg.liveness.max_misses = 2;
  // This test exercises the legacy replay-resync through the framed channel
  // (the reconciler would instead prove the surviving table converged and
  // send nothing — covered by the reconcile/chaos suites).
  cfg.resync = homework::HomeworkRouter::Config::Resync::Replay;
  homework::HomeworkRouter router(loop, rng, cfg, registry);

  sim::Host::Config hc;
  hc.name = "a";
  hc.mac = MacAddress::from_index(1);
  sim::Host a(loop, hc, rng);
  router.attach_device(a, std::nullopt);
  router.start();
  a.start_dhcp();
  loop.run_for(2 * kSecond);
  ASSERT_TRUE(a.ip().has_value());

  auto& conn = dynamic_cast<StreamConnection&>(router.connection());
  EXPECT_GT(conn.controller_channel().framer().stats().frames_partial, 0u)
      << "tiny mtu must force reassembly from partial reads";

  std::vector<nox::DatapathId> dead;
  router.liveness().on_dead([&dead](nox::DatapathId d) { dead.push_back(d); });

  conn.link().stall();  // half-open: sends queue, nothing delivered
  loop.run_for(5 * kSecond);
  ASSERT_EQ(dead.size(), 1u) << "stalled stream must cross the miss threshold";
  EXPECT_EQ(dead[0], router.datapath().id());

  // Reconnect: the cut drops the frozen in-flight bytes (mid-frame), both
  // framers reset, and the liveness recovery replays every module's flows.
  conn.link().unstall();
  conn.disconnect();
  conn.reconnect();
  EXPECT_GT(conn.link().stats().cut_bytes, 0u)
      << "the stall left bytes in flight for the cut to drop";
  loop.run_for(5 * kSecond);

  const nox::LivenessMonitor::PeerState* peer =
      router.liveness().peer(router.datapath().id());
  ASSERT_NE(peer, nullptr);
  EXPECT_TRUE(peer->alive);
  EXPECT_GT(router.controller().stats().resynced_flows, 0u)
      << "recovery must replay module flow setup through the framed channel";
  EXPECT_GT(router.datapath().table().size(), 0u);
}

}  // namespace
}  // namespace hw::ofp
