// The Homework DHCP server module: admission gating (Figure 3 semantics),
// lease lifecycle, isolation netmask, pool management and expiry.
#include "router_fixture.hpp"
#include "scenario/scenario.hpp"

namespace hw::homework {
namespace {

using testing::RouterFixture;

struct DhcpFixture : RouterFixture {};

TEST_F(DhcpFixture, PendingDeviceGetsSilence) {
  sim::Host& host = make_device("newbie");
  host.start_dhcp();
  loop.run_for(3 * kSecond);
  EXPECT_FALSE(host.ip().has_value());
  EXPECT_EQ(host.dhcp_state(), sim::DhcpClientState::Selecting);
  // ... but the router saw it: it shows on the control board as pending.
  const DeviceRecord* rec = router.registry().find(host.mac());
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, DeviceState::Pending);
  EXPECT_GT(router.dhcp().stats().ignored_pending, 0u);
  EXPECT_EQ(router.dhcp().stats().offers, 0u);
}

TEST_F(DhcpFixture, PermittedDeviceLeases) {
  sim::Host& host = make_device("laptop");
  permit(host);
  auto ip = bind(host);
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(router.config().subnet.contains(*ip));
  const DeviceRecord* rec = router.registry().find(host.mac());
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->lease.has_value());
  EXPECT_EQ(rec->lease->ip, *ip);
  EXPECT_EQ(rec->lease->hostname, "laptop");
  EXPECT_EQ(router.dhcp().stats().acks, 1u);
}

TEST_F(DhcpFixture, IsolationMaskIsSlash32) {
  sim::Host& host = make_device("laptop");
  permit(host);
  bind(host);
  // The /32 mask means the client routes everything via the router — its
  // gateway is set and it has no on-link peers.
  EXPECT_EQ(host.gateway(), router.config().router_ip);
  EXPECT_EQ(host.dns_server(), router.config().router_ip);
}

TEST_F(DhcpFixture, DeniedDeviceGetsNak) {
  sim::Host& host = make_device("banned");
  deny(host);
  int naks = 0;
  host.on_nak([&] { ++naks; });
  host.start_dhcp();
  loop.run_for(2 * kSecond);
  EXPECT_FALSE(host.ip().has_value());
  EXPECT_GE(naks, 1);
  EXPECT_GE(router.dhcp().stats().naks, 1u);
}

TEST_F(DhcpFixture, PermitAfterPendingUnblocks) {
  sim::Host& host = make_device("eventually");
  host.start_dhcp();
  loop.run_for(3 * kSecond);
  EXPECT_FALSE(host.ip().has_value());
  permit(host);
  loop.run_for(5 * kSecond);  // client retries DISCOVER every 2s
  EXPECT_TRUE(host.ip().has_value());
}

TEST_F(DhcpFixture, StickyAllocationAcrossRestart) {
  sim::Host& host = make_device("laptop");
  permit(host);
  const auto first = bind(host);
  ASSERT_TRUE(first.has_value());
  host.release_dhcp();
  loop.run_for(kSecond);
  const auto second = bind(host);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);
}

TEST_F(DhcpFixture, DistinctDevicesDistinctAddresses) {
  sim::Host& a = admitted_device("a");
  sim::Host& b = admitted_device("b");
  sim::Host& c = admitted_device("c");
  EXPECT_NE(a.ip(), b.ip());
  EXPECT_NE(b.ip(), c.ip());
  EXPECT_NE(a.ip(), c.ip());
}

TEST_F(DhcpFixture, ReleaseClearsLeaseInRegistry) {
  sim::Host& host = admitted_device("laptop");
  host.release_dhcp();
  loop.run_for(kSecond);
  const DeviceRecord* rec = router.registry().find(host.mac());
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->lease.has_value());
  EXPECT_EQ(router.dhcp().stats().releases, 1u);
}

TEST_F(DhcpFixture, RenewalKeepsAddress) {
  sim::Host& host = admitted_device("laptop");
  const auto ip = host.ip();
  // Lease 3600s → client renews at 1800s.
  loop.run_for(1900 * kSecond);
  EXPECT_EQ(host.ip(), ip);
  EXPECT_EQ(host.dhcp_state(), sim::DhcpClientState::Bound);
  EXPECT_GE(router.dhcp().stats().acks, 2u);
}

TEST_F(DhcpFixture, DenyAfterLeaseNaksRenewal) {
  sim::Host& host = admitted_device("laptop");
  deny(host);
  int naks = 0;
  host.on_nak([&] { ++naks; });
  host.start_dhcp();  // re-request
  loop.run_for(2 * kSecond);
  EXPECT_GE(naks, 1);
  EXPECT_FALSE(host.ip().has_value());
}

TEST_F(DhcpFixture, LeaseEventsLandInHwdb) {
  sim::Host& host = admitted_device("laptop");
  (void)host;
  auto rs = router.db().query(
      "SELECT mac, event FROM Leases WHERE event = 'lease_granted'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].as_text(), host.mac().to_string());
}

struct SmallPoolFixture : RouterFixture {
  static HomeworkRouter::Config small_pool() {
    auto config = default_config();
    config.admission = DeviceRegistry::AdmissionDefault::PermitAll;
    config.pool_start = Ipv4Address{192, 168, 1, 100};
    config.pool_end = Ipv4Address{192, 168, 1, 101};  // two addresses
    return config;
  }
  SmallPoolFixture() : RouterFixture(small_pool()) {}
};

TEST_F(SmallPoolFixture, PoolExhaustionLeavesThirdDeviceUnserved) {
  sim::Host& a = make_device("a");
  sim::Host& b = make_device("b");
  sim::Host& c = make_device("c");
  ASSERT_TRUE(bind(a).has_value());
  ASSERT_TRUE(bind(b).has_value());
  EXPECT_FALSE(bind(c, 3 * kSecond).has_value());
  EXPECT_GT(router.dhcp().stats().pool_exhausted, 0u);
}

TEST_F(SmallPoolFixture, ExhaustionNeverDoubleAllocates) {
  sim::Host& a = make_device("a");
  sim::Host& b = make_device("b");
  sim::Host& c = make_device("c");
  ASSERT_TRUE(bind(a).has_value());
  ASSERT_TRUE(bind(b).has_value());
  EXPECT_FALSE(bind(c, 3 * kSecond).has_value());
  // The two live leases stay distinct and the unserved device was ignored,
  // not NAKed (it may be served later when the pool frees up).
  EXPECT_NE(a.ip(), b.ip());
  EXPECT_EQ(c.stats().dhcp_naks, 0u);
  const DeviceRecord* rec_c = router.registry().find(c.mac());
  ASSERT_NE(rec_c, nullptr);
  EXPECT_FALSE(rec_c->lease.has_value());
}

struct SmallPoolShortLeaseFixture : RouterFixture {
  static HomeworkRouter::Config config() {
    auto c = SmallPoolFixture::small_pool();
    c.lease_secs = 10;  // renewal fires at 5s, mid-exhaustion
    return c;
  }
  SmallPoolShortLeaseFixture() : RouterFixture(config()) {}
};

TEST_F(SmallPoolShortLeaseFixture, RenewDuringExhaustionKeepsLease) {
  sim::Host& a = make_device("a");
  sim::Host& b = make_device("b");
  const auto ip_a = bind(a);
  const auto ip_b = bind(b);
  ASSERT_TRUE(ip_a.has_value());
  ASSERT_TRUE(ip_b.has_value());
  // A third device hammers the empty pool while a and b renew through it.
  sim::Host& c = make_device("c");
  c.start_dhcp();
  loop.run_for(12 * kSecond);
  EXPECT_GT(router.dhcp().stats().pool_exhausted, 0u);
  // Renewals (REQUEST against the sticky allocation) succeeded: same
  // addresses, still bound, never NAKed.
  EXPECT_EQ(a.ip(), ip_a);
  EXPECT_EQ(b.ip(), ip_b);
  EXPECT_EQ(a.dhcp_state(), sim::DhcpClientState::Bound);
  EXPECT_GE(a.stats().dhcp_acks, 2u);
  EXPECT_EQ(a.stats().dhcp_naks, 0u);
  EXPECT_EQ(b.stats().dhcp_naks, 0u);
  const DeviceRecord* rec_a = router.registry().find(a.mac());
  const DeviceRecord* rec_b = router.registry().find(b.mac());
  ASSERT_NE(rec_a, nullptr);
  ASSERT_NE(rec_b, nullptr);
  ASSERT_TRUE(rec_a->lease.has_value());
  ASSERT_TRUE(rec_b->lease.has_value());
  EXPECT_NE(rec_a->lease->ip, rec_b->lease->ip);
}

struct SpoofedPoolFixture : RouterFixture {
  static HomeworkRouter::Config config() {
    auto c = SmallPoolFixture::small_pool();
    c.dhcp_offer_hold = 2 * kSecond;
    return c;
  }
  SpoofedPoolFixture() : RouterFixture(config()) {}
};

TEST_F(SpoofedPoolFixture, UnclaimedSpoofedOffersExpireBackIntoPool) {
  // An attacker NIC behind port 2 sprays DISCOVERs from two spoofed MACs —
  // enough to drain the whole two-address pool with unclaimed offers.
  make_device("attacker-nic");
  sim::DuplexLink* link = last_link();
  ASSERT_NE(link, nullptr);
  for (std::uint32_t i = 0; i < 2; ++i) {
    link->a_to_b().send(scenario::spoofed_discover(
        MacAddress::from_index(0x200000u + i), 0x1000u + i, "spoof"));
  }
  loop.run_for(200 * kMillisecond);
  EXPECT_EQ(router.dhcp().stats().offers, 2u);

  // A legitimate device now finds the pool dry (counted, silently ignored)…
  sim::Host& legit = make_device("legit");
  legit.start_dhcp();
  loop.run_for(500 * kMillisecond);
  EXPECT_FALSE(legit.ip().has_value());
  EXPECT_GT(router.dhcp().stats().pool_exhausted, 0u);
  EXPECT_EQ(legit.stats().dhcp_naks, 0u);

  // …until the never-ACKed offers expire after offer_hold and the client's
  // periodic retry claims a freed address.
  loop.run_for(6 * kSecond);
  EXPECT_GE(router.dhcp().stats().offers_expired, 2u);
  EXPECT_TRUE(legit.ip().has_value());
}

struct ShortLeaseFixture : RouterFixture {
  static HomeworkRouter::Config short_lease() {
    auto config = default_config();
    config.admission = DeviceRegistry::AdmissionDefault::PermitAll;
    config.lease_secs = 10;
    return config;
  }
  ShortLeaseFixture() : RouterFixture(short_lease()) {}
};

TEST_F(ShortLeaseFixture, UnrenewedLeaseExpiresInRegistry) {
  sim::Host& host = make_device("flaky");
  ASSERT_TRUE(bind(host).has_value());
  // Detach the device so it cannot renew: silence from the client side.
  host.attach_uplink(nullptr);
  loop.run_for(30 * kSecond);
  const DeviceRecord* rec = router.registry().find(host.mac());
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->lease.has_value());
  EXPECT_GT(router.dhcp().stats().expired, 0u);
  // The expiry shows in hwdb's Leases table too (artifact mode 3 blue flash).
  auto rs = router.db().query(
      "SELECT mac FROM Leases WHERE event = 'lease_expired'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows.size(), 1u);
}

}  // namespace
}  // namespace hw::homework
