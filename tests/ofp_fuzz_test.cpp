// Malformed-message property/fuzz suite for the stream framer and wire
// codec: random truncations, byte flips and garbage prefixes must surface as
// errors or rejected frames — never a crash, and never a permanent desync
// that keeps subsequent valid messages from being delivered. CI runs this
// suite under ASan/UBSan.
#include <gtest/gtest.h>

#include <vector>

#include "openflow/messages.hpp"
#include "openflow/stream_channel.hpp"
#include "util/rand.hpp"

namespace hw::ofp {
namespace {

Envelope sample_flow_mod(std::uint32_t xid) {
  FlowMod mod;
  mod.match = Match::any().with_in_port(3).with_dl_type(0x0800);
  mod.cookie = 0x1122334455667788ull;
  mod.idle_timeout = 10;
  mod.actions = {ActionSetDlDst{MacAddress::from_index(9)},
                 ActionOutput{4, 0}};
  return {xid, mod};
}

TEST(OfpFuzz, GarbagePrefixNeverPermanentlyDesyncs) {
  Rng rng(0xfeedfaceull);
  for (int trial = 0; trial < 200; ++trial) {
    StreamFramer framer;
    Bytes garbage(rng.uniform(100));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.uniform(256));
    }
    std::size_t delivered = 0;
    const StreamFramer::FrameSink sink = [&delivered](const Bytes&) {
      ++delivered;
    };
    framer.feed(garbage, sink);

    // Whatever the garbage looked like — including bytes that resemble a
    // huge foreign-version frame the framer has to skip through — a stream
    // of valid messages must resume delivery within one max_frame's worth
    // of traffic.
    const Bytes valid = encode({static_cast<std::uint32_t>(trial), Hello{}});
    bool resumed = false;
    for (int i = 0; i < 20000 && !resumed; ++i) {
      delivered = 0;
      framer.feed(valid, sink);
      resumed = delivered > 0;
    }
    EXPECT_TRUE(resumed) << "permanent desync in trial " << trial;
  }
}

TEST(OfpFuzz, RandomTruncationThenReconnectDeliversCleanly) {
  Rng rng(2011);
  const Bytes full = encode(sample_flow_mod(77));
  for (int trial = 0; trial < 200; ++trial) {
    StreamFramer framer;
    const std::size_t cut = 1 + rng.uniform(static_cast<std::uint32_t>(full.size() - 1));
    std::vector<Bytes> frames;
    const StreamFramer::FrameSink sink = [&frames](const Bytes& f) {
      frames.push_back(f);
    };
    framer.feed(std::span<const std::uint8_t>(full.data(), cut), sink);
    EXPECT_TRUE(frames.empty()) << "truncated message must not be emitted";

    // The connection drops mid-message; the reconnect resets the framer and
    // the retransmitted message arrives exactly once.
    framer.reset();
    EXPECT_EQ(framer.buffered(), 0u);
    framer.feed(full, sink);
    ASSERT_EQ(frames.size(), 1u) << "trial " << trial;
    EXPECT_EQ(frames[0], full);
  }
}

TEST(OfpFuzz, ByteFlipsAtEveryPositionNeverCrashOrDesync) {
  Rng rng(42);
  const Bytes base = encode(sample_flow_mod(5));
  const Bytes trailer = encode({0xabcd, Hello{}});
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    StreamFramer framer;
    Bytes flipped = base;
    flipped[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    std::vector<Bytes> frames;
    const StreamFramer::FrameSink sink = [&frames](const Bytes& f) {
      frames.push_back(f);
    };
    framer.feed(flipped, sink);
    framer.feed(trailer, sink);

    // Every emitted frame must survive the decoder (errors are fine, crashes
    // and overreads are not — ASan/UBSan watch this loop).
    for (const Bytes& frame : frames) {
      const auto decoded = decode(frame);
      (void)decoded;
    }
    // A body flip leaves framing intact: the mangled frame is emitted and
    // the next valid message comes through aligned. Header flips (version or
    // length bytes) may force a skip or a byte-wise resync scan, which can't
    // promise immediate alignment — but a flood of valid messages must
    // always resume delivery.
    if (pos >= 4) {
      ASSERT_FALSE(frames.empty()) << "flip at " << pos;
      EXPECT_EQ(frames.back(), trailer) << "desync after flip at " << pos;
    } else {
      bool resumed = !frames.empty() && frames.back() == trailer;
      for (int i = 0; i < 20000 && !resumed; ++i) {
        frames.clear();
        framer.feed(trailer, sink);
        resumed = !frames.empty() && frames.back() == trailer;
      }
      EXPECT_TRUE(resumed) << "permanent desync after flip at " << pos;
    }
  }
}

TEST(OfpFuzz, ArbitraryChunkingDeliversIdenticalSequence) {
  Rng rng(7);
  std::vector<Bytes> messages;
  Bytes stream;
  for (std::uint32_t i = 0; i < 40; ++i) {
    Envelope env = (i % 3 == 0) ? Envelope{i, Hello{}}
                   : (i % 3 == 1)
                       ? Envelope{i, EchoRequest{Bytes(rng.uniform(64), 0x5a)}}
                       : sample_flow_mod(i);
    messages.push_back(encode(env));
    stream.insert(stream.end(), messages.back().begin(),
                  messages.back().end());
  }

  for (int trial = 0; trial < 100; ++trial) {
    StreamFramer framer;
    std::vector<Bytes> frames;
    const StreamFramer::FrameSink sink = [&frames](const Bytes& f) {
      frames.push_back(f);
    };
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.uniform(48), stream.size() - off);
      framer.feed(std::span<const std::uint8_t>(stream.data() + off, n), sink);
      off += n;
    }
    ASSERT_EQ(frames, messages) << "chunking changed the message sequence";
    EXPECT_EQ(framer.buffered(), 0u);
  }
}

TEST(OfpFuzz, MangledStreamsNeverCrashTheDecoder) {
  Rng rng(0xc0ffee);
  Bytes clean;
  for (std::uint32_t i = 0; i < 20; ++i) {
    const Bytes msg = encode(sample_flow_mod(i));
    clean.insert(clean.end(), msg.begin(), msg.end());
  }
  for (int trial = 0; trial < 300; ++trial) {
    Bytes stream = clean;
    const int flips = 1 + static_cast<int>(rng.uniform(8));
    for (int f = 0; f < flips; ++f) {
      stream[rng.uniform(static_cast<std::uint32_t>(stream.size()))] ^=
          static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    StreamFramer framer;
    std::size_t decoded_frames = 0;
    std::size_t off = 0;
    const StreamFramer::FrameSink sink = [&decoded_frames](const Bytes& f) {
      const auto d = decode(f);
      if (d.ok()) ++decoded_frames;
    };
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.uniform(32), stream.size() - off);
      framer.feed(std::span<const std::uint8_t>(stream.data() + off, n), sink);
      off += n;
    }
    // Most messages survive a handful of flips; the point is that none of
    // the mangled ones took the process down.
    EXPECT_LE(decoded_frames, 20u);
  }
}

}  // namespace
}  // namespace hw::ofp
