// Simulator tests: event loop determinism, link models, wireless signal
// model and the host's DHCP client state machine against a scripted server.
#include <gtest/gtest.h>

#include <cstdio>

#include "net/dhcp.hpp"
#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/pcap.hpp"
#include "sim/trace.hpp"
#include "sim/wireless.hpp"

namespace hw::sim {
namespace {

// ---------------------------------------------------------------------------
// EventLoop

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(300, [&] { order.push_back(3); });
  loop.schedule_at(100, [&] { order.push_back(1); });
  loop.schedule_at(200, [&] { order.push_back(2); });
  loop.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 1000u);
}

TEST(EventLoop, FifoAmongSameTimestamp) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(50, [&, i] { order.push_back(i); });
  }
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, DeadlineStopsExecution) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(100, [&] { ++ran; });
  loop.schedule_at(200, [&] { ++ran; });
  loop.run_until(150);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), 150u);
  loop.run_until(250);
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  int ran = 0;
  auto id = loop.schedule_at(100, [&] { ++ran; });
  loop.schedule_at(100, [&] { ++ran; });
  loop.cancel(id);
  loop.run_all();
  EXPECT_EQ(ran, 1);
}

TEST(EventLoop, EventsScheduledDuringRunExecute) {
  EventLoop loop;
  int depth2 = 0;
  loop.schedule_at(10, [&] {
    loop.schedule(5, [&] { ++depth2; });
  });
  loop.run_until(100);
  EXPECT_EQ(depth2, 1);
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  loop.run_until(500);
  Timestamp fired_at = 0;
  loop.schedule_at(100, [&] { fired_at = loop.now(); });
  loop.run_until(600);
  EXPECT_EQ(fired_at, 500u);
}

TEST(PeriodicTimer, FiresAtPeriodUntilStopped) {
  EventLoop loop;
  int fires = 0;
  PeriodicTimer timer(loop, 100, [&] { ++fires; });
  timer.start();
  loop.run_until(1000);
  EXPECT_EQ(fires, 10);
  timer.stop();
  loop.run_until(2000);
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTimer, StopFromWithinCallback) {
  EventLoop loop;
  int fires = 0;
  PeriodicTimer timer(loop, 10, [&] {
    if (++fires == 3) {
      // The timer is stopped from its own callback; no further fires.
    }
  });
  timer.start();
  loop.schedule_at(25, [&] { timer.stop(); });
  loop.run_until(1000);
  EXPECT_EQ(fires, 2);
}

// ---------------------------------------------------------------------------
// Links

class Collector final : public FrameSink {
 public:
  void deliver(const Bytes& frame) override { frames.push_back(frame); }
  std::vector<Bytes> frames;
};

TEST(Link, DeliversWithLatencyAndSerialization) {
  EventLoop loop;
  LinkChannel::Config config;
  config.bandwidth_bps = 8'000'000;  // 1 byte/us
  config.latency = 100;
  LinkChannel link(loop, config);
  Collector sink;
  link.connect(&sink);

  link.send(Bytes(500, 0));
  loop.run_until(100 + 500 - 1);
  EXPECT_TRUE(sink.frames.empty());
  loop.run_until(100 + 500);
  ASSERT_EQ(sink.frames.size(), 1u);
}

TEST(Link, FramesQueueBehindEachOther) {
  EventLoop loop;
  LinkChannel::Config config;
  config.bandwidth_bps = 8'000'000;
  config.latency = 0;
  LinkChannel link(loop, config);
  Collector sink;
  link.connect(&sink);

  link.send(Bytes(1000, 0));  // tx 1000us
  link.send(Bytes(1000, 0));  // queued: arrives at 2000us
  loop.run_until(1500);
  EXPECT_EQ(sink.frames.size(), 1u);
  loop.run_until(2000);
  EXPECT_EQ(sink.frames.size(), 2u);
}

TEST(Link, QueueLimitTailDrops) {
  EventLoop loop;
  LinkChannel::Config config;
  config.queue_limit = 2;
  LinkChannel link(loop, config);
  Collector sink;
  link.connect(&sink);
  EXPECT_TRUE(link.send(Bytes(100, 0)));
  EXPECT_TRUE(link.send(Bytes(100, 0)));
  EXPECT_FALSE(link.send(Bytes(100, 0)));  // dropped
  EXPECT_EQ(link.stats().dropped_frames, 1u);
  loop.run_all();
  EXPECT_EQ(sink.frames.size(), 2u);
}

TEST(Link, LossProbabilityDrops) {
  EventLoop loop;
  Rng rng(11);
  LinkChannel::Config config;
  config.loss_probability = 0.5;
  config.queue_limit = 100000;  // isolate the loss model from tail drops
  LinkChannel link(loop, config, &rng);
  Collector sink;
  link.connect(&sink);
  for (int i = 0; i < 1000; ++i) link.send(Bytes(10, 0));
  loop.run_all();
  // Statistically ~500; allow a generous band.
  EXPECT_GT(sink.frames.size(), 350u);
  EXPECT_LT(sink.frames.size(), 650u);
  EXPECT_EQ(sink.frames.size() + link.stats().dropped_frames, 1000u);
}

TEST(Link, NoSinkMeansNoDelivery) {
  EventLoop loop;
  LinkChannel link(loop, {});
  EXPECT_FALSE(link.send(Bytes(10, 0)));
}

// ---------------------------------------------------------------------------
// Wireless model

TEST(Wireless, RssiFallsWithDistance) {
  WirelessConfig cfg;
  const double near = path_loss_rssi(cfg, 1);
  const double mid = path_loss_rssi(cfg, 10);
  const double far = path_loss_rssi(cfg, 30);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
}

TEST(Wireless, RetryProbabilityRisesAsSignalDegrades) {
  WirelessConfig cfg;
  const double strong = retry_probability(cfg, -40);
  const double weak = retry_probability(cfg, -85);
  EXPECT_LT(strong, 0.05);
  EXPECT_GT(weak, 0.5);
  EXPECT_LE(weak, 0.9);
}

TEST(Wireless, QualityNormalization) {
  EXPECT_DOUBLE_EQ(rssi_quality(-90), 0.0);
  EXPECT_DOUBLE_EQ(rssi_quality(-30), 1.0);
  EXPECT_NEAR(rssi_quality(-60), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(rssi_quality(-120), 0.0);  // clamped
}

TEST(Wireless, SampleClampedAtNoiseFloor) {
  WirelessConfig cfg;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(sample_rssi(cfg, 1000, rng), cfg.noise_floor_dbm);
  }
}

TEST(Wireless, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

// ---------------------------------------------------------------------------
// Host DHCP client against a scripted server

/// Minimal scripted DHCP server living directly on the host's uplink.
class ScriptedDhcpServer final : public FrameSink {
 public:
  ScriptedDhcpServer(EventLoop& loop, Host& client) : loop_(loop), client_(client) {}

  bool offer_enabled = true;
  bool ack_enabled = true;
  bool nak_requests = false;
  int discovers_seen = 0;
  int requests_seen = 0;

  void deliver(const Bytes& frame) override {
    auto p = net::ParsedPacket::parse(frame);
    if (!p.ok() || !p.value().is_dhcp()) return;
    auto msg = net::DhcpMessage::parse(p.value().l4_payload);
    if (!msg.ok()) return;
    const auto& m = msg.value();

    if (m.message_type == net::DhcpMessageType::Discover) {
      ++discovers_seen;
      if (!offer_enabled) return;
      reply(m, net::DhcpMessageType::Offer);
    } else if (m.message_type == net::DhcpMessageType::Request) {
      ++requests_seen;
      if (nak_requests) {
        reply(m, net::DhcpMessageType::Nak);
      } else if (ack_enabled) {
        reply(m, net::DhcpMessageType::Ack);
      }
    }
  }

 private:
  void reply(const net::DhcpMessage& req, net::DhcpMessageType type) {
    net::DhcpMessage resp;
    resp.is_request = false;
    resp.xid = req.xid;
    resp.chaddr = req.chaddr;
    resp.message_type = type;
    resp.server_identifier = Ipv4Address{192, 168, 1, 1};
    if (type != net::DhcpMessageType::Nak) {
      resp.yiaddr = Ipv4Address{192, 168, 1, 50};
      resp.lease_time_secs = 600;
      resp.router = Ipv4Address{192, 168, 1, 1};
      resp.dns_servers = {Ipv4Address{192, 168, 1, 1}};
      resp.subnet_mask = Ipv4Address{0xffffffffu};
    }
    const Bytes frame = net::build_dhcp_frame(
        MacAddress::from_index(0xff), req.chaddr, Ipv4Address{192, 168, 1, 1},
        Ipv4Address::broadcast(), false, resp.serialize());
    loop_.schedule(100, [this, frame] { client_.deliver(frame); });
  }

  EventLoop& loop_;
  Host& client_;
};

struct HostFixture : ::testing::Test {
  HostFixture() : rng(1), host(loop,
             {.name = "dev", .mac = MacAddress::from_index(9), .hostname = ""},
             rng) {
    uplink = std::make_unique<LinkChannel>(loop, LinkChannel::Config{});
    server = std::make_unique<ScriptedDhcpServer>(loop, host);
    uplink->connect(server.get());
    host.attach_uplink(uplink.get());
  }

  EventLoop loop;
  Rng rng;
  Host host;
  std::unique_ptr<LinkChannel> uplink;
  std::unique_ptr<ScriptedDhcpServer> server;
};

TEST_F(HostFixture, FullAcquisitionSequence) {
  EXPECT_EQ(host.dhcp_state(), DhcpClientState::Init);
  int bound_count = 0;
  host.on_bound([&] { ++bound_count; });
  host.start_dhcp();
  loop.run_for(kSecond);
  EXPECT_EQ(host.dhcp_state(), DhcpClientState::Bound);
  ASSERT_TRUE(host.ip().has_value());
  EXPECT_EQ(host.ip()->to_string(), "192.168.1.50");
  EXPECT_EQ(host.gateway()->to_string(), "192.168.1.1");
  EXPECT_EQ(host.dns_server()->to_string(), "192.168.1.1");
  EXPECT_EQ(bound_count, 1);
  EXPECT_EQ(server->discovers_seen, 1);
  EXPECT_EQ(server->requests_seen, 1);
}

TEST_F(HostFixture, RetransmitsDiscoverWhenUnanswered) {
  server->offer_enabled = false;
  host.start_dhcp();
  loop.run_for(7 * kSecond);
  // Initial + retries every 2s, capped by dhcp_max_retries (4).
  EXPECT_GE(server->discovers_seen, 3);
  EXPECT_EQ(host.dhcp_state(), DhcpClientState::Selecting);
  EXPECT_FALSE(host.ip().has_value());
}

TEST_F(HostFixture, GivesUpAfterMaxRetries) {
  server->offer_enabled = false;
  host.start_dhcp();
  loop.run_for(30 * kSecond);
  EXPECT_EQ(host.dhcp_state(), DhcpClientState::Init);
  EXPECT_EQ(server->discovers_seen, 5);  // initial + 4 retries
}

TEST_F(HostFixture, NakReturnsToInit) {
  server->nak_requests = true;
  int naks = 0;
  host.on_nak([&] { ++naks; });
  host.start_dhcp();
  loop.run_for(kSecond);
  EXPECT_EQ(naks, 1);
  EXPECT_EQ(host.dhcp_state(), DhcpClientState::Init);
  EXPECT_FALSE(host.ip().has_value());
  EXPECT_EQ(host.stats().dhcp_naks, 1u);
}

TEST_F(HostFixture, RenewsAtHalfLease) {
  host.start_dhcp();
  loop.run_for(kSecond);
  ASSERT_TRUE(host.ip().has_value());
  const int requests_before = server->requests_seen;
  // Lease is 600s; renewal at T1=300s.
  loop.run_for(301 * kSecond);
  EXPECT_GT(server->requests_seen, requests_before);
  EXPECT_EQ(host.dhcp_state(), DhcpClientState::Bound);
}

TEST_F(HostFixture, ReleaseClearsState) {
  host.start_dhcp();
  loop.run_for(kSecond);
  ASSERT_TRUE(host.ip().has_value());
  host.release_dhcp();
  EXPECT_EQ(host.dhcp_state(), DhcpClientState::Init);
  EXPECT_FALSE(host.ip().has_value());
}

TEST_F(HostFixture, IgnoresRepliesWithWrongXid) {
  host.start_dhcp();
  // Inject a forged OFFER with a wrong xid before the real one arrives.
  net::DhcpMessage forged;
  forged.is_request = false;
  forged.xid = 0xbadbad;
  forged.chaddr = host.mac();
  forged.message_type = net::DhcpMessageType::Offer;
  forged.yiaddr = Ipv4Address{10, 66, 66, 66};
  forged.server_identifier = Ipv4Address{10, 6, 6, 6};
  host.deliver(net::build_dhcp_frame(MacAddress::from_index(0xee), host.mac(),
                                     Ipv4Address{10, 6, 6, 6},
                                     Ipv4Address::broadcast(), false,
                                     forged.serialize()));
  loop.run_for(kSecond);
  // Bound via the legitimate exchange, not the forgery.
  EXPECT_EQ(host.ip()->to_string(), "192.168.1.50");
}

TEST_F(HostFixture, DnsTimeoutFailsClosed) {
  host.start_dhcp();
  loop.run_for(kSecond);
  ASSERT_TRUE(host.ip().has_value());
  // The scripted server answers DHCP only; DNS queries vanish → the stub
  // resolver times out after 3 s and reports the failure.
  std::string error;
  bool done = false;
  host.resolve("unanswered.example",
               [&](Result<Ipv4Address> r, const std::string&) {
                 done = true;
                 if (!r.ok()) error = r.error().message;
               });
  loop.run_for(4 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_NE(error.find("timeout"), std::string::npos);
  EXPECT_EQ(host.stats().dns_failures, 1u);
}

TEST_F(HostFixture, ResolveWithoutBindingFailsImmediately) {
  bool done = false;
  host.resolve("x.test", [&](Result<Ipv4Address> r, const std::string&) {
    done = true;
    EXPECT_FALSE(r.ok());
  });
  EXPECT_TRUE(done);
}

TEST_F(HostFixture, SendRequiresBinding) {
  EXPECT_FALSE(host.send_udp(Ipv4Address{1, 2, 3, 4}, 1, 2, 10));
  host.start_dhcp();
  loop.run_for(kSecond);
  EXPECT_TRUE(host.send_udp(Ipv4Address{1, 2, 3, 4}, 1, 2, 10));
}

// ---------------------------------------------------------------------------
// pcap export

TEST(Pcap, RoundTripThroughBytes) {
  Trace trace;
  const Bytes f1 = net::build_udp(MacAddress::from_index(1),
                                  MacAddress::from_index(2),
                                  Ipv4Address{1, 1, 1, 1},
                                  Ipv4Address{2, 2, 2, 2}, 10, 20, Bytes(40, 7));
  const Bytes f2 = net::build_icmp_echo(MacAddress::from_index(3),
                                        MacAddress::from_index(4),
                                        Ipv4Address{3, 3, 3, 3},
                                        Ipv4Address{4, 4, 4, 4},
                                        net::IcmpType::EchoRequest, 1, 2);
  trace.record(1'500'000, "uplink", f1);
  trace.record(2'000'001, "uplink", f2);

  const Bytes pcap = to_pcap(trace);
  // Global header invariants: little-endian magic, v2.4, Ethernet link type.
  ASSERT_GE(pcap.size(), 24u);
  EXPECT_EQ(pcap[0], 0xd4);
  EXPECT_EQ(pcap[1], 0xc3);
  EXPECT_EQ(pcap[2], 0xb2);
  EXPECT_EQ(pcap[3], 0xa1);
  EXPECT_EQ(pcap[20], 1u);  // LINKTYPE_ETHERNET, LE byte 0

  auto parsed = parse_pcap(pcap);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].time, 1'500'000u);
  EXPECT_EQ(parsed.value()[0].frame, f1);
  EXPECT_EQ(parsed.value()[1].time, 2'000'001u);
  EXPECT_EQ(parsed.value()[1].frame, f2);
  // The payloads still dissect as packets.
  EXPECT_TRUE(net::ParsedPacket::parse(parsed.value()[1].frame).ok());
}

TEST(Pcap, FileRoundTrip) {
  Trace trace;
  trace.record(42, "p", net::build_udp(MacAddress::from_index(1),
                                       MacAddress::from_index(2),
                                       Ipv4Address{1, 1, 1, 1},
                                       Ipv4Address{2, 2, 2, 2}, 1, 2,
                                       Bytes(10, 0)));
  const std::string path = ::testing::TempDir() + "/hw_trace_test.pcap";
  ASSERT_TRUE(write_pcap(trace, path).ok());
  auto back = read_pcap(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 1u);
  EXPECT_EQ(back.value()[0].time, 42u);
  std::remove(path.c_str());
}

TEST(Pcap, RejectsMalformed) {
  EXPECT_FALSE(parse_pcap(Bytes{1, 2, 3}).ok());
  Bytes bad_magic(24, 0);
  EXPECT_FALSE(parse_pcap(bad_magic).ok());
  // Truncated packet body.
  Trace trace;
  trace.record(0, "p", Bytes(64, 0));
  Bytes pcap = to_pcap(trace);
  pcap.resize(pcap.size() - 10);
  EXPECT_FALSE(parse_pcap(pcap).ok());
}

// ---------------------------------------------------------------------------
// Trace

TEST(Trace, RecordsAndFilters) {
  Trace trace;
  const Bytes frame = net::build_udp(MacAddress::from_index(1),
                                     MacAddress::from_index(2),
                                     Ipv4Address{1, 1, 1, 1},
                                     Ipv4Address{2, 2, 2, 2}, 10, 20, Bytes(4, 0));
  trace.record(100, "p1", frame);
  trace.record(200, "p2", frame);
  trace.record(300, "p1", Bytes{1, 2});  // unparseable
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.count_if([](const net::ParsedPacket& p) {
              return p.udp && p.udp->dst_port == 20;
            }),
            2u);
  EXPECT_EQ(trace.parsed_at("p1").size(), 1u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(Trace, RingCapDropsOldestAndCountsThem) {
  Trace trace(2);
  EXPECT_EQ(trace.max_entries(), 2u);
  trace.record(100, "p", Bytes{1});
  trace.record(200, "p", Bytes{2});
  EXPECT_EQ(trace.dropped(), 0u);
  trace.record(300, "p", Bytes{3});
  trace.record(400, "p", Bytes{4});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped(), 2u);
  // Oldest-first retention: the survivors are the newest two.
  EXPECT_EQ(trace.entries().front().time, 300u);
  EXPECT_EQ(trace.entries().back().time, 400u);

  // Unbounded traces never drop.
  Trace unbounded;
  for (int i = 0; i < 100; ++i) unbounded.record(i, "p", Bytes{0});
  EXPECT_EQ(unbounded.size(), 100u);
  EXPECT_EQ(unbounded.dropped(), 0u);
}

}  // namespace
}  // namespace hw::sim
