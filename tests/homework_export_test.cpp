// EventExport: the measurement plane's three standard tables must fill with
// deltas (Flows), samples (Links) and events (Leases) as traffic happens.
#include "router_fixture.hpp"

namespace hw::homework {
namespace {

using testing::RouterFixture;

struct ExportFixture : RouterFixture {
  static HomeworkRouter::Config config() {
    auto c = default_config();
    c.admission = DeviceRegistry::AdmissionDefault::PermitAll;
    return c;
  }
  ExportFixture() : RouterFixture(config()) {}

  std::optional<Ipv4Address> resolve(sim::Host& host, const std::string& name) {
    std::optional<Ipv4Address> out;
    host.resolve(name, [&](Result<Ipv4Address> r, const std::string&) {
      if (r.ok()) out = r.value();
    });
    loop.run_for(2 * kSecond);
    return out;
  }
};

TEST_F(ExportFixture, StandardTablesExist) {
  const auto names = router.db().table_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "Flows"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Links"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Leases"), names.end());
}

TEST_F(ExportFixture, FlowsTableRecordsTrafficDeltas) {
  sim::Host& host = make_device("laptop");
  ASSERT_TRUE(bind(host).has_value());
  const auto dst = resolve(host, "www.example.com");
  ASSERT_TRUE(dst.has_value());
  for (int i = 0; i < 20; ++i) {
    host.send_udp(*dst, 5000, 9999, 500);
    loop.run_for(200 * kMillisecond);
  }
  auto rs = router.db().query(
      "SELECT device, sum(bytes), sum(packets) FROM Flows "
      "WHERE dst_ip = '93.184.216.34' GROUP BY device");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].as_text(), host.mac().to_string());
  // 20 datagrams of ~542 bytes on the wire.
  EXPECT_GE(rs.value().rows[0][2].as_int(), 18);
  EXPECT_GT(rs.value().rows[0][1].as_int(), 9000);
}

TEST_F(ExportFixture, FlowsClassifiedByApp) {
  sim::Host& host = make_device("laptop");
  ASSERT_TRUE(bind(host).has_value());
  const auto dst = resolve(host, "www.example.com");
  ASSERT_TRUE(dst.has_value());
  for (int i = 0; i < 5; ++i) {
    host.send_tcp(*dst, 45000, 80, net::TcpFlags::kAck, 400);
    loop.run_for(300 * kMillisecond);
  }
  auto rs = router.db().query(
      "SELECT app, count(*) FROM Flows WHERE app = 'web' GROUP BY app");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().rows.size(), 1u);
}

TEST_F(ExportFixture, IdleFlowsProduceNoRows) {
  sim::Host& host = make_device("laptop");
  ASSERT_TRUE(bind(host).has_value());
  const auto inserted_before = router.db().table("Flows")->inserted();
  loop.run_for(5 * kSecond);  // no traffic at all
  EXPECT_EQ(router.db().table("Flows")->inserted(), inserted_before);
}

TEST_F(ExportFixture, LinksTableSamplesWirelessStations) {
  sim::Host& near = make_device("near", sim::Position{6, 5});
  sim::Host& far = make_device("far", sim::Position{45, 45});
  ASSERT_TRUE(bind(near).has_value());
  ASSERT_TRUE(bind(far).has_value());
  loop.run_for(5 * kSecond);

  auto rs = router.db().query(
      "SELECT mac, avg(rssi) FROM Links [RANGE 5 SECONDS] GROUP BY mac");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().rows.size(), 2u);
  double near_rssi = 0, far_rssi = 0;
  for (const auto& row : rs.value().rows) {
    if (row[0].as_text() == near.mac().to_string()) near_rssi = row[1].as_real();
    if (row[0].as_text() == far.mac().to_string()) far_rssi = row[1].as_real();
  }
  EXPECT_GT(near_rssi, far_rssi);  // closer station, stronger signal
}

TEST_F(ExportFixture, WiredDevicesAbsentFromLinks) {
  sim::Host& wired = make_device("printer");  // no position = wired
  ASSERT_TRUE(bind(wired).has_value());
  loop.run_for(3 * kSecond);
  auto rs = router.db().query("SELECT mac FROM Links WHERE mac = '" +
                              wired.mac().to_string() + "'");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs.value().rows.empty());
}

TEST_F(ExportFixture, RetriesAccumulateForWeakStations) {
  sim::Host& far = make_device("attic", sim::Position{60, 60});
  ASSERT_TRUE(bind(far).has_value());
  const auto dst = resolve(far, "www.example.com");
  ASSERT_TRUE(dst.has_value());
  for (int i = 0; i < 50; ++i) {
    far.send_udp(*dst, 5000, 9999, 200);
    loop.run_for(100 * kMillisecond);
  }
  auto rs = router.db().query(
      "SELECT mac, sum(retries), sum(tx) FROM Links GROUP BY mac");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_GT(rs.value().rows[0][2].as_int(), 0);  // transmissions counted
  EXPECT_GT(rs.value().rows[0][1].as_int(), 0);  // weak signal → retries
}

TEST_F(ExportFixture, LeaseEventsAppendRows) {
  sim::Host& host = make_device("phone", sim::Position{3, 3});
  ASSERT_TRUE(bind(host).has_value());
  host.release_dhcp();
  loop.run_for(kSecond);
  auto rs = router.db().query("SELECT event FROM Leases WHERE mac = '" +
                              host.mac().to_string() + "'");
  ASSERT_TRUE(rs.ok());
  std::vector<std::string> events;
  for (const auto& row : rs.value().rows) events.push_back(row[0].as_text());
  EXPECT_NE(std::find(events.begin(), events.end(), "discovered"), events.end());
  EXPECT_NE(std::find(events.begin(), events.end(), "lease_granted"),
            events.end());
  EXPECT_NE(std::find(events.begin(), events.end(), "lease_released"),
            events.end());
}

TEST(WirelessMap, StationLifecycleAndRetryModel) {
  Rng rng(3);
  homework::WirelessMap map({}, rng, sim::Position{0, 0});
  const MacAddress near_mac = MacAddress::from_index(1);
  const MacAddress far_mac = MacAddress::from_index(2);
  map.place_station(near_mac, sim::Position{1, 0});
  map.place_station(far_mac, sim::Position{60, 0});
  EXPECT_TRUE(map.has_station(near_mac));
  EXPECT_FALSE(map.has_station(MacAddress::from_index(9)));

  std::uint64_t near_retries = 0, far_retries = 0;
  for (int i = 0; i < 500; ++i) {
    near_retries += map.note_transmission(near_mac);
    far_retries += map.note_transmission(far_mac);
  }
  EXPECT_GT(far_retries, near_retries * 2)
      << "weak stations must retry far more";
  // Unknown stations are a no-op.
  EXPECT_EQ(map.note_transmission(MacAddress::from_index(9)), 0u);
  EXPECT_FALSE(map.sample_rssi(MacAddress::from_index(9)).has_value());

  auto samples = map.sample_all();
  ASSERT_EQ(samples.size(), 2u);
  map.remove_station(far_mac);
  EXPECT_EQ(map.sample_all().size(), 1u);
}

TEST_F(ExportFixture, StatsCountersAdvance) {
  sim::Host& host = make_device("laptop", sim::Position{4, 4});
  ASSERT_TRUE(bind(host).has_value());
  const auto dst = resolve(host, "www.example.com");
  ASSERT_TRUE(dst.has_value());
  // Note: the first packet of a flow is released from the packet buffer by
  // the flow-mod itself and (per OpenFlow semantics) never hits the table
  // counters — send a burst so deltas show up.
  for (int i = 0; i < 5; ++i) {
    host.send_udp(*dst, 1, 2, 100);
    loop.run_for(500 * kMillisecond);
  }
  loop.run_for(3 * kSecond);
  const auto& stats = router.event_export().stats();
  EXPECT_GT(stats.stats_polls, 0u);
  EXPECT_GT(stats.flow_rows, 0u);
  EXPECT_GT(stats.link_rows, 0u);
  EXPECT_GT(stats.lease_rows, 0u);
}

}  // namespace
}  // namespace hw::homework
