// Policy engine: selectors, schedules, document JSON round-trips, the
// compile step to per-device restrictions, USB key layout/monitor, and the
// engine's unlock semantics.
#include <gtest/gtest.h>

#include "policy/engine.hpp"

namespace hw::policy {
namespace {

PolicyDocument kids_policy() {
  PolicyDocument p;
  p.id = "kids-facebook";
  p.description = "kids only facebook on weekday evenings";
  p.who.tags = {"kids"};
  p.sites.kind = SiteRuleKind::AllowOnly;
  p.sites.domains = {"*.facebook.com"};
  p.when.days = {1, 2, 3, 4, 5};
  p.when.start_minute = 16 * 60;
  p.when.end_minute = 21 * 60;
  p.unlock = UnlockEffect::LiftAll;
  p.unlock_token = "parent-key";
  return p;
}

// ---------------------------------------------------------------------------
// Selectors & schedules

TEST(DeviceSelector, MatchesByMacOrTag) {
  DeviceSelector sel;
  sel.macs = {"aa:bb:cc:dd:ee:ff"};
  sel.tags = {"kids"};
  EXPECT_TRUE(sel.selects("AA:BB:CC:DD:EE:FF", {}));
  EXPECT_TRUE(sel.selects("11:11:11:11:11:11", {"KIDS"}));
  EXPECT_FALSE(sel.selects("11:11:11:11:11:11", {"adults"}));
  EXPECT_FALSE(sel.selects("11:11:11:11:11:11", {}));
}

TEST(Schedule, AlwaysByDefault) {
  Schedule s;
  EXPECT_TRUE(s.always());
  EXPECT_TRUE(s.active_at(0, 1));
  EXPECT_TRUE(s.active_at(3 * kDay + 23 * kHour, 1));
}

TEST(Schedule, WeekdaySelection) {
  Schedule s;
  s.days = {1, 2, 3, 4, 5};  // Mon-Fri
  // Epoch weekday 1 (Monday): day 0 is Monday ... day 5 is Saturday.
  EXPECT_TRUE(s.active_at(0, 1));
  EXPECT_TRUE(s.active_at(4 * kDay, 1));   // Friday
  EXPECT_FALSE(s.active_at(5 * kDay, 1));  // Saturday
  EXPECT_FALSE(s.active_at(6 * kDay, 1));  // Sunday
  EXPECT_TRUE(s.active_at(7 * kDay, 1));   // Monday again
}

TEST(Schedule, TimeOfDayWindow) {
  Schedule s;
  s.start_minute = 16 * 60;
  s.end_minute = 21 * 60;
  EXPECT_FALSE(s.active_at(15 * kHour + 59 * kMinute, 1));
  EXPECT_TRUE(s.active_at(16 * kHour, 1));
  EXPECT_TRUE(s.active_at(20 * kHour + 59 * kMinute, 1));
  EXPECT_FALSE(s.active_at(21 * kHour, 1));
}

TEST(Schedule, WrappingWindow) {
  Schedule s;  // 21:00 → 07:00 (overnight block)
  s.start_minute = 21 * 60;
  s.end_minute = 7 * 60;
  EXPECT_TRUE(s.active_at(22 * kHour, 1));
  EXPECT_TRUE(s.active_at(6 * kHour, 1));
  EXPECT_FALSE(s.active_at(12 * kHour, 1));
}

// ---------------------------------------------------------------------------
// JSON round trip & validation

TEST(PolicyDocument, JsonRoundTrip) {
  const PolicyDocument p = kids_policy();
  auto parsed = PolicyDocument::from_json(p.to_json());
  ASSERT_TRUE(parsed.ok());
  const auto& out = parsed.value();
  EXPECT_EQ(out.id, p.id);
  EXPECT_EQ(out.who.tags, p.who.tags);
  EXPECT_EQ(out.sites.kind, SiteRuleKind::AllowOnly);
  EXPECT_EQ(out.sites.domains, p.sites.domains);
  EXPECT_EQ(out.when.days, p.when.days);
  EXPECT_EQ(out.when.start_minute, p.when.start_minute);
  EXPECT_EQ(out.unlock, UnlockEffect::LiftAll);
  EXPECT_EQ(out.unlock_token, "parent-key");
}

TEST(PolicyDocument, FromJsonValidation) {
  EXPECT_FALSE(PolicyDocument::from_json(Json(1)).ok());
  auto parse = [](const char* text) {
    return PolicyDocument::from_json(Json::parse(text).value());
  };
  EXPECT_FALSE(parse(R"({"who": {"tags": ["kids"]}})").ok());  // no id
  EXPECT_FALSE(parse(R"({"id": "x"})").ok());                  // empty selector
  EXPECT_FALSE(
      parse(R"({"id": "x", "who": {"tags": ["k"]}, "when": {"days": [9]}})").ok());
  EXPECT_FALSE(
      parse(R"({"id": "x", "who": {"tags": ["k"]}, "unlock": "lift_all"})").ok());
  EXPECT_FALSE(
      parse(R"({"id": "x", "who": {"tags": ["k"]}, "sites": {"kind": "weird"}})")
          .ok());
  EXPECT_TRUE(parse(R"({"id": "x", "who": {"macs": ["aa:bb:cc:dd:ee:ff"]}})").ok());
}

// ---------------------------------------------------------------------------
// Compilation

TEST(Compile, NoPoliciesMeansUnrestricted) {
  const auto r = compile_restriction(std::vector<PolicyDocument>{}, "aa:bb", {}, {});
  EXPECT_TRUE(r.unrestricted());
  EXPECT_TRUE(r.domain_allowed("anything.example"));
}

TEST(Compile, AllowOnlyRestrictsDomains) {
  EvalContext ctx;
  ctx.now = 17 * kHour;  // Monday 17:00
  const auto r = compile_restriction({kids_policy()}, "x", {"kids"}, ctx);
  EXPECT_TRUE(r.allow_only);
  EXPECT_TRUE(r.domain_allowed("www.facebook.com"));
  EXPECT_FALSE(r.domain_allowed("video.netflix.com"));
  EXPECT_EQ(r.sources, (std::vector<std::string>{"kids-facebook"}));
}

TEST(Compile, OutsideScheduleUnrestricted) {
  EvalContext ctx;
  ctx.now = 10 * kHour;  // Monday morning: outside 16:00-21:00
  EXPECT_TRUE(compile_restriction({kids_policy()}, "x", {"kids"}, ctx)
                  .unrestricted());
  ctx.now = 5 * kDay + 17 * kHour;  // Saturday evening
  EXPECT_TRUE(compile_restriction({kids_policy()}, "x", {"kids"}, ctx)
                  .unrestricted());
}

TEST(Compile, NonSelectedDeviceUnrestricted) {
  EvalContext ctx;
  ctx.now = 17 * kHour;
  EXPECT_TRUE(
      compile_restriction({kids_policy()}, "x", {"adults"}, ctx).unrestricted());
}

TEST(Compile, UnlockTokenLiftsPolicy) {
  EvalContext ctx;
  ctx.now = 17 * kHour;
  ctx.inserted_tokens = {"parent-key"};
  EXPECT_TRUE(compile_restriction({kids_policy()}, "x", {"kids"}, ctx)
                  .unrestricted());
  ctx.inserted_tokens = {"wrong-key"};
  EXPECT_FALSE(compile_restriction({kids_policy()}, "x", {"kids"}, ctx)
                   .unrestricted());
}

TEST(Compile, LiftSitesKeepsNetworkBlock) {
  PolicyDocument p = kids_policy();
  p.block_network = true;
  p.unlock = UnlockEffect::LiftSiteRule;
  EvalContext ctx;
  ctx.now = 17 * kHour;
  ctx.inserted_tokens = {"parent-key"};
  const auto r = compile_restriction({p}, "x", {"kids"}, ctx);
  EXPECT_TRUE(r.network_blocked);   // network block survives
  EXPECT_FALSE(r.allow_only);       // site rule lifted
}

TEST(Compile, BlockListPolicy) {
  PolicyDocument p;
  p.id = "no-gambling";
  p.who.tags = {"kids"};
  p.sites.kind = SiteRuleKind::Block;
  p.sites.domains = {"*.bet365.com"};
  const auto r = compile_restriction({p}, "x", {"kids"}, {});
  EXPECT_FALSE(r.allow_only);
  EXPECT_FALSE(r.domain_allowed("www.bet365.com"));
  EXPECT_TRUE(r.domain_allowed("www.bbc.co.uk"));
}

TEST(Compile, MultiplePoliciesCompose) {
  PolicyDocument block;
  block.id = "block-net";
  block.who.macs = {"aa:aa:aa:aa:aa:aa"};
  block.block_network = true;
  const auto r = compile_restriction({kids_policy(), block},
                                     "aa:aa:aa:aa:aa:aa", {"kids"},
                                     {17 * kHour, 1, {}});
  EXPECT_TRUE(r.network_blocked);
  EXPECT_TRUE(r.allow_only);
  EXPECT_EQ(r.sources.size(), 2u);
  // domain_allowed() evaluates site rules only; the network block is
  // enforced separately (and wins) at the engine level.
  EXPECT_TRUE(r.domain_allowed("www.facebook.com"));
  PolicyEngine engine([] { return Timestamp{17 * kHour}; });
  engine.install(kids_policy());
  engine.install(block);
  engine.set_tags("aa:aa:aa:aa:aa:aa", {"kids"});
  EXPECT_FALSE(engine.domain_allowed("aa:aa:aa:aa:aa:aa", "www.facebook.com"));
}

TEST(Compile, RateLimitTakesTightestCap) {
  PolicyDocument slow;
  slow.id = "slow";
  slow.who.tags = {"kids"};
  slow.rate_limit_bps = 2'000'000;
  PolicyDocument slower;
  slower.id = "slower";
  slower.who.tags = {"kids"};
  slower.rate_limit_bps = 500'000;
  PolicyDocument uncapped;
  uncapped.id = "uncapped";
  uncapped.who.tags = {"kids"};

  auto r = compile_restriction({slow, slower, uncapped}, "x", {"kids"}, {});
  EXPECT_EQ(r.rate_limit_bps, 500'000u);
  EXPECT_FALSE(r.unrestricted());

  r = compile_restriction({uncapped}, "x", {"kids"}, {});
  EXPECT_EQ(r.rate_limit_bps, 0u);
}

TEST(PolicyDocument, RateLimitJsonRoundTrip) {
  PolicyDocument p;
  p.id = "cap";
  p.who.tags = {"kids"};
  p.rate_limit_bps = 1'500'000;
  auto parsed = PolicyDocument::from_json(p.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().rate_limit_bps, 1'500'000u);

  auto bad = Json::parse(
      R"({"id": "x", "who": {"tags": ["k"]}, "rate_limit_bps": -5})");
  EXPECT_FALSE(PolicyDocument::from_json(bad.value()).ok());
}

// ---------------------------------------------------------------------------
// USB keys

TEST(UsbKey, MakeAndParse) {
  const auto image = UsbKeyImage::make_key("parent-key", {kids_policy()});
  auto parsed = parse_policy_key(image);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().token, "parent-key");
  ASSERT_EQ(parsed.value().policies.size(), 1u);
  EXPECT_EQ(parsed.value().policies[0].id, "kids-facebook");
}

TEST(UsbKey, RejectsNonPolicyStick) {
  UsbKeyImage holiday_photos;
  holiday_photos.write_file("DCIM/001.jpg", "...");
  EXPECT_FALSE(parse_policy_key(holiday_photos).ok());
  EXPECT_FALSE(parse_policy_key(UsbKeyImage{}).ok());
}

TEST(UsbKey, RejectsCorruptPolicyFile) {
  UsbKeyImage image;
  image.write_file("homework/token", "t\n");
  image.write_file("homework/policies/0.json", "{not json");
  EXPECT_FALSE(parse_policy_key(image).ok());

  UsbKeyImage bad_doc;
  bad_doc.write_file("homework/policies/0.json", R"({"id": "x"})");
  EXPECT_FALSE(parse_policy_key(bad_doc).ok());
}

TEST(UsbKey, TokenOnlyKeyIsValid) {
  EXPECT_TRUE(parse_policy_key(UsbKeyImage::make_key("tok", {})).ok());
}

TEST(UsbMonitor, InsertRemoveLifecycle) {
  UsbMonitor monitor;
  int inserts = 0, removes = 0, invalids = 0;
  monitor.on_insert([&](UsbMonitor::SlotId, const ParsedKey& key) {
    ++inserts;
    EXPECT_EQ(key.token, "tok");
  });
  monitor.on_remove([&](UsbMonitor::SlotId, const ParsedKey&) { ++removes; });
  monitor.on_invalid([&](UsbMonitor::SlotId, const std::string&) { ++invalids; });

  const auto slot = monitor.insert(UsbKeyImage::make_key("tok", {}));
  ASSERT_NE(slot, 0u);
  EXPECT_EQ(inserts, 1);
  EXPECT_EQ(monitor.inserted_tokens(), (std::vector<std::string>{"tok"}));

  EXPECT_TRUE(monitor.remove(slot));
  EXPECT_EQ(removes, 1);
  EXPECT_FALSE(monitor.remove(slot));  // already removed
  EXPECT_TRUE(monitor.inserted_tokens().empty());

  EXPECT_EQ(monitor.insert(UsbKeyImage{}), 0u);
  EXPECT_EQ(invalids, 1);
}

// ---------------------------------------------------------------------------
// Engine

struct EngineFixture : ::testing::Test {
  EngineFixture() : engine([this] { return now; }) {}
  Timestamp now = 17 * kHour;  // Monday 17:00
  PolicyEngine engine;
};

TEST_F(EngineFixture, InstallUninstall) {
  engine.install(kids_policy());
  EXPECT_EQ(engine.policies().size(), 1u);
  engine.set_tags("aa:bb:cc:dd:ee:01", {"kids"});
  EXPECT_FALSE(engine.domain_allowed("aa:bb:cc:dd:ee:01", "netflix.com"));
  EXPECT_TRUE(engine.domain_allowed("aa:bb:cc:dd:ee:01", "www.facebook.com"));
  EXPECT_TRUE(engine.uninstall("kids-facebook"));
  EXPECT_FALSE(engine.uninstall("kids-facebook"));
  EXPECT_TRUE(engine.domain_allowed("aa:bb:cc:dd:ee:01", "netflix.com"));
}

TEST_F(EngineFixture, ScheduleFollowsVirtualClock) {
  engine.install(kids_policy());
  engine.set_tags("m", {"kids"});
  EXPECT_FALSE(engine.domain_allowed("m", "netflix.com"));
  now = 22 * kHour;  // after the window
  EXPECT_TRUE(engine.domain_allowed("m", "netflix.com"));
}

TEST_F(EngineFixture, UsbInsertLiftsAndRemoveRestores) {
  engine.install(kids_policy());
  engine.set_tags("m", {"kids"});
  int changes = 0;
  engine.on_change([&] { ++changes; });

  const auto slot = engine.usb().insert(UsbKeyImage::make_key("parent-key", {}));
  EXPECT_TRUE(engine.domain_allowed("m", "netflix.com"));
  engine.usb().remove(slot);
  EXPECT_FALSE(engine.domain_allowed("m", "netflix.com"));
  EXPECT_EQ(changes, 2);
}

TEST_F(EngineFixture, KeyCarriedPoliciesLiveWithInsertion) {
  PolicyDocument p;
  p.id = "guest-block";
  p.who.tags = {"guests"};
  p.block_network = true;
  engine.set_tags("g", {"guests"});

  const auto slot = engine.usb().insert(UsbKeyImage::make_key("", {p}));
  ASSERT_NE(slot, 0u);
  EXPECT_FALSE(engine.network_allowed("g"));
  EXPECT_EQ(engine.policies().size(), 1u);

  engine.usb().remove(slot);
  EXPECT_TRUE(engine.network_allowed("g"));
  EXPECT_TRUE(engine.policies().empty());
}

TEST_F(EngineFixture, TagsCaseInsensitive) {
  engine.install(kids_policy());
  engine.set_tags("AA:BB:CC:DD:EE:02", {"kids"});
  EXPECT_FALSE(engine.domain_allowed("aa:bb:cc:dd:ee:02", "netflix.com"));
}

}  // namespace
}  // namespace hw::policy
