// Traffic applications and the home scenario builder.
#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace hw::workload {
namespace {

TEST(AppProfiles, PresetsMatchProtocolExpectations) {
  EXPECT_TRUE(AppProfile::web("x").tcp);
  EXPECT_EQ(AppProfile::web("x").dst_port, 80);
  EXPECT_FALSE(AppProfile::voip("x").tcp);
  EXPECT_EQ(AppProfile::voip("x").dst_port, 5060);
  EXPECT_FALSE(AppProfile::gaming("x").tcp);
  EXPECT_EQ(AppProfile::bulk("x").dst_port, 443);
  EXPECT_EQ(AppProfile::streaming("x").dst_port, 1935);
  EXPECT_EQ(AppProfile::email("x").dst_port, 993);
}

struct ScenarioFixture : ::testing::Test {
  static HomeScenario::Config config() {
    HomeScenario::Config c;
    c.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
    c.seed = 99;
    return c;
  }
  ScenarioFixture() : home(config()) {}
  HomeScenario home;
};

TEST_F(ScenarioFixture, StandardHomeBindsEverything) {
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  EXPECT_TRUE(home.wait_all_bound());
  EXPECT_EQ(home.devices().size(), 6u);
  for (auto& d : home.devices()) {
    EXPECT_TRUE(d.host->ip().has_value()) << d.name;
  }
  // Unique addresses.
  std::set<std::uint32_t> ips;
  for (auto& d : home.devices()) ips.insert(d.host->ip()->value());
  EXPECT_EQ(ips.size(), 6u);
}

TEST_F(ScenarioFixture, AppsGenerateClassifiedTraffic) {
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  ASSERT_TRUE(home.wait_all_bound());
  home.start_apps_all();
  home.run_for(30 * kSecond);
  home.stop_apps_all();

  // The TV streams; the laptop browses; both show up with the right labels.
  auto rs = home.router().db().query(
      "SELECT app, sum(bytes) FROM Flows GROUP BY app");
  ASSERT_TRUE(rs.ok());
  std::map<std::string, std::int64_t> by_app;
  for (const auto& row : rs.value().rows) {
    by_app[row[0].as_text()] = row[1].as_int();
  }
  EXPECT_GT(by_app.count("streaming"), 0u);
  EXPECT_GT(by_app.count("web"), 0u);
  EXPECT_GT(by_app["streaming"], 0);

  // Per-app requests were actually sent by the app objects.
  auto* tv = home.device("living-room-tv");
  ASSERT_NE(tv, nullptr);
  ASSERT_FALSE(tv->apps.empty());
  EXPECT_TRUE(tv->apps[0]->stats().resolved);
  EXPECT_GT(tv->apps[0]->stats().requests_sent, 0u);
}

TEST_F(ScenarioFixture, DeterministicAcrossRuns) {
  auto run_once = [] {
    HomeScenario home(config());
    home.populate_standard_home();
    home.start();
    home.start_dhcp_all();
    home.wait_all_bound();
    home.start_apps_all();
    home.run_for(20 * kSecond);
    home.stop_apps_all();
    auto rs = home.router().db().query(
        "SELECT device, sum(bytes) FROM Flows GROUP BY device");
    std::string out = rs.ok() ? rs.value().to_string() : "error";
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(ScenarioFixture, BlockedAppRetriesNotCrashes) {
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  ASSERT_TRUE(home.wait_all_bound());

  // Block facebook for everyone, then start apps: the phone's facebook app
  // gets NXDOMAIN and keeps retrying without wedging the loop.
  policy::PolicyDocument p;
  p.id = "no-facebook";
  for (auto& d : home.devices()) p.who.macs.push_back(d.host->mac().to_string());
  p.sites.kind = policy::SiteRuleKind::Block;
  p.sites.domains = {"*.facebook.com"};
  home.router().policy().install(std::move(p));

  home.start_apps_all();
  home.run_for(30 * kSecond);
  auto* phone = home.device("kates-phone");
  bool some_failure = false;
  for (auto& app : phone->apps) {
    if (app->stats().dns_failures > 0) some_failure = true;
  }
  EXPECT_TRUE(some_failure);
  EXPECT_GT(home.router().dns().stats().blocked, 0u);
  home.stop_apps_all();
}

TEST_F(ScenarioFixture, DeviceLookupByName) {
  home.populate_standard_home();
  EXPECT_NE(home.device("printer"), nullptr);
  EXPECT_EQ(home.device("toaster"), nullptr);
  EXPECT_EQ(home.device("printer")->kind, DeviceKind::Printer);
}

}  // namespace
}  // namespace hw::workload
