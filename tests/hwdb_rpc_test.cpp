// The UDP-based RPC interface: wire codec round-trips, the in-process link
// (request/response + subscription push), real-socket loopback transport,
// and the persistence sink.
#include <gtest/gtest.h>

#include <cstdio>

#include "hwdb/persist.hpp"
#include "hwdb/udp_transport.hpp"

namespace hw::hwdb::rpc {
namespace {

Schema links_schema() {
  return Schema("Links", {{"mac", ColumnType::Text},
                          {"rssi", ColumnType::Real},
                          {"retries", ColumnType::Int}});
}

// ---------------------------------------------------------------------------
// Codec

TEST(RpcCodec, RequestRoundTrips) {
  const auto check = [](RequestBody body) {
    Request req{77, std::move(body)};
    auto decoded = decode(encode(req), /*from_server=*/false);
    ASSERT_TRUE(decoded.ok());
    const auto* out = std::get_if<Request>(&decoded.value());
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->request_id, 77u);
    EXPECT_EQ(out->body.index(), req.body.index());
  };
  check(InsertRequest{"Links", {Value{"m"}, Value{-60.5}, Value{3}}});
  check(QueryRequest{"SELECT * FROM Links"});
  check(SubscribeRequest{"SELECT * FROM Links", true, 500});
  check(UnsubscribeRequest{42});
  check(PingRequest{});
}

TEST(RpcCodec, InsertValuesSurvive) {
  Request req{1, InsertRequest{"Links", {Value{"aa:bb"}, Value{-70.25}, Value{9}}}};
  auto decoded = decode(encode(req), false);
  const auto& out = std::get<InsertRequest>(std::get<Request>(decoded.value()).body);
  EXPECT_EQ(out.table, "Links");
  ASSERT_EQ(out.values.size(), 3u);
  EXPECT_EQ(out.values[0].as_text(), "aa:bb");
  EXPECT_DOUBLE_EQ(out.values[1].as_real(), -70.25);
  EXPECT_EQ(out.values[2].as_int(), 9);
}

TEST(RpcCodec, ResponseVariants) {
  Response ok;
  ok.request_id = 5;
  ok.sub_id = 99;
  auto d1 = decode(encode(ok), true);
  EXPECT_EQ(std::get<Response>(d1.value()).sub_id, 99u);

  Response err;
  err.request_id = 6;
  err.ok = false;
  err.error = "no such table";
  auto d2 = decode(encode(err), true);
  EXPECT_FALSE(std::get<Response>(d2.value()).ok);
  EXPECT_EQ(std::get<Response>(d2.value()).error, "no such table");

  Response with_result;
  with_result.request_id = 7;
  ResultSet rs;
  rs.columns = {"a", "b"};
  rs.rows = {{Value{1}, Value{"x"}}, {Value{2}, Value{"y"}}};
  with_result.result = rs;
  auto d3 = decode(encode(with_result), true);
  const auto& out = *std::get<Response>(d3.value()).result;
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[1][1].as_text(), "y");
}

TEST(RpcCodec, PublishRoundTrip) {
  Publish push;
  push.sub_id = 12;
  push.result.columns = {"mac"};
  push.result.rows = {{Value{"m"}}};
  auto decoded = decode(encode(push), true);
  const auto* out = std::get_if<Publish>(&decoded.value());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->sub_id, 12u);
  EXPECT_EQ(out->result.rows.size(), 1u);
}

TEST(RpcCodec, LiveVerbsRoundTrip) {
  Request sub{11, SubscribeSeriesRequest{"live.home.*", 3, 4, 16}};
  auto d1 = decode(encode(sub), false);
  ASSERT_TRUE(d1.ok());
  const auto& s =
      std::get<SubscribeSeriesRequest>(std::get<Request>(d1.value()).body);
  EXPECT_EQ(s.pattern, "live.home.*");
  EXPECT_EQ(s.home, 3u);
  EXPECT_EQ(s.every, 4u);
  EXPECT_EQ(s.max_queue, 16u);

  Request mut{12, MutateRequest{MutateKind::ApplyPolicy, 2, "policy-json",
                                "aux-blob", 7, 9}};
  auto d2 = decode(encode(mut), false);
  ASSERT_TRUE(d2.ok());
  const auto& m = std::get<MutateRequest>(std::get<Request>(d2.value()).body);
  EXPECT_EQ(m.kind, MutateKind::ApplyPolicy);
  EXPECT_EQ(m.home, 2u);
  EXPECT_EQ(m.text, "policy-json");
  EXPECT_EQ(m.aux, "aux-blob");
  EXPECT_EQ(m.arg0, 7u);
  EXPECT_EQ(m.arg1, 9u);

  // The response body discriminator is exclusive: a Mutate answer carries
  // applied_at (the barrier the mutation lands on), nothing else.
  Response resp;
  resp.request_id = 13;
  resp.applied_at = Timestamp{4250000};
  auto d3 = decode(encode(resp), true);
  ASSERT_TRUE(d3.ok());
  ASSERT_TRUE(std::get<Response>(d3.value()).applied_at.has_value());
  EXPECT_EQ(*std::get<Response>(d3.value()).applied_at, 4250000);
}

TEST(RpcCodec, DeltaPushRoundTrip) {
  DeltaPush push;
  push.sub_id = 21;
  push.seq = 17;
  push.vtime = 3000013;
  push.home = 1;
  push.snapshot = true;
  push.dropped = 4;
  push.values = {{"live.fleet.barriers", 12.0}, {"sim.host.tx_frames", 88.5}};
  auto decoded = decode(encode(push), /*from_server=*/true);
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<DeltaPush>(&decoded.value());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->sub_id, 21u);
  EXPECT_EQ(out->seq, 17u);
  EXPECT_EQ(out->vtime, 3000013);
  EXPECT_EQ(out->home, 1u);
  EXPECT_TRUE(out->snapshot);
  EXPECT_EQ(out->dropped, 4u);
  ASSERT_EQ(out->values.size(), 2u);
  EXPECT_EQ(out->values[0].first, "live.fleet.barriers");
  EXPECT_DOUBLE_EQ(out->values[1].second, 88.5);
}

TEST(RpcCodec, RejectsGarbage) {
  Bytes garbage{1, 2};
  EXPECT_FALSE(decode(garbage, true).ok());
  EXPECT_FALSE(decode(garbage, false).ok());
  Bytes bad_opcode{0, 0, 0, 1, 99};
  EXPECT_FALSE(decode(bad_opcode, false).ok());
}

TEST(RpcCodec, ValueTagValidation) {
  ByteWriter w;
  w.u8(9);  // invalid type tag
  ByteReader r(w.bytes());
  EXPECT_FALSE(read_value(r).ok());
}

// ---------------------------------------------------------------------------
// In-process link

struct LinkFixture : ::testing::Test {
  LinkFixture() : db(loop), link(loop, db) {
    EXPECT_TRUE(db.create_table(links_schema(), 64).ok());
  }
  sim::EventLoop loop;
  Database db;
  InProcRpcLink link;
};

TEST_F(LinkFixture, InsertAndQuery) {
  auto& client = link.make_client();
  bool inserted = false;
  client.insert("Links", {Value{"m1"}, Value{-50.0}, Value{0}},
                [&](const Response& resp) { inserted = resp.ok; });
  loop.run_for(10 * kMillisecond);
  EXPECT_TRUE(inserted);

  std::size_t rows = 0;
  client.query("SELECT mac, rssi FROM Links", [&](Result<ResultSet> rs) {
    ASSERT_TRUE(rs.ok());
    rows = rs.value().rows.size();
    EXPECT_EQ(rs.value().rows[0][0].as_text(), "m1");
  });
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(rows, 1u);
}

TEST_F(LinkFixture, QueryErrorPropagates) {
  auto& client = link.make_client();
  std::string error;
  client.query("SELECT * FROM Ghost", [&](Result<ResultSet> rs) {
    ASSERT_FALSE(rs.ok());
    error = rs.error().message;
  });
  loop.run_for(10 * kMillisecond);
  EXPECT_NE(error.find("Ghost"), std::string::npos);
  EXPECT_EQ(link.server().stats().errors, 1u);
}

TEST_F(LinkFixture, SubscriptionPushesPeriodically) {
  auto& client = link.make_client();
  std::uint64_t sub_id = 0;
  int pushes = 0;
  client.on_push([&](std::uint64_t id, const ResultSet&) {
    EXPECT_EQ(id, sub_id);
    ++pushes;
  });
  client.subscribe("SELECT * FROM Links [RANGE 5 SECONDS]", false, 1000,
                   [&](Result<std::uint64_t> id) {
                     ASSERT_TRUE(id.ok());
                     sub_id = id.value();
                   });
  loop.run_for(3 * kSecond + 10 * kMillisecond);
  EXPECT_EQ(pushes, 3);

  client.unsubscribe(sub_id);
  loop.run_for(2 * kSecond);
  EXPECT_EQ(pushes, 3);
}

TEST_F(LinkFixture, OnInsertSubscriptionPushes) {
  auto& client = link.make_client();
  int pushes = 0;
  client.on_push([&](std::uint64_t, const ResultSet& rs) {
    ++pushes;
    EXPECT_FALSE(rs.rows.empty());
  });
  client.subscribe("SELECT * FROM Links [ROWS 1]", true, 0,
                   [](Result<std::uint64_t>) {});
  loop.run_for(10 * kMillisecond);
  db.insert("Links", {Value{"m"}, Value{-60.0}, Value{1}});
  db.insert("Links", {Value{"m"}, Value{-61.0}, Value{2}});
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(pushes, 2);
}

TEST_F(LinkFixture, TwoClientsIsolatedPushes) {
  auto& c1 = link.make_client();
  auto& c2 = link.make_client();
  int pushes1 = 0, pushes2 = 0;
  c1.on_push([&](std::uint64_t, const ResultSet&) { ++pushes1; });
  c2.on_push([&](std::uint64_t, const ResultSet&) { ++pushes2; });
  c1.subscribe("SELECT * FROM Links [ROWS 1]", true, 0,
               [](Result<std::uint64_t>) {});
  loop.run_for(10 * kMillisecond);
  db.insert("Links", {Value{"m"}, Value{-60.0}, Value{1}});
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(pushes1, 1);
  EXPECT_EQ(pushes2, 0);
}

TEST_F(LinkFixture, DropClientRemovesSubscriptions) {
  auto& client = link.make_client();
  client.subscribe("SELECT * FROM Links [ROWS 1]", true, 0,
                   [](Result<std::uint64_t>) {});
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(db.subscription_count(), 1u);
  link.server().drop_client(0);
  EXPECT_EQ(db.subscription_count(), 0u);
}

// ---------------------------------------------------------------------------
// Reliable client: retries, timeouts, server-side duplicate suppression

TEST_F(LinkFixture, ReliableClientRetriesUntilResponse) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.timeout = 10 * kMillisecond;
  policy.backoff_base = 5 * kMillisecond;
  policy.backoff_cap = 20 * kMillisecond;
  auto& client = link.make_client(policy);

  // Black-hole the link, then heal it mid-retry-schedule: the first sends
  // vanish, a later resend (same request id) gets through.
  Rng fault_rng(3);
  sim::DatagramFault blackhole;
  blackhole.drop = 1.0;
  link.set_fault(blackhole, &fault_rng);
  loop.schedule_at(22 * kMillisecond,
                   [&] { link.set_fault(sim::DatagramFault{}, &fault_rng); });

  bool inserted = false;
  client.insert("Links", {Value{"m1"}, Value{-50.0}, Value{0}},
                [&](const Response& resp) { inserted = resp.ok; });
  loop.run_for(100 * kMillisecond);

  EXPECT_TRUE(inserted);
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().timeouts, 0u);
  EXPECT_EQ(client.pending(), 0u);
  // The retried insert was applied exactly once.
  auto rs = db.query("SELECT mac FROM Links");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows.size(), 1u);
}

TEST_F(LinkFixture, ReliableClientTimesOutAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.timeout = 10 * kMillisecond;
  policy.backoff_base = 5 * kMillisecond;
  auto& client = link.make_client(policy);

  Rng fault_rng(3);
  sim::DatagramFault blackhole;
  blackhole.drop = 1.0;
  link.set_fault(blackhole, &fault_rng);

  std::string error;
  client.insert("Links", {Value{"m1"}, Value{-50.0}, Value{0}},
                [&](const Response& resp) {
                  EXPECT_FALSE(resp.ok);
                  error = resp.error;
                });
  loop.run_for(kSecond);

  EXPECT_EQ(error, "RPC: timed out");
  EXPECT_EQ(client.stats().retries, 2u);  // attempts 2 and 3
  EXPECT_EQ(client.stats().timeouts, 1u);
  EXPECT_EQ(client.pending(), 0u);
  EXPECT_EQ(link.stats().fault_dropped, 3u);
  auto rs = db.query("SELECT mac FROM Links");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs.value().rows.empty());
}

TEST_F(LinkFixture, ServerSuppressesDuplicatedRequests) {
  // The link duplicates every datagram; the server must apply the insert
  // once and answer the duplicate from its response cache.
  auto& client = link.make_client();
  Rng fault_rng(3);
  sim::DatagramFault dup;
  dup.duplicate = 1.0;
  link.set_fault(dup, &fault_rng);

  bool inserted = false;
  client.insert("Links", {Value{"m1"}, Value{-50.0}, Value{0}},
                [&](const Response& resp) { inserted = resp.ok; });
  loop.run_for(50 * kMillisecond);

  EXPECT_TRUE(inserted);
  EXPECT_GE(link.stats().fault_duplicated, 1u);
  EXPECT_EQ(link.server().stats().dup_suppressed, 1u);
  auto rs = db.query("SELECT mac FROM Links");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows.size(), 1u);
}

TEST_F(LinkFixture, RetriedSubscribeCreatesOneSubscriptionInOrder) {
  // Regression for the live-plane streaming contract: a subscribe whose
  // datagram is retransmitted (client retry or network duplication) must be
  // deduplicated server-side into exactly ONE subscription, so the push
  // stream afterwards carries no duplicated or reordered updates.
  auto& client = link.make_client();
  Rng fault_rng(3);
  sim::DatagramFault dup;
  dup.duplicate = 1.0;  // every datagram arrives twice
  link.set_fault(dup, &fault_rng);
  // Heal the link once the handshake settled, before the first push, so
  // push delivery itself is clean and any duplication we observe would come
  // from a doubled server-side subscription.
  loop.schedule_at(20 * kMillisecond,
                   [&] { link.set_fault(sim::DatagramFault{}, &fault_rng); });

  std::uint64_t sub_id = 0;
  std::vector<std::uint64_t> push_ids;
  client.on_push(
      [&](std::uint64_t id, const ResultSet&) { push_ids.push_back(id); });
  client.subscribe("SELECT * FROM Links [RANGE 5 SECONDS]", false, 1000,
                   [&](Result<std::uint64_t> id) {
                     ASSERT_TRUE(id.ok());
                     sub_id = id.value();
                   });
  loop.run_for(3 * kSecond + 10 * kMillisecond);

  EXPECT_GE(link.server().stats().dup_suppressed, 1u);
  EXPECT_EQ(db.subscription_count(), 1u);
  // One push per period, all for the single subscription id — a doubled
  // subscription would interleave a second id (or double the count).
  EXPECT_EQ(push_ids.size(), 3u);
  for (const auto id : push_ids) EXPECT_EQ(id, sub_id);
}

TEST_F(LinkFixture, RetryScheduleIsDeterministic) {
  // Two identically-configured clients over two identical black-holed links
  // retransmit on exactly the same virtual-clock schedule (no jitter).
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.timeout = 10 * kMillisecond;
  policy.backoff_base = 5 * kMillisecond;
  const std::vector<Duration> expected = {10 * kMillisecond, 15 * kMillisecond,
                                          20 * kMillisecond, 30 * kMillisecond};
  EXPECT_EQ(policy.schedule(), expected);
}

// ---------------------------------------------------------------------------
// Real UDP sockets on loopback

TEST(UdpTransport, RequestResponseOverLoopback) {
  sim::EventLoop loop;
  Database db(loop);
  ASSERT_TRUE(db.create_table(links_schema(), 64).ok());

  UdpServerTransport server(db, 0);
  ASSERT_TRUE(server.ok());
  ASSERT_NE(server.port(), 0);

  UdpClientTransport client(server.port());
  ASSERT_TRUE(client.ok());

  bool inserted = false;
  client.client().insert("Links", {Value{"m1"}, Value{-55.0}, Value{2}},
                         [&](const Response& resp) { inserted = resp.ok; });
  ASSERT_TRUE(client.wait(2000) || server.poll() > 0);
  server.poll();
  ASSERT_TRUE(client.wait(2000));
  client.poll();
  EXPECT_TRUE(inserted);

  std::size_t rows = 0;
  client.client().query("SELECT * FROM Links", [&](Result<ResultSet> rs) {
    ASSERT_TRUE(rs.ok());
    rows = rs.value().rows.size();
  });
  server.poll();
  ASSERT_TRUE(client.wait(2000));
  client.poll();
  EXPECT_EQ(rows, 1u);
}

TEST(UdpTransport, SubscriptionPushOverLoopback) {
  sim::EventLoop loop;
  Database db(loop);
  ASSERT_TRUE(db.create_table(links_schema(), 64).ok());

  UdpServerTransport server(db, 0);
  ASSERT_TRUE(server.ok());
  UdpClientTransport client(server.port());
  ASSERT_TRUE(client.ok());

  int pushes = 0;
  client.client().on_push(
      [&](std::uint64_t, const ResultSet& rs) {
        ++pushes;
        EXPECT_FALSE(rs.rows.empty());
      });
  bool subscribed = false;
  client.client().subscribe("SELECT * FROM Links [ROWS 1]", /*on_insert=*/true,
                            0, [&](Result<std::uint64_t> id) {
                              subscribed = id.ok();
                            });
  server.poll();
  ASSERT_TRUE(client.wait(2000));
  client.poll();
  ASSERT_TRUE(subscribed);

  // Inserts through the socket trigger pushes back through the socket.
  for (int i = 0; i < 3; ++i) {
    client.client().insert("Links", {Value{"m"}, Value{-60.0}, Value{i}});
    server.poll();
    // Each insert produces a push + an insert ack.
    while (client.wait(500) && client.poll() > 0) {
    }
  }
  EXPECT_EQ(pushes, 3);
}

TEST(UdpTransport, TimedOutWaitConsumesNoSimEvents) {
  sim::EventLoop loop;
  Database db(loop);
  ASSERT_TRUE(db.create_table(links_schema(), 64).ok());
  UdpServerTransport server(db, 0);
  ASSERT_TRUE(server.ok());
  UdpClientTransport client(server.port(), &loop);
  ASSERT_TRUE(client.ok());

  // A future event must survive a timed-out wait untouched: wait() blocks in
  // one ::poll on the socket, it does not spin the simulation forward.
  bool fired = false;
  loop.schedule_at(kSecond, [&] { fired = true; });
  const std::uint64_t executed_before = loop.executed();
  const Timestamp now_before = loop.now();

  EXPECT_FALSE(client.wait(50));  // nothing on the wire → timeout

  EXPECT_EQ(loop.executed(), executed_before);
  EXPECT_EQ(loop.now(), now_before);
  EXPECT_FALSE(fired);
}

TEST(UdpTransport, WaitDrainsDueEventsBeforeBlocking) {
  sim::EventLoop loop;
  Database db(loop);
  ASSERT_TRUE(db.create_table(links_schema(), 64).ok());
  UdpServerTransport server(db, 0);
  ASSERT_TRUE(server.ok());
  UdpClientTransport client(server.port(), &loop);
  ASSERT_TRUE(client.ok());

  // An already-due event (a sim-scheduled send, typically) runs before the
  // socket wait, so it cannot be starved by a long timeout...
  bool due_ran = false;
  loop.schedule_at(loop.now(), [&] { due_ran = true; });
  // ...while a future event stays future.
  bool future_ran = false;
  loop.schedule_at(loop.now() + kSecond, [&] { future_ran = true; });

  EXPECT_FALSE(client.wait(10));
  EXPECT_TRUE(due_ran);
  EXPECT_FALSE(future_ran);
}

// ---------------------------------------------------------------------------
// Persistence sink

TEST(TableTsv, DumpLoadRoundTrip) {
  sim::EventLoop loop;
  Database db(loop);
  ASSERT_TRUE(db.create_table(links_schema(), 64).ok());
  for (int i = 0; i < 5; ++i) {
    loop.run_for(kSecond);
    ASSERT_TRUE(db.insert("Links", {Value{"m" + std::to_string(i)},
                                    Value{-60.0 - i}, Value{i}})
                    .ok());
  }
  const std::string path = ::testing::TempDir() + "/hwdb_table_test.tsv";
  auto dumped = dump_table_tsv(*db.table("Links"), path);
  ASSERT_TRUE(dumped.ok());
  EXPECT_EQ(dumped.value(), 5u);

  // Load into a fresh table with the same schema; timestamps preserved.
  Table copy(links_schema(), 64);
  auto loaded = load_table_tsv(copy, path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value(), 5u);
  EXPECT_EQ(copy.size(), 5u);
  EXPECT_EQ(copy.rows().oldest().ts, kSecond);
  EXPECT_EQ(copy.rows().newest().values[0].as_text(), "m4");
  EXPECT_DOUBLE_EQ(copy.rows().newest().values[1].as_real(), -64.0);
  std::remove(path.c_str());
}

TEST(TableTsv, LoadRejectsSchemaMismatch) {
  const std::string path = ::testing::TempDir() + "/hwdb_bad_test.tsv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "100\tonly-two-fields\n");
  std::fclose(f);
  Table table(links_schema(), 8);
  EXPECT_FALSE(load_table_tsv(table, path).ok());
  EXPECT_EQ(table.size(), 0u) << "rejected load must not partially mutate";
  std::remove(path.c_str());
  EXPECT_FALSE(load_table_tsv(table, "/no/such/file.tsv").ok());
}

TEST(TableTsv, LoadRejectsTruncationWithoutPartialMutation) {
  // A file torn mid-line (no trailing newline) is a failed write, not a
  // short table: the load reports an error and stages nothing. Valid rows
  // ahead of the tear must not leak into the table either.
  const std::string path = ::testing::TempDir() + "/hwdb_torn_test.tsv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "1000000\tm0\t-60\t1\n");
  std::fprintf(f, "2000000\tm1\t-61");  // torn: no newline
  std::fclose(f);
  Table table(links_schema(), 8);
  const auto loaded = load_table_tsv(table, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().message.find("truncated"), std::string::npos)
      << loaded.error().message;
  EXPECT_EQ(table.size(), 0u);
  std::remove(path.c_str());
}

TEST(TableTsv, LoadRejectsNonMonotonicTimestamps) {
  // Ring tables are time-ordered by construction; a dump with timestamps
  // running backwards is corrupt input, not a reordering request.
  const std::string path = ::testing::TempDir() + "/hwdb_backwards_test.tsv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "2000000\tm0\t-60\t1\n");
  std::fprintf(f, "1000000\tm1\t-61\t2\n");
  std::fclose(f);
  Table table(links_schema(), 8);
  const auto loaded = load_table_tsv(table, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().message.find("non-monotonic"), std::string::npos)
      << loaded.error().message;
  EXPECT_EQ(table.size(), 0u);
  std::remove(path.c_str());
}

TEST(PersistSink, AppendsBatchesToFile) {
  sim::EventLoop loop;
  Database db(loop);
  ASSERT_TRUE(db.create_table(links_schema(), 64).ok());
  const std::string path = ::testing::TempDir() + "/hwdb_persist_test.tsv";
  std::remove(path.c_str());

  {
    PersistSink sink(db, "SELECT mac, retries FROM Links [ROWS 4]",
                     SubscriptionMode::OnInsert, 0, path);
    ASSERT_TRUE(sink.ok());
    db.insert("Links", {Value{"m"}, Value{-60.0}, Value{1}});
    db.insert("Links", {Value{"m"}, Value{-61.0}, Value{2}});
    EXPECT_EQ(sink.batches_written(), 2u);
    EXPECT_EQ(sink.rows_written(), 3u);  // batch1: 1 row, batch2: 2 rows
    sink.flush();
  }

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  std::string contents;
  while (std::fgets(buf, sizeof buf, f) != nullptr) contents += buf;
  std::fclose(f);
  EXPECT_NE(contents.find("# batch"), std::string::npos);
  EXPECT_NE(contents.find("m\t1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hw::hwdb::rpc
