// Fleet runner suite: per-home seed derivation, the determinism contract
// (one fleet seed → bit-identical merged non-histogram telemetry and
// identical per-home verdicts no matter how many worker threads run it),
// chaos fleets with distinct per-home fault plans, and the event loop's
// debug-build thread-ownership assert.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "fleet/fleet.hpp"
#include "sim/event_loop.hpp"

namespace hw::fleet {
namespace {

FleetConfig small_fleet(std::size_t homes, std::size_t threads, bool chaos) {
  FleetConfig config;
  config.homes = homes;
  config.threads = threads;
  config.seed = 2011;  // the paper's year; any value works
  config.duration = chaos ? 30 * kSecond : 10 * kSecond;
  config.devices_per_home = 3;
  config.run_apps = true;
  config.chaos = chaos;
  return config;
}

TEST(FleetSeeds, PerHomeSeedsAreStableAndDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::size_t id = 0; id < 1000; ++id) {
    const std::uint64_t s = FleetRunner::home_seed(2011, id);
    EXPECT_EQ(s, FleetRunner::home_seed(2011, id)) << "unstable for home " << id;
    EXPECT_TRUE(seeds.insert(s).second) << "seed collision at home " << id;
    EXPECT_NE(s, 0u);
  }
  // Different fleet seeds shift every home.
  EXPECT_NE(FleetRunner::home_seed(2011, 7), FleetRunner::home_seed(2012, 7));
}

TEST(FleetSeeds, ChaosPlansVaryAcrossHomesAndFitTheRun) {
  const Duration duration = 30 * kSecond;
  std::set<std::size_t> window_counts;
  std::set<Timestamp> loss_starts;
  for (std::size_t id = 0; id < 32; ++id) {
    const auto plan =
        FleetRunner::chaos_plan(FleetRunner::home_seed(2011, id), duration);
    EXPECT_EQ(plan.seed, FleetRunner::home_seed(2011, id));
    ASSERT_FALSE(plan.windows.empty());
    window_counts.insert(plan.windows.size());
    loss_starts.insert(plan.windows.front().start);
    for (const auto& w : plan.windows) {
      EXPECT_LT(w.start + w.duration, duration) << "window outlives the run";
    }
  }
  // Distinct per-home plans: shapes and placements actually vary.
  EXPECT_GT(window_counts.size(), 1u);
  EXPECT_GT(loss_starts.size(), 4u);
}

TEST(FleetHome, SingleHomeBindsServesAndInsertsExactlyOnce) {
  FleetRunner runner(small_fleet(1, 1, /*chaos=*/false));
  const HomeResult r = runner.run_home(0);
  EXPECT_EQ(r.home_id, 0u);
  EXPECT_EQ(r.devices, 3u);
  EXPECT_EQ(r.devices_bound, 3u);
  EXPECT_TRUE(r.all_bound);
  EXPECT_FALSE(r.fail_safe_at_end);
  EXPECT_TRUE(r.inserts_exactly_once);
  EXPECT_GT(r.inserts_acked, 0u);
  EXPECT_GT(r.frames, 0u);
  EXPECT_GT(r.flow_entries, 0u);
  EXPECT_TRUE(r.ok());
  // The per-home registry carried the whole stack's instruments.
  EXPECT_GT(r.scalars.count("homework.dhcp.acks"), 0u);
  EXPECT_GT(r.scalars.count("openflow.datapath.packet_ins"), 0u);
  EXPECT_GT(r.scalars.count("sim.link.tx_frames"), 0u);
}

TEST(FleetHome, SameHomeReplaysIdentically) {
  FleetRunner runner(small_fleet(1, 1, /*chaos=*/false));
  const HomeResult a = runner.run_home(0);
  const HomeResult b = runner.run_home(0);
  EXPECT_EQ(a.scalars, b.scalars);
  EXPECT_EQ(a.inserts_acked, b.inserts_acked);
  EXPECT_EQ(a.frames, b.frames);
}

/// The determinism view of a fleet result: everything except wall-clock and
/// histogram data.
struct FleetFingerprint {
  std::map<std::string, double> totals;
  std::vector<std::map<std::string, double>> per_home;
  std::vector<bool> verdicts;
  std::vector<std::uint64_t> seeds;
  std::size_t homes_ok = 0;
  std::uint64_t total_frames = 0;

  bool operator==(const FleetFingerprint&) const = default;
};

FleetFingerprint fingerprint(const FleetResult& fleet) {
  FleetFingerprint fp;
  fp.totals = fleet.scalar_totals;
  for (const auto& r : fleet.homes) {
    fp.per_home.push_back(r.scalars);
    fp.verdicts.push_back(r.ok());
    fp.seeds.push_back(r.seed);
  }
  fp.homes_ok = fleet.homes_ok;
  fp.total_frames = fleet.total_frames;
  return fp;
}

TEST(FleetDeterminism, ThreadCountNeverChangesTheMergedTelemetry) {
  const FleetFingerprint one =
      fingerprint(FleetRunner(small_fleet(8, 1, false)).run());
  const FleetFingerprint two =
      fingerprint(FleetRunner(small_fleet(8, 2, false)).run());
  const FleetFingerprint eight =
      fingerprint(FleetRunner(small_fleet(8, 8, false)).run());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one.per_home.size(), 8u);
  EXPECT_EQ(one.homes_ok, 8u) << "a quiet fleet must fully converge";
}

TEST(FleetDeterminism, ChaosFleetIsDeterministicToo) {
  // Distinct per-home fault plans, homes racing on up to 8 workers — the
  // merged non-histogram telemetry and every per-home verdict must still be
  // bit-identical across pool sizes.
  const FleetResult first = FleetRunner(small_fleet(6, 1, true)).run();
  const FleetResult second = FleetRunner(small_fleet(6, 2, true)).run();
  const FleetResult third = FleetRunner(small_fleet(6, 8, true)).run();
  EXPECT_EQ(fingerprint(first), fingerprint(second));
  EXPECT_EQ(fingerprint(first), fingerprint(third));

  // Chaos actually happened, and differently per home.
  std::set<std::uint64_t> fault_mix;
  for (const auto& r : first.homes) {
    EXPECT_GT(r.faults.windows_started, 0u) << "home " << r.home_id;
    EXPECT_EQ(r.faults.windows_started, r.faults.windows_ended);
    EXPECT_EQ(r.faults.active, 0);
    // Exactly-once hwdb delivery holds under datagram mangling.
    EXPECT_TRUE(r.inserts_exactly_once) << "home " << r.home_id;
    fault_mix.insert(r.faults.windows_started * 131 + r.faults.link_faults);
  }
  EXPECT_GT(fault_mix.size(), 1u) << "fault plans did not vary across homes";
  // Recovery: the scripted faults all clear well before the end of the run,
  // so every home must converge to bound leases and a live datapath.
  EXPECT_EQ(first.homes_ok, first.homes.size());
}

TEST(FleetAggregation, TotalsAndSeriesAgreeWithPerHomeResults) {
  const FleetResult fleet = FleetRunner(small_fleet(4, 2, false)).run();
  ASSERT_EQ(fleet.homes.size(), 4u);
  // Homes land sorted by id regardless of which worker finished first.
  for (std::size_t i = 0; i < fleet.homes.size(); ++i) {
    EXPECT_EQ(fleet.homes[i].home_id, i);
  }
  // Spot-check one series: the total is the per-home sum, the distribution
  // brackets it.
  const std::string series = "homework.dhcp.acks";
  double sum = 0.0;
  for (const auto& r : fleet.homes) sum += r.scalars.at(series);
  EXPECT_DOUBLE_EQ(fleet.scalar_totals.at(series), sum);
  const SeriesStat& stat = fleet.series.at(series);
  EXPECT_EQ(stat.homes, 4u);
  EXPECT_DOUBLE_EQ(stat.sum, sum);
  EXPECT_LE(stat.min, stat.median);
  EXPECT_LE(stat.median, stat.max);
  // Histograms merged across homes (latency series exist and carry counts).
  bool saw_histogram = false;
  for (const auto& [name, h] : fleet.histograms) {
    if (h.count > 0) saw_histogram = true;
  }
  EXPECT_TRUE(saw_histogram);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

/// Scalars minus the snapshot bookkeeping series: a resumed home performs
/// restores its uninterrupted twin never did, so snapshot.* is the one
/// family allowed to differ.
std::map<std::string, double> scrub_snapshot(
    const std::map<std::string, double>& scalars) {
  std::map<std::string, double> out;
  for (const auto& [name, value] : scalars) {
    if (name.rfind("snapshot.", 0) != 0) out.emplace(name, value);
  }
  return out;
}

/// EXPECT per-key equality so a failure names the exact diverging series
/// instead of gtest truncating the (large) map printout.
void expect_scalars_equal(const std::map<std::string, double>& a,
                          const std::map<std::string, double>& b,
                          const std::string& context) {
  for (const auto& [name, value] : a) {
    const auto it = b.find(name);
    if (it == b.end()) {
      ADD_FAILURE() << context << ": series " << name << " missing from b";
      continue;
    }
    EXPECT_EQ(value, it->second) << context << ": series " << name;
  }
  for (const auto& [name, value] : b) {
    if (a.find(name) == a.end()) {
      ADD_FAILURE() << context << ": extra series " << name << " = " << value;
    }
  }
}

FleetConfig checkpointed_fleet(std::size_t homes, std::size_t threads) {
  FleetConfig config;
  config.homes = homes;
  config.threads = threads;
  config.seed = 2011;
  config.duration = 14 * kSecond;
  config.devices_per_home = 3;
  // Apps arm their traffic timers at lease-bind time and chaos windows can
  // straddle the kill point; both make a resume behavioural rather than
  // bit-exact, so the determinism proof runs the driver workload only.
  config.run_apps = false;
  config.chaos = false;
  config.checkpoints = true;
  config.checkpoint_interval = 5 * kSecond;
  return config;
}

TEST(FleetResume, KilledHomeResumesBitIdenticalToUninterruptedRun) {
  // Run to T, kill, restore from the last periodic checkpoint, run to 2T:
  // every non-histogram series must match the uninterrupted twin exactly.
  const FleetConfig base = checkpointed_fleet(1, 1);
  FleetConfig killed = base;
  killed.kill_home = 0;
  killed.kill_at = 7 * kSecond;

  const HomeResult a = FleetRunner(base).run_home(0);
  const HomeResult b = FleetRunner(killed).run_home(0);

  // The kill actually took the checkpoint/restore path.
  EXPECT_GT(b.scalars.at("snapshot.captures"), 0.0);
  EXPECT_GT(b.scalars.at("snapshot.restores"), 0.0);
  EXPECT_EQ(b.scalars.at("snapshot.corrupt_rejected"), 0.0);

  expect_scalars_equal(scrub_snapshot(a.scalars), scrub_snapshot(b.scalars),
                       "single home");
  EXPECT_EQ(a.devices_bound, b.devices_bound);
  EXPECT_TRUE(b.all_bound);
  EXPECT_EQ(a.inserts_applied, b.inserts_applied);
  EXPECT_EQ(a.flow_entries, b.flow_entries);
  EXPECT_TRUE(b.inserts_exactly_once);
  EXPECT_TRUE(b.ok());
}

TEST(FleetResume, EightThreadFleetWithOneResumedHomeKeepsItsFingerprint) {
  const FleetConfig base = checkpointed_fleet(8, 8);
  FleetConfig killed = base;
  killed.kill_home = 3;
  killed.kill_at = 8 * kSecond;

  const FleetResult a = FleetRunner(base).run();
  const FleetResult b = FleetRunner(killed).run();
  ASSERT_EQ(a.homes.size(), 8u);
  ASSERT_EQ(b.homes.size(), 8u);
  EXPECT_EQ(b.homes_ok, 8u);
  EXPECT_GT(b.homes[3].scalars.at("snapshot.restores"), 0.0);
  for (std::size_t i = 0; i < 8; ++i) {
    expect_scalars_equal(
        scrub_snapshot(a.homes[i].scalars), scrub_snapshot(b.homes[i].scalars),
        "home " + std::to_string(i) + (i == 3 ? " (the resumed one)" : ""));
    EXPECT_EQ(a.homes[i].ok(), b.homes[i].ok());
  }
  // The merged fleet view agrees too (scrubbed of the snapshot family).
  expect_scalars_equal(scrub_snapshot(a.scalar_totals),
                       scrub_snapshot(b.scalar_totals), "fleet totals");
  EXPECT_EQ(a.total_frames, b.total_frames);
}

TEST(FleetResume, KillBeforeFirstCheckpointFallsBackToAFreshRun) {
  FleetConfig config = checkpointed_fleet(1, 1);
  config.kill_home = 0;
  config.kill_at = 2 * kSecond;  // before the first capture at ~5s
  const HomeResult r = FleetRunner(config).run_home(0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.scalars.at("snapshot.restores"), 0.0);

  const HomeResult plain = FleetRunner(checkpointed_fleet(1, 1)).run_home(0);
  EXPECT_EQ(scrub_snapshot(plain.scalars), scrub_snapshot(r.scalars));
}

#ifndef NDEBUG
using EventLoopOwnershipDeathTest = ::testing::Test;

TEST(EventLoopOwnershipDeathTest, ForeignThreadScheduleAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::EventLoop loop;
  loop.schedule_at(1, [] {});  // binds ownership to this thread
  EXPECT_DEATH(
      {
        std::thread foreign([&] { loop.schedule_at(2, [] {}); });
        foreign.join();
      },
      "does not own");
}
#endif

}  // namespace
}  // namespace hw::fleet
