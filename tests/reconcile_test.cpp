// Goal-state reconciliation suite: the pure delta computation (rule-by-rule
// and property-hammered on randomized desired/actual pairs — applying a
// delta and recomputing yields an empty delta, and applying twice equals
// applying once), the DesiredStore 'DSTA' snapshot layer, the policy
// lowering into compiled drop flows, and the full reconciler driven inside
// a live HomeworkRouter: control-API writes land in desired state, state
// fixups heal registry/lease divergence, and warm restart converges in a
// single round.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "homework/router.hpp"
#include "nox/component.hpp"
#include "policy/compiler.hpp"
#include "reconcile/actual_state.hpp"
#include "reconcile/desired_state.hpp"
#include "reconcile/reconciler.hpp"
#include "router_fixture.hpp"
#include "snapshot/codec.hpp"
#include "telemetry/metrics.hpp"
#include "util/rand.hpp"

namespace hw::reconcile {
namespace {

DesiredFlow make_flow(const std::string& key, std::uint16_t tp_dst,
                      std::uint16_t priority = 0x8000,
                      std::uint16_t idle = 0, std::uint16_t hard = 0) {
  DesiredFlow f;
  f.key = key;
  f.match = ofp::Match::any();
  f.match.with_dl_type(0x0800).with_nw_proto(17).with_tp_dst(tp_dst);
  f.priority = priority;
  f.actions = ofp::send_to_controller();
  f.idle_timeout = idle;
  f.hard_timeout = hard;
  return f;
}

ActualFlow as_actual(const DesiredFlow& f) {
  ActualFlow a;
  a.match = f.match;
  a.priority = f.priority;
  a.cookie = f.cookie();
  a.actions = f.actions;
  a.idle_timeout = f.idle_timeout;
  a.hard_timeout = f.hard_timeout;
  return a;
}

// ---------------------------------------------------------------------------
// compute_flow_delta: one test per rule.

TEST(FlowDelta, EmptyOnIdenticalStates) {
  DesiredState desired;
  desired.put_flow(make_flow("a", 53));
  desired.put_flow(make_flow("b", 67));
  std::vector<ActualFlow> actual;
  for (const auto& [key, f] : desired.flows) actual.push_back(as_actual(f));

  const FlowDelta delta = compute_flow_delta(desired, actual);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.noop, 2u);
}

TEST(FlowDelta, MissingDesiredFlowIsAnAdd) {
  DesiredState desired;
  desired.put_flow(make_flow("a", 53));
  const FlowDelta delta = compute_flow_delta(desired, {});
  ASSERT_EQ(delta.add.size(), 1u);
  EXPECT_EQ(delta.add[0].key, "a");
  EXPECT_TRUE(delta.modify.empty());
  EXPECT_TRUE(delta.del.empty());
}

TEST(FlowDelta, ActionDriftWithEqualTimeoutsIsAModify) {
  DesiredState desired;
  desired.put_flow(make_flow("a", 53));
  ActualFlow drifted = as_actual(desired.flows.at("a"));
  drifted.actions = ofp::output_to(3);  // wrong actions, same timeouts

  const FlowDelta delta = compute_flow_delta(desired, {drifted});
  ASSERT_EQ(delta.modify.size(), 1u);
  EXPECT_EQ(delta.modify[0].key, "a");
  EXPECT_TRUE(delta.add.empty());
  EXPECT_TRUE(delta.del.empty());
}

TEST(FlowDelta, CookieDriftAloneIsAModify) {
  // A row matching the desired pattern but carrying a foreign cookie is
  // claimed and re-tagged: Modify updates actions+cookie in place.
  DesiredState desired;
  desired.put_flow(make_flow("a", 53));
  ActualFlow drifted = as_actual(desired.flows.at("a"));
  drifted.cookie = 0;  // a reactive install that happens to share the pattern

  const FlowDelta delta = compute_flow_delta(desired, {drifted});
  ASSERT_EQ(delta.modify.size(), 1u);
  EXPECT_TRUE(delta.del.empty());
}

TEST(FlowDelta, TimeoutDriftForcesDeleteThenAdd) {
  // FlowTable's Modify semantics never touch timeouts, so a timeout
  // divergence cannot be healed in place.
  DesiredState desired;
  desired.put_flow(make_flow("a", 53, 0x8000, /*idle=*/30));
  ActualFlow drifted = as_actual(desired.flows.at("a"));
  drifted.idle_timeout = 0;

  const FlowDelta delta = compute_flow_delta(desired, {drifted});
  ASSERT_EQ(delta.del.size(), 1u);
  ASSERT_EQ(delta.add.size(), 1u);
  EXPECT_TRUE(delta.modify.empty());
  EXPECT_TRUE(drifted.match.same_pattern(delta.del[0].match));
}

TEST(FlowDelta, OrphanedDesiredCookieRowIsDeleted) {
  DesiredState desired;  // empty: nothing should carry our cookie tag
  ActualFlow orphan = as_actual(make_flow("stale", 99));
  ASSERT_TRUE(nox::is_desired_cookie(orphan.cookie));

  const FlowDelta delta = compute_flow_delta(desired, {orphan});
  ASSERT_EQ(delta.del.size(), 1u);
  EXPECT_TRUE(delta.add.empty());
}

TEST(FlowDelta, ReactiveFlowsAreNeverTouched) {
  // Foreign cookies — including 0, the reactive flow-setup namespace — are
  // someone else's rows; the reconciler owns only its own cookie space.
  DesiredState desired;
  desired.put_flow(make_flow("a", 53));
  ActualFlow reactive;
  reactive.match = ofp::Match::any();
  reactive.match.with_dl_src(MacAddress::from_index(9));
  reactive.priority = 0x8000;
  reactive.cookie = 0;
  reactive.actions = ofp::output_to(2);
  reactive.idle_timeout = 60;

  const FlowDelta delta = compute_flow_delta(desired, {reactive});
  ASSERT_EQ(delta.add.size(), 1u);  // the missing desired flow
  EXPECT_TRUE(delta.del.empty());
  EXPECT_TRUE(delta.modify.empty());
}

// ---------------------------------------------------------------------------
// Property tests: randomized desired/actual pairs. ActualState::apply mirrors
// the datapath's strict-mod semantics, so "apply the delta, recompute, get
// nothing" is exactly the idempotence contract the reconciler leans on.

DesiredState random_desired(Rng& rng, std::size_t n) {
  DesiredState desired;
  for (std::size_t i = 0; i < n; ++i) {
    DesiredFlow f = make_flow(
        "k" + std::to_string(i),
        static_cast<std::uint16_t>(1000 + i),
        static_cast<std::uint16_t>(0x8000 + rng.uniform(16)),
        static_cast<std::uint16_t>(rng.chance(0.3) ? rng.uniform(120) : 0),
        static_cast<std::uint16_t>(rng.chance(0.2) ? rng.uniform(600) : 0));
    if (rng.chance(0.5)) {
      f.actions = ofp::output_to(static_cast<std::uint16_t>(1 + rng.uniform(4)));
    }
    desired.put_flow(std::move(f));
  }
  return desired;
}

/// Mutates a faithful mirror of `desired` into a divergent actual table:
/// rows dropped, actions drifted, timeouts drifted, stale desired-cookie
/// rows and untouchable reactive rows mixed in.
std::vector<ActualFlow> random_divergence(const DesiredState& desired,
                                          Rng& rng) {
  std::vector<ActualFlow> actual;
  for (const auto& [key, f] : desired.flows) {
    if (rng.chance(0.25)) continue;  // missing → Add
    ActualFlow a = as_actual(f);
    if (rng.chance(0.25)) a.actions = ofp::output_to(7);   // drift → Modify
    if (rng.chance(0.2)) a.idle_timeout ^= 1;              // drift → Del+Add
    if (rng.chance(0.1)) a.cookie ^= 0xff;                 // drift → Modify
    actual.push_back(std::move(a));
  }
  const std::size_t strays = rng.uniform(4);
  for (std::size_t i = 0; i < strays; ++i) {
    // Stale desired-owned rows from a previous policy generation.
    actual.push_back(as_actual(
        make_flow("stale" + std::to_string(i),
                  static_cast<std::uint16_t>(5000 + i))));
  }
  const std::size_t reactive = rng.uniform(4);
  for (std::size_t i = 0; i < reactive; ++i) {
    ActualFlow r;
    r.match = ofp::Match::any();
    r.match.with_dl_src(
        MacAddress::from_index(static_cast<std::uint32_t>(0x100 + i)));
    r.cookie = 0;
    r.actions = ofp::output_to(1);
    r.idle_timeout = 60;
    actual.push_back(std::move(r));
  }
  return actual;
}

TEST(FlowDeltaProperty, ApplyThenRecomputeIsEmpty) {
  Rng rng(2011);
  for (int iter = 0; iter < 200; ++iter) {
    const DesiredState desired = random_desired(rng, 1 + rng.uniform(12));
    const std::vector<ActualFlow> divergent = random_divergence(desired, rng);
    const std::size_t reactive_before = static_cast<std::size_t>(
        std::count_if(divergent.begin(), divergent.end(), [](const ActualFlow& f) {
          return !nox::is_desired_cookie(f.cookie);
        }));

    const FlowDelta delta = compute_flow_delta(desired, divergent);

    ActualState mirror;
    std::vector<ofp::FlowStatsEntry> entries;
    for (const ActualFlow& f : divergent) {
      ofp::FlowStatsEntry e;
      e.match = f.match;
      e.priority = f.priority;
      e.cookie = f.cookie;
      e.actions = f.actions;
      e.idle_timeout = f.idle_timeout;
      e.hard_timeout = f.hard_timeout;
      entries.push_back(std::move(e));
    }
    mirror.refresh(entries);
    mirror.apply(delta);

    const FlowDelta after = compute_flow_delta(desired, mirror.flows());
    EXPECT_TRUE(after.empty())
        << "iter " << iter << ": +" << after.add.size() << " ~"
        << after.modify.size() << " -" << after.del.size();
    EXPECT_EQ(after.noop, desired.flows.size()) << "iter " << iter;

    // Reactive rows rode through untouched.
    const std::size_t reactive_after = static_cast<std::size_t>(
        std::count_if(mirror.flows().begin(), mirror.flows().end(),
                      [](const ActualFlow& f) {
                        return !nox::is_desired_cookie(f.cookie);
                      }));
    EXPECT_EQ(reactive_after, reactive_before) << "iter " << iter;
  }
}

TEST(FlowDeltaProperty, ApplyingTwiceEqualsApplyingOnce) {
  Rng rng(7);
  for (int iter = 0; iter < 100; ++iter) {
    const DesiredState desired = random_desired(rng, 1 + rng.uniform(10));
    const std::vector<ActualFlow> divergent = random_divergence(desired, rng);
    const FlowDelta delta = compute_flow_delta(desired, divergent);

    ActualState once;
    ActualState twice;
    std::vector<ofp::FlowStatsEntry> entries;
    for (const ActualFlow& f : divergent) {
      ofp::FlowStatsEntry e;
      e.match = f.match;
      e.priority = f.priority;
      e.cookie = f.cookie;
      e.actions = f.actions;
      e.idle_timeout = f.idle_timeout;
      e.hard_timeout = f.hard_timeout;
      entries.push_back(std::move(e));
    }
    once.refresh(entries);
    twice.refresh(entries);
    once.apply(delta);
    twice.apply(delta);
    twice.apply(delta);

    auto canon = [](const std::vector<ActualFlow>& flows) {
      std::multiset<std::string> rows;
      for (const ActualFlow& f : flows) {
        rows.insert(f.match.to_string() + "|" + std::to_string(f.priority) +
                    "|" + ofp::to_string(f.actions) + "|" +
                    std::to_string(f.cookie) + "|" +
                    std::to_string(f.idle_timeout) + "|" +
                    std::to_string(f.hard_timeout));
      }
      return rows;
    };
    EXPECT_EQ(canon(once.flows()), canon(twice.flows())) << "iter " << iter;
  }
}

TEST(FlowDeltaProperty, DeltaIsMinimal) {
  // Every emitted mod is justified: no Add for a row already present and
  // equal, no Delete for a row the desired state still wants unchanged.
  Rng rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    const DesiredState desired = random_desired(rng, 1 + rng.uniform(10));
    const std::vector<ActualFlow> divergent = random_divergence(desired, rng);
    const FlowDelta delta = compute_flow_delta(desired, divergent);

    for (const DesiredFlow& add : delta.add) {
      for (const ActualFlow& a : divergent) {
        const bool same = a.match.same_pattern(add.match) &&
                          a.priority == add.priority;
        if (!same) continue;
        // Claimed rows only land in `add` when timeouts diverge.
        EXPECT_TRUE(a.idle_timeout != add.idle_timeout ||
                    a.hard_timeout != add.hard_timeout)
            << "iter " << iter << ": gratuitous re-add of " << add.key;
      }
    }
    for (const Deletion& del : delta.del) {
      for (const auto& [key, want] : desired.flows) {
        const bool same = want.match.same_pattern(del.match) &&
                          want.priority == del.priority;
        if (!same) continue;
        // A delete aimed at a still-desired pattern must be the first half
        // of a timeout-heal; the matching add must exist.
        const bool readded = std::any_of(
            delta.add.begin(), delta.add.end(), [&](const DesiredFlow& a) {
              return a.key == key;
            });
        EXPECT_TRUE(readded) << "iter " << iter << ": delete without re-add";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DesiredStore snapshot layer ('DSTA').

TEST(DesiredStoreSnapshot, RoundTripsFlowsAndIntents) {
  DesiredStore store;
  DesiredState& s1 = store.state(1);
  s1.put_flow(make_flow("dhcp:intercept", 67, 0xffff));
  s1.put_flow(make_flow("policy:block:src:aa", 9, 0x9100));
  DeviceIntent& d = s1.device("02:00:00:00:00:01");
  d.admission = DeviceIntent::Admission::Permitted;
  d.tags = {"kids", "console"};
  d.lease_ip = Ipv4Address{192, 168, 1, 100};
  d.rate_limit_bps = 2'000'000;
  store.state(7).device("02:00:00:00:00:02").admission =
      DeviceIntent::Admission::Denied;

  snapshot::Writer w;
  store.save(w);
  const Bytes image = std::move(w).finish();
  auto reader = snapshot::Reader::parse(image);
  ASSERT_TRUE(reader.ok()) << reader.error().message;

  DesiredStore restored;
  restored.state(3).put_flow(make_flow("junk", 1));  // must be replaced
  ASSERT_TRUE(restored.restore(reader.value()).ok());

  ASSERT_EQ(restored.size(), 2u);
  ASSERT_NE(restored.find(1), nullptr);
  EXPECT_EQ(restored.find(3), nullptr);
  EXPECT_TRUE(*restored.find(1) == *store.find(1));
  EXPECT_TRUE(*restored.find(7) == *store.find(7));
  const DeviceIntent& rd = restored.state(1).devices.at("02:00:00:00:00:01");
  EXPECT_EQ(rd.lease_ip, (Ipv4Address{192, 168, 1, 100}));
  EXPECT_EQ(rd.tags, (std::vector<std::string>{"kids", "console"}));
  EXPECT_EQ(rd.rate_limit_bps, 2'000'000u);
}

TEST(DesiredStoreSnapshot, MissingChunkLeavesStateAlone) {
  snapshot::Writer w;
  w.begin_chunk(snapshot::tag("ZZZZ")).u64(1);
  w.end_chunk();
  const Bytes image = std::move(w).finish();
  auto reader = snapshot::Reader::parse(image);
  ASSERT_TRUE(reader.ok());

  DesiredStore store;
  store.state(1).put_flow(make_flow("keep", 53));
  ASSERT_TRUE(store.restore(reader.value()).ok());
  ASSERT_NE(store.find(1), nullptr);
  EXPECT_EQ(store.find(1)->flows.count("keep"), 1u);
}

// ---------------------------------------------------------------------------
// Policy lowering → compiled drop flows.

TEST(CompileBlockFlows, LeasedDeviceBlocksByAddress) {
  policy::LoweredStatement s;
  s.verb = policy::LoweredStatement::Verb::BlockNetwork;
  s.mac = "02:00:00:00:00:01";
  s.ip = Ipv4Address{192, 168, 1, 100};

  const auto flows = compile_block_flows(s);
  ASSERT_EQ(flows.size(), 2u);
  for (const DesiredFlow& f : flows) {
    EXPECT_TRUE(f.actions.empty()) << "block flows must drop";
    EXPECT_EQ(f.priority, 0x9100);
    EXPECT_EQ(f.match.dl_type, 0x0800);
    EXPECT_TRUE(nox::is_desired_cookie(f.cookie()));
  }
  EXPECT_EQ(flows[0].key, "policy:block:src:" + s.mac);
  EXPECT_EQ(flows[1].key, "policy:block:dst:" + s.mac);
  EXPECT_EQ(flows[0].match.nw_src, s.ip);
  EXPECT_EQ(flows[1].match.nw_dst, s.ip);
}

TEST(CompileBlockFlows, UnleasedDeviceFallsBackToMacMatch) {
  policy::LoweredStatement s;
  s.verb = policy::LoweredStatement::Verb::BlockNetwork;
  s.mac = MacAddress::from_index(5).to_string();

  const auto flows = compile_block_flows(s);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_TRUE(flows[0].actions.empty());
  EXPECT_EQ(flows[0].match.dl_src, MacAddress::from_index(5));
  EXPECT_EQ(flows[1].match.dl_dst, MacAddress::from_index(5));
  EXPECT_EQ(flows[0].match.dl_type, 0);  // all ethertypes, not just IP
}

// ---------------------------------------------------------------------------
// Live reconciler inside a HomeworkRouter.

struct ReconcileFixture : homework::testing::RouterFixture {
  ReconcileFixture() : RouterFixture(config()) {}
  static homework::HomeworkRouter::Config config() {
    homework::HomeworkRouter::Config c;
    c.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
    return c;  // resync defaults to Reconcile
  }
  nox::DatapathId dpid() { return router.datapath().id(); }
};

TEST_F(ReconcileFixture, BootConvergesServiceFlowsThroughADeltaRound) {
  loop.run_for(kSecond);
  Reconciler* rec = router.reconciler();
  ASSERT_NE(rec, nullptr);

  // The join round installed the module service flows as desired deltas.
  const RoundReport* report = rec->last_report(dpid());
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(rec->verify_converged(dpid(), router.datapath().table()));

  // Every service flow in the table carries the desired cookie tag.
  std::size_t tagged = 0;
  router.datapath().table().for_each([&](const ofp::FlowEntry& e) {
    if (nox::is_desired_cookie(e.cookie)) ++tagged;
  });
  EXPECT_GE(tagged, 4u);  // dhcp intercept, dns query/answer, arp

  // A follow-up round over a converged table is a pure noop.
  const double rounds_before =
      telemetry::MetricRegistry::current().total("reconcile.rounds").value_or(0);
  rec->request_round(dpid());
  loop.run_for(kSecond);
  EXPECT_GT(telemetry::MetricRegistry::current()
                .total("reconcile.rounds")
                .value_or(0),
            rounds_before);
  const RoundReport* after = rec->last_report(dpid());
  ASSERT_NE(after, nullptr);
  EXPECT_TRUE(after->converged);
  EXPECT_EQ(after->added + after->modified + after->deleted, 0u);
}

TEST_F(ReconcileFixture, ControlApiDecisionLandsInDesiredStateAndRegistry) {
  sim::Host& host = make_device("laptop");
  host.start_dhcp();
  loop.run_for(kSecond);

  homework::HttpRequest req;
  req.method = "POST";
  req.path = "/api/devices/" + host.mac().to_string() + "/deny";
  ASSERT_EQ(router.control_api().handle(req).status, 200);
  loop.run_for(kSecond);

  const DesiredState* state = router.desired_store()->find(dpid());
  ASSERT_NE(state, nullptr);
  const auto it = state->devices.find(host.mac().to_string());
  ASSERT_NE(it, state->devices.end());
  EXPECT_EQ(it->second.admission, DeviceIntent::Admission::Denied);
  EXPECT_TRUE(
      router.reconciler()->verify_converged(dpid(), router.datapath().table()));
}

TEST_F(ReconcileFixture, AdmissionFixupHealsRegistryDivergence) {
  sim::Host& host = admitted_device("laptop");

  // Declare the device denied in desired state WITHOUT going through the
  // registry — pure divergence between goal and controller state.
  router.desired_store()->state(dpid()).device(host.mac().to_string())
      .admission = DeviceIntent::Admission::Denied;
  const double fixups_before = telemetry::MetricRegistry::current()
                                   .total("reconcile.registry_fixups")
                                   .value_or(0);
  router.reconciler()->request_round(dpid());
  loop.run_for(kSecond);

  const homework::DeviceRecord* rec = router.registry().find(host.mac());
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, homework::DeviceState::Denied);
  EXPECT_GT(telemetry::MetricRegistry::current()
                .total("reconcile.registry_fixups")
                .value_or(0),
            fixups_before);
  const RoundReport* report = router.reconciler()->last_report(dpid());
  ASSERT_NE(report, nullptr);
  EXPECT_GE(report->registry_fixups, 1u);
}

TEST_F(ReconcileFixture, BlockPolicyCompilesToProactiveDropFlows) {
  sim::Host& host = admitted_device("console");
  policy::PolicyDocument p;
  p.id = "grounded";
  p.who.macs = {host.mac().to_string()};
  p.block_network = true;
  router.policy().install(std::move(p));
  loop.run_for(kSecond);

  // The policy change recompiled desired state and the round installed the
  // drop pair (IP-based: the console holds a lease).
  const DesiredState* state = router.desired_store()->find(dpid());
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->flows.count("policy:block:src:" + host.mac().to_string()),
            1u);
  std::size_t drops = 0;
  router.datapath().table().for_each([&](const ofp::FlowEntry& e) {
    if (nox::is_desired_cookie(e.cookie) && e.actions.empty()) ++drops;
  });
  EXPECT_GE(drops, 2u);

  // Uninstall: the next round deletes exactly the orphaned drop rows.
  router.policy().uninstall("grounded");
  loop.run_for(kSecond);
  drops = 0;
  router.datapath().table().for_each([&](const ofp::FlowEntry& e) {
    if (nox::is_desired_cookie(e.cookie) && e.actions.empty()) ++drops;
  });
  EXPECT_EQ(drops, 0u);
  EXPECT_TRUE(
      router.reconciler()->verify_converged(dpid(), router.datapath().table()));
}

TEST_F(ReconcileFixture, WarmRestartConvergesInASingleRound) {
  sim::Host& a = admitted_device("a");
  sim::Host& b = admitted_device("b");
  ASSERT_TRUE(a.ip() && b.ip());
  (void)a.send_udp(*b.ip(), 40000, 7, 64);  // reactive flows in the table
  loop.run_for(kSecond);

  (void)router.snapshots().capture();
  const double rounds_before =
      telemetry::MetricRegistry::current().total("reconcile.rounds").value_or(0);
  ASSERT_TRUE(router.warm_restart().ok());
  loop.run_for(2 * kSecond);

  // Exactly one round ran for the restart (plus nothing else pending), and
  // the restored table needed no repair.
  const double rounds_after =
      telemetry::MetricRegistry::current().total("reconcile.rounds").value_or(0);
  EXPECT_GE(rounds_after, rounds_before + 1);
  const RoundReport* report = router.reconciler()->last_report(dpid());
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->converged)
      << "warm restart restored a diverged table: +" << report->added << " ~"
      << report->modified << " -" << report->deleted;
  EXPECT_TRUE(
      router.reconciler()->verify_converged(dpid(), router.datapath().table()));

  // Traffic still flows on the restored reactive entries.
  EXPECT_TRUE(a.ping(*b.ip(), 1));
  loop.run_for(kSecond);
}

TEST_F(ReconcileFixture, ColdRestartRepairsEverythingInOneRound) {
  admitted_device("a");
  loop.run_for(kSecond);
  ASSERT_GT(router.datapath().table().size(), 0u);

  // Cold restart: the table is wiped; the rejoin round must re-add every
  // desired flow in a single delta.
  router.datapath().restart();
  loop.run_for(3 * kSecond);

  const RoundReport* report = router.reconciler()->last_report(dpid());
  ASSERT_NE(report, nullptr);
  EXPECT_GE(report->added, 4u) << "rejoin round must repopulate service flows";
  EXPECT_EQ(report->deleted, 0u);
  EXPECT_TRUE(
      router.reconciler()->verify_converged(dpid(), router.datapath().table()));
}

TEST_F(ReconcileFixture, DesiredStateSurvivesCheckpointRestore) {
  sim::Host& host = admitted_device("laptop");
  policy::PolicyDocument p;
  p.id = "grounded";
  p.who.macs = {host.mac().to_string()};
  p.block_network = true;
  router.policy().install(std::move(p));
  loop.run_for(kSecond);

  const auto names = router.snapshots().layer_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "desired"), names.end())
      << "DesiredStore must be a registered snapshot layer";

  const auto image = router.snapshots().capture();
  router.desired_store()->state(dpid()).flows.clear();  // diverge in memory
  ASSERT_TRUE(router.snapshots().restore(image).ok());

  const DesiredState* state = router.desired_store()->find(dpid());
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->flows.count("policy:block:src:" + host.mac().to_string()),
            1u);
  const auto it = state->devices.find(host.mac().to_string());
  ASSERT_NE(it, state->devices.end());
  EXPECT_EQ(it->second.lease_ip, host.ip());
}

}  // namespace
}  // namespace hw::reconcile
