// The four interface backends (Figures 1-4) as pure clients of hwdb and the
// control API.
#include "router_fixture.hpp"
#include "ui/artifact.hpp"
#include "ui/bandwidth_monitor.hpp"
#include "ui/control_board.hpp"
#include "ui/policy_editor.hpp"

namespace hw::ui {
namespace {

using homework::testing::RouterFixture;

// ---------------------------------------------------------------------------
// Figure 1: bandwidth monitor

struct BandwidthFixture : RouterFixture {
  static homework::HomeworkRouter::Config config() {
    auto c = default_config();
    c.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
    return c;
  }
  BandwidthFixture() : RouterFixture(config()) {}

  void pump_traffic(sim::Host& host, Ipv4Address dst, std::uint16_t dport,
                    int packets, std::size_t size = 500) {
    for (int i = 0; i < packets; ++i) {
      host.send_udp(dst, 5000, dport, size);
      loop.run_for(100 * kMillisecond);
    }
  }

  Ipv4Address resolve(sim::Host& host, const std::string& name) {
    Ipv4Address out;
    host.resolve(name, [&](Result<Ipv4Address> r, const std::string&) {
      if (r.ok()) out = r.value();
    });
    loop.run_for(kSecond);
    return out;
  }
};

TEST_F(BandwidthFixture, PerDeviceRatesAndBreakdown) {
  sim::Host& heavy = make_device("heavy");
  sim::Host& light = make_device("light");
  ASSERT_TRUE(bind(heavy).has_value());
  ASSERT_TRUE(bind(light).has_value());
  const auto dst = resolve(heavy, "www.example.com");

  BandwidthMonitor monitor(router.db(), {.window_secs = 10, .refresh = kSecond});
  monitor.set_label(heavy.mac().to_string(), "Tom's Mac Air");

  pump_traffic(heavy, dst, 1935, 30, 900);  // streaming port
  pump_traffic(light, dst, 9999, 5, 100);
  loop.run_for(2 * kSecond);
  monitor.refresh();

  ASSERT_EQ(monitor.devices().size(), 2u);
  // Sorted by rate: heavy first, with its friendly label.
  EXPECT_EQ(monitor.devices()[0].label, "Tom's Mac Air");
  EXPECT_GT(monitor.devices()[0].total_bytes_per_sec,
            monitor.devices()[1].total_bytes_per_sec);

  const auto breakdown = monitor.device_breakdown(heavy.mac().to_string());
  ASSERT_FALSE(breakdown.empty());
  EXPECT_EQ(breakdown[0].app, "streaming");
  EXPECT_GT(monitor.total_bytes_per_sec(), 0.0);

  const std::string screen = monitor.render();
  EXPECT_NE(screen.find("Tom's Mac Air"), std::string::npos);
  EXPECT_NE(screen.find("streaming"), std::string::npos);
}

TEST_F(BandwidthFixture, SubscriptionUpdatesAutomatically) {
  sim::Host& host = make_device("laptop");
  ASSERT_TRUE(bind(host).has_value());
  const auto dst = resolve(host, "www.example.com");
  BandwidthMonitor monitor(router.db(), {.window_secs = 5, .refresh = kSecond});
  const auto updates_before = monitor.updates();
  pump_traffic(host, dst, 80, 10);
  loop.run_for(2 * kSecond);
  EXPECT_GT(monitor.updates(), updates_before);
  EXPECT_FALSE(monitor.devices().empty());
}

TEST_F(BandwidthFixture, QuietWindowShowsNothing) {
  sim::Host& host = make_device("laptop");
  ASSERT_TRUE(bind(host).has_value());
  const auto dst = resolve(host, "www.example.com");
  BandwidthMonitor monitor(router.db(), {.window_secs = 5, .refresh = kSecond});
  pump_traffic(host, dst, 80, 10);
  loop.run_for(30 * kSecond);  // traffic ages out of the 5s window
  monitor.refresh();
  EXPECT_TRUE(monitor.devices().empty());
}

// ---------------------------------------------------------------------------
// Figure 2: artifact

struct ArtifactFixture : BandwidthFixture {};

TEST_F(ArtifactFixture, Mode1LedCountTracksRssi) {
  sim::Host& walker = make_device("artifact", sim::Position{5, 5});
  ASSERT_TRUE(bind(walker).has_value());
  NetworkArtifact artifact(router.db(),
                           {.led_count = 12, .own_mac = walker.mac().to_string()});
  artifact.set_mode(ArtifactMode::SignalStrength);

  auto lit = [](const LedFrame& f) {
    return std::count_if(f.begin(), f.end(),
                         [](LedColor c) { return !(c == kLedOff); });
  };

  loop.run_for(3 * kSecond);
  const auto near_lit = lit(artifact.render());
  router.move_device(walker.mac(), sim::Position{55, 55});
  loop.run_for(3 * kSecond);
  const auto far_lit = lit(artifact.render());
  EXPECT_GT(near_lit, far_lit);
  EXPECT_GT(near_lit, 6);
}

TEST_F(ArtifactFixture, Mode1HelperMapping) {
  NetworkArtifact artifact(router.db(), {.led_count = 10, .own_mac = "x"});
  EXPECT_EQ(artifact.lit_count_for_rssi(-30), 10u);
  EXPECT_EQ(artifact.lit_count_for_rssi(-90), 0u);
  EXPECT_EQ(artifact.lit_count_for_rssi(-60), 5u);
}

TEST_F(ArtifactFixture, Mode2SpeedGrowsWithProportion) {
  NetworkArtifact artifact(router.db(), {.led_count = 12, .own_mac = "x"});
  EXPECT_LT(artifact.animation_speed(0.0), artifact.animation_speed(0.5));
  EXPECT_LT(artifact.animation_speed(0.5), artifact.animation_speed(1.0));
  EXPECT_DOUBLE_EQ(artifact.animation_speed(2.0), artifact.animation_speed(1.0));
}

TEST_F(ArtifactFixture, Mode3FlashesOnLeaseEvents) {
  NetworkArtifact artifact(router.db(), {.led_count = 4, .own_mac = "x"});
  artifact.set_mode(ArtifactMode::Events);
  EXPECT_EQ(NetworkArtifact::to_string(artifact.render()), "....");

  sim::Host& guest = make_device("guest");
  ASSERT_TRUE(bind(guest).has_value());
  loop.run_for(kSecond);
  EXPECT_EQ(NetworkArtifact::to_string(artifact.render()), "GGGG");

  // Drain the green flash, then release → blue.
  artifact.render();
  artifact.render();
  guest.release_dhcp();
  loop.run_for(kSecond);
  EXPECT_EQ(NetworkArtifact::to_string(artifact.render()), "BBBB");
}

TEST_F(ArtifactFixture, Mode3RedOnRetryStorm) {
  NetworkArtifact artifact(router.db(),
                           {.led_count = 4, .own_mac = "x",
                            .retry_flash_threshold = 0.01});
  // A station at the edge of coverage sends a lot: retries accumulate.
  sim::Host& attic = make_device("attic", sim::Position{70, 70});
  ASSERT_TRUE(bind(attic).has_value());
  const auto dst = resolve(attic, "www.example.com");
  // Enter event mode after the join so its green flash is not queued.
  artifact.set_mode(ArtifactMode::Events);
  pump_traffic(attic, dst, 9999, 30, 200);
  loop.run_for(2 * kSecond);
  EXPECT_EQ(NetworkArtifact::to_string(artifact.render()), "RRRR");
}

// ---------------------------------------------------------------------------
// Figure 3: control board

struct BoardFixture : RouterFixture {};

TEST_F(BoardFixture, CategoriesTrackRegistry) {
  sim::Host& pending = make_device("new-phone");
  pending.start_dhcp();
  loop.run_for(2 * kSecond);

  DhcpControlBoard board(router.control_api());
  board.refresh();
  ASSERT_EQ(board.pending().size(), 1u);
  EXPECT_TRUE(board.permitted().empty());
  EXPECT_EQ(board.pending()[0].label, "new-phone");  // hostname fallback
  EXPECT_GT(board.pending()[0].dhcp_requests, 0);

  EXPECT_TRUE(board.drag_to_permitted(pending.mac().to_string()));
  loop.run_for(5 * kSecond);
  board.refresh();
  EXPECT_TRUE(board.pending().empty());
  ASSERT_EQ(board.permitted().size(), 1u);
  EXPECT_FALSE(board.permitted()[0].ip.empty());

  EXPECT_TRUE(board.drag_to_denied(pending.mac().to_string()));
  ASSERT_EQ(board.denied().size(), 1u);
}

TEST_F(BoardFixture, MetadataLabelsApply) {
  sim::Host& host = make_device("phone");
  host.start_dhcp();
  loop.run_for(2 * kSecond);
  DhcpControlBoard board(router.control_api());
  EXPECT_TRUE(board.set_label(host.mac().to_string(), "Kate's phone"));
  ASSERT_EQ(board.pending().size(), 1u);
  EXPECT_EQ(board.pending()[0].label, "Kate's phone");
  const std::string rendered = board.render();
  EXPECT_NE(rendered.find("Kate's phone"), std::string::npos);
  EXPECT_NE(rendered.find("requesting access"), std::string::npos);
}

TEST_F(BoardFixture, BogusMacRejected) {
  DhcpControlBoard board(router.control_api());
  EXPECT_FALSE(board.drag_to_permitted("not-a-mac"));
}

// ---------------------------------------------------------------------------
// Figure 4: policy editor

struct EditorFixture : RouterFixture {};

TEST_F(EditorFixture, CompileMapsPanelsToDocument) {
  PolicyEditor editor(router.control_api());
  PolicyPanels panels;
  panels.who_tags = {"kids"};
  panels.limit_to_sites = true;
  panels.sites = {"*.facebook.com"};
  panels.days = {1, 2, 3};
  panels.start_minute = 900;
  panels.end_minute = 1200;
  panels.key_unlocks = true;
  panels.unlock_token = "tok";
  const auto doc = editor.compile("p1", panels);
  EXPECT_EQ(doc.id, "p1");
  EXPECT_EQ(doc.who.tags, panels.who_tags);
  EXPECT_EQ(doc.sites.kind, policy::SiteRuleKind::AllowOnly);
  EXPECT_EQ(doc.when.days, panels.days);
  EXPECT_EQ(doc.unlock, policy::UnlockEffect::LiftAll);
}

TEST_F(EditorFixture, SubmitAndRetractThroughApi) {
  PolicyEditor editor(router.control_api());
  const auto doc = editor.kids_facebook_weekdays_example();
  EXPECT_TRUE(editor.submit(doc));
  EXPECT_EQ(router.policy().policies().size(), 1u);
  EXPECT_TRUE(editor.retract(doc.id));
  EXPECT_TRUE(router.policy().policies().empty());
  EXPECT_FALSE(editor.retract("never-existed"));
}

TEST_F(EditorFixture, KeyImagesHaveExpectedLayout) {
  const auto unlock = PolicyEditor::make_unlock_key("parent-key");
  EXPECT_NE(unlock.read_file("homework/token"), nullptr);

  PolicyEditor editor(router.control_api());
  const auto doc = editor.kids_facebook_weekdays_example();
  const auto key = PolicyEditor::make_policy_key("parent-key", {doc});
  auto parsed = policy::parse_policy_key(key);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().token, "parent-key");
  ASSERT_EQ(parsed.value().policies.size(), 1u);
  EXPECT_EQ(parsed.value().policies[0].id, doc.id);
}

}  // namespace
}  // namespace hw::ui
