
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/app_map.cpp" "src/net/CMakeFiles/hw_net.dir/app_map.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/app_map.cpp.o.d"
  "/root/repo/src/net/arp.cpp" "src/net/CMakeFiles/hw_net.dir/arp.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/arp.cpp.o.d"
  "/root/repo/src/net/checksum.cpp" "src/net/CMakeFiles/hw_net.dir/checksum.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/checksum.cpp.o.d"
  "/root/repo/src/net/dhcp.cpp" "src/net/CMakeFiles/hw_net.dir/dhcp.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/dhcp.cpp.o.d"
  "/root/repo/src/net/dns.cpp" "src/net/CMakeFiles/hw_net.dir/dns.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/dns.cpp.o.d"
  "/root/repo/src/net/ethernet.cpp" "src/net/CMakeFiles/hw_net.dir/ethernet.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/ethernet.cpp.o.d"
  "/root/repo/src/net/icmp.cpp" "src/net/CMakeFiles/hw_net.dir/icmp.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/icmp.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/hw_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/hw_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/hw_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/hw_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/hw_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
