file(REMOVE_RECURSE
  "CMakeFiles/hw_net.dir/app_map.cpp.o"
  "CMakeFiles/hw_net.dir/app_map.cpp.o.d"
  "CMakeFiles/hw_net.dir/arp.cpp.o"
  "CMakeFiles/hw_net.dir/arp.cpp.o.d"
  "CMakeFiles/hw_net.dir/checksum.cpp.o"
  "CMakeFiles/hw_net.dir/checksum.cpp.o.d"
  "CMakeFiles/hw_net.dir/dhcp.cpp.o"
  "CMakeFiles/hw_net.dir/dhcp.cpp.o.d"
  "CMakeFiles/hw_net.dir/dns.cpp.o"
  "CMakeFiles/hw_net.dir/dns.cpp.o.d"
  "CMakeFiles/hw_net.dir/ethernet.cpp.o"
  "CMakeFiles/hw_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/hw_net.dir/icmp.cpp.o"
  "CMakeFiles/hw_net.dir/icmp.cpp.o.d"
  "CMakeFiles/hw_net.dir/ipv4.cpp.o"
  "CMakeFiles/hw_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/hw_net.dir/packet.cpp.o"
  "CMakeFiles/hw_net.dir/packet.cpp.o.d"
  "CMakeFiles/hw_net.dir/tcp.cpp.o"
  "CMakeFiles/hw_net.dir/tcp.cpp.o.d"
  "CMakeFiles/hw_net.dir/udp.cpp.o"
  "CMakeFiles/hw_net.dir/udp.cpp.o.d"
  "libhw_net.a"
  "libhw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
