file(REMOVE_RECURSE
  "libhw_net.a"
)
