# Empty compiler generated dependencies file for hw_net.
# This may be replaced when dependencies are built.
