file(REMOVE_RECURSE
  "libhw_workload.a"
)
