file(REMOVE_RECURSE
  "CMakeFiles/hw_workload.dir/apps.cpp.o"
  "CMakeFiles/hw_workload.dir/apps.cpp.o.d"
  "CMakeFiles/hw_workload.dir/scenario.cpp.o"
  "CMakeFiles/hw_workload.dir/scenario.cpp.o.d"
  "libhw_workload.a"
  "libhw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
