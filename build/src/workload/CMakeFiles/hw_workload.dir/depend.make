# Empty dependencies file for hw_workload.
# This may be replaced when dependencies are built.
