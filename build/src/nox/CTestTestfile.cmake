# CMake generated Testfile for 
# Source directory: /root/repo/src/nox
# Build directory: /root/repo/build/src/nox
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
