
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nox/component.cpp" "src/nox/CMakeFiles/hw_nox.dir/component.cpp.o" "gcc" "src/nox/CMakeFiles/hw_nox.dir/component.cpp.o.d"
  "/root/repo/src/nox/controller.cpp" "src/nox/CMakeFiles/hw_nox.dir/controller.cpp.o" "gcc" "src/nox/CMakeFiles/hw_nox.dir/controller.cpp.o.d"
  "/root/repo/src/nox/liveness.cpp" "src/nox/CMakeFiles/hw_nox.dir/liveness.cpp.o" "gcc" "src/nox/CMakeFiles/hw_nox.dir/liveness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/openflow/CMakeFiles/hw_ofp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
