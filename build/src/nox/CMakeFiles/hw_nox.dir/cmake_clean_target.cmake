file(REMOVE_RECURSE
  "libhw_nox.a"
)
