file(REMOVE_RECURSE
  "CMakeFiles/hw_nox.dir/component.cpp.o"
  "CMakeFiles/hw_nox.dir/component.cpp.o.d"
  "CMakeFiles/hw_nox.dir/controller.cpp.o"
  "CMakeFiles/hw_nox.dir/controller.cpp.o.d"
  "CMakeFiles/hw_nox.dir/liveness.cpp.o"
  "CMakeFiles/hw_nox.dir/liveness.cpp.o.d"
  "libhw_nox.a"
  "libhw_nox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_nox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
