# Empty compiler generated dependencies file for hw_nox.
# This may be replaced when dependencies are built.
