# Empty dependencies file for hw_ofp.
# This may be replaced when dependencies are built.
