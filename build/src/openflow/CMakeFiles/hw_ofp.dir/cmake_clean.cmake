file(REMOVE_RECURSE
  "CMakeFiles/hw_ofp.dir/actions.cpp.o"
  "CMakeFiles/hw_ofp.dir/actions.cpp.o.d"
  "CMakeFiles/hw_ofp.dir/channel.cpp.o"
  "CMakeFiles/hw_ofp.dir/channel.cpp.o.d"
  "CMakeFiles/hw_ofp.dir/datapath.cpp.o"
  "CMakeFiles/hw_ofp.dir/datapath.cpp.o.d"
  "CMakeFiles/hw_ofp.dir/flow_table.cpp.o"
  "CMakeFiles/hw_ofp.dir/flow_table.cpp.o.d"
  "CMakeFiles/hw_ofp.dir/match.cpp.o"
  "CMakeFiles/hw_ofp.dir/match.cpp.o.d"
  "CMakeFiles/hw_ofp.dir/messages.cpp.o"
  "CMakeFiles/hw_ofp.dir/messages.cpp.o.d"
  "libhw_ofp.a"
  "libhw_ofp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_ofp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
