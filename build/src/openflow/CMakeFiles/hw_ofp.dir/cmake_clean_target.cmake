file(REMOVE_RECURSE
  "libhw_ofp.a"
)
