
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/openflow/actions.cpp" "src/openflow/CMakeFiles/hw_ofp.dir/actions.cpp.o" "gcc" "src/openflow/CMakeFiles/hw_ofp.dir/actions.cpp.o.d"
  "/root/repo/src/openflow/channel.cpp" "src/openflow/CMakeFiles/hw_ofp.dir/channel.cpp.o" "gcc" "src/openflow/CMakeFiles/hw_ofp.dir/channel.cpp.o.d"
  "/root/repo/src/openflow/datapath.cpp" "src/openflow/CMakeFiles/hw_ofp.dir/datapath.cpp.o" "gcc" "src/openflow/CMakeFiles/hw_ofp.dir/datapath.cpp.o.d"
  "/root/repo/src/openflow/flow_table.cpp" "src/openflow/CMakeFiles/hw_ofp.dir/flow_table.cpp.o" "gcc" "src/openflow/CMakeFiles/hw_ofp.dir/flow_table.cpp.o.d"
  "/root/repo/src/openflow/match.cpp" "src/openflow/CMakeFiles/hw_ofp.dir/match.cpp.o" "gcc" "src/openflow/CMakeFiles/hw_ofp.dir/match.cpp.o.d"
  "/root/repo/src/openflow/messages.cpp" "src/openflow/CMakeFiles/hw_ofp.dir/messages.cpp.o" "gcc" "src/openflow/CMakeFiles/hw_ofp.dir/messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
