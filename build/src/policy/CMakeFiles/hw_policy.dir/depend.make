# Empty dependencies file for hw_policy.
# This may be replaced when dependencies are built.
