
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/compiler.cpp" "src/policy/CMakeFiles/hw_policy.dir/compiler.cpp.o" "gcc" "src/policy/CMakeFiles/hw_policy.dir/compiler.cpp.o.d"
  "/root/repo/src/policy/engine.cpp" "src/policy/CMakeFiles/hw_policy.dir/engine.cpp.o" "gcc" "src/policy/CMakeFiles/hw_policy.dir/engine.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/policy/CMakeFiles/hw_policy.dir/policy.cpp.o" "gcc" "src/policy/CMakeFiles/hw_policy.dir/policy.cpp.o.d"
  "/root/repo/src/policy/usb.cpp" "src/policy/CMakeFiles/hw_policy.dir/usb.cpp.o" "gcc" "src/policy/CMakeFiles/hw_policy.dir/usb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
