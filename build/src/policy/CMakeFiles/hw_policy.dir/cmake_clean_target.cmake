file(REMOVE_RECURSE
  "libhw_policy.a"
)
