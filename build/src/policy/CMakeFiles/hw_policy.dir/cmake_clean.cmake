file(REMOVE_RECURSE
  "CMakeFiles/hw_policy.dir/compiler.cpp.o"
  "CMakeFiles/hw_policy.dir/compiler.cpp.o.d"
  "CMakeFiles/hw_policy.dir/engine.cpp.o"
  "CMakeFiles/hw_policy.dir/engine.cpp.o.d"
  "CMakeFiles/hw_policy.dir/policy.cpp.o"
  "CMakeFiles/hw_policy.dir/policy.cpp.o.d"
  "CMakeFiles/hw_policy.dir/usb.cpp.o"
  "CMakeFiles/hw_policy.dir/usb.cpp.o.d"
  "libhw_policy.a"
  "libhw_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
