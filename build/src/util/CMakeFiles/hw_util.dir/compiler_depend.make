# Empty compiler generated dependencies file for hw_util.
# This may be replaced when dependencies are built.
