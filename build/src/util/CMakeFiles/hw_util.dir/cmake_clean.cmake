file(REMOVE_RECURSE
  "CMakeFiles/hw_util.dir/addr.cpp.o"
  "CMakeFiles/hw_util.dir/addr.cpp.o.d"
  "CMakeFiles/hw_util.dir/bytes.cpp.o"
  "CMakeFiles/hw_util.dir/bytes.cpp.o.d"
  "CMakeFiles/hw_util.dir/json.cpp.o"
  "CMakeFiles/hw_util.dir/json.cpp.o.d"
  "CMakeFiles/hw_util.dir/logging.cpp.o"
  "CMakeFiles/hw_util.dir/logging.cpp.o.d"
  "CMakeFiles/hw_util.dir/rand.cpp.o"
  "CMakeFiles/hw_util.dir/rand.cpp.o.d"
  "CMakeFiles/hw_util.dir/strings.cpp.o"
  "CMakeFiles/hw_util.dir/strings.cpp.o.d"
  "CMakeFiles/hw_util.dir/token_bucket.cpp.o"
  "CMakeFiles/hw_util.dir/token_bucket.cpp.o.d"
  "libhw_util.a"
  "libhw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
