file(REMOVE_RECURSE
  "libhw_util.a"
)
