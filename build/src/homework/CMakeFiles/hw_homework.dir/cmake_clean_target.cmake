file(REMOVE_RECURSE
  "libhw_homework.a"
)
