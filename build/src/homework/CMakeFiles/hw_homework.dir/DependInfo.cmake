
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/homework/control_api.cpp" "src/homework/CMakeFiles/hw_homework.dir/control_api.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/control_api.cpp.o.d"
  "/root/repo/src/homework/device_registry.cpp" "src/homework/CMakeFiles/hw_homework.dir/device_registry.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/device_registry.cpp.o.d"
  "/root/repo/src/homework/dhcp_server.cpp" "src/homework/CMakeFiles/hw_homework.dir/dhcp_server.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/dhcp_server.cpp.o.d"
  "/root/repo/src/homework/dns_proxy.cpp" "src/homework/CMakeFiles/hw_homework.dir/dns_proxy.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/dns_proxy.cpp.o.d"
  "/root/repo/src/homework/event_export.cpp" "src/homework/CMakeFiles/hw_homework.dir/event_export.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/event_export.cpp.o.d"
  "/root/repo/src/homework/forwarding.cpp" "src/homework/CMakeFiles/hw_homework.dir/forwarding.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/forwarding.cpp.o.d"
  "/root/repo/src/homework/http.cpp" "src/homework/CMakeFiles/hw_homework.dir/http.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/http.cpp.o.d"
  "/root/repo/src/homework/router.cpp" "src/homework/CMakeFiles/hw_homework.dir/router.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/router.cpp.o.d"
  "/root/repo/src/homework/upstream.cpp" "src/homework/CMakeFiles/hw_homework.dir/upstream.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/upstream.cpp.o.d"
  "/root/repo/src/homework/wireless_map.cpp" "src/homework/CMakeFiles/hw_homework.dir/wireless_map.cpp.o" "gcc" "src/homework/CMakeFiles/hw_homework.dir/wireless_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nox/CMakeFiles/hw_nox.dir/DependInfo.cmake"
  "/root/repo/build/src/hwdb/CMakeFiles/hw_hwdb.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/hw_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/hw_ofp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
