file(REMOVE_RECURSE
  "CMakeFiles/hw_homework.dir/control_api.cpp.o"
  "CMakeFiles/hw_homework.dir/control_api.cpp.o.d"
  "CMakeFiles/hw_homework.dir/device_registry.cpp.o"
  "CMakeFiles/hw_homework.dir/device_registry.cpp.o.d"
  "CMakeFiles/hw_homework.dir/dhcp_server.cpp.o"
  "CMakeFiles/hw_homework.dir/dhcp_server.cpp.o.d"
  "CMakeFiles/hw_homework.dir/dns_proxy.cpp.o"
  "CMakeFiles/hw_homework.dir/dns_proxy.cpp.o.d"
  "CMakeFiles/hw_homework.dir/event_export.cpp.o"
  "CMakeFiles/hw_homework.dir/event_export.cpp.o.d"
  "CMakeFiles/hw_homework.dir/forwarding.cpp.o"
  "CMakeFiles/hw_homework.dir/forwarding.cpp.o.d"
  "CMakeFiles/hw_homework.dir/http.cpp.o"
  "CMakeFiles/hw_homework.dir/http.cpp.o.d"
  "CMakeFiles/hw_homework.dir/router.cpp.o"
  "CMakeFiles/hw_homework.dir/router.cpp.o.d"
  "CMakeFiles/hw_homework.dir/upstream.cpp.o"
  "CMakeFiles/hw_homework.dir/upstream.cpp.o.d"
  "CMakeFiles/hw_homework.dir/wireless_map.cpp.o"
  "CMakeFiles/hw_homework.dir/wireless_map.cpp.o.d"
  "libhw_homework.a"
  "libhw_homework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_homework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
