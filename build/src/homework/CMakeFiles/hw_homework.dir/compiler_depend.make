# Empty compiler generated dependencies file for hw_homework.
# This may be replaced when dependencies are built.
