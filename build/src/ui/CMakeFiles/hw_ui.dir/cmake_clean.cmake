file(REMOVE_RECURSE
  "CMakeFiles/hw_ui.dir/artifact.cpp.o"
  "CMakeFiles/hw_ui.dir/artifact.cpp.o.d"
  "CMakeFiles/hw_ui.dir/bandwidth_monitor.cpp.o"
  "CMakeFiles/hw_ui.dir/bandwidth_monitor.cpp.o.d"
  "CMakeFiles/hw_ui.dir/control_board.cpp.o"
  "CMakeFiles/hw_ui.dir/control_board.cpp.o.d"
  "CMakeFiles/hw_ui.dir/policy_editor.cpp.o"
  "CMakeFiles/hw_ui.dir/policy_editor.cpp.o.d"
  "libhw_ui.a"
  "libhw_ui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_ui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
