# Empty compiler generated dependencies file for hw_ui.
# This may be replaced when dependencies are built.
