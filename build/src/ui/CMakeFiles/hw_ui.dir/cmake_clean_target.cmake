file(REMOVE_RECURSE
  "libhw_ui.a"
)
