file(REMOVE_RECURSE
  "CMakeFiles/hw_hwdb.dir/cql_parser.cpp.o"
  "CMakeFiles/hw_hwdb.dir/cql_parser.cpp.o.d"
  "CMakeFiles/hw_hwdb.dir/database.cpp.o"
  "CMakeFiles/hw_hwdb.dir/database.cpp.o.d"
  "CMakeFiles/hw_hwdb.dir/executor.cpp.o"
  "CMakeFiles/hw_hwdb.dir/executor.cpp.o.d"
  "CMakeFiles/hw_hwdb.dir/persist.cpp.o"
  "CMakeFiles/hw_hwdb.dir/persist.cpp.o.d"
  "CMakeFiles/hw_hwdb.dir/rpc_client.cpp.o"
  "CMakeFiles/hw_hwdb.dir/rpc_client.cpp.o.d"
  "CMakeFiles/hw_hwdb.dir/rpc_codec.cpp.o"
  "CMakeFiles/hw_hwdb.dir/rpc_codec.cpp.o.d"
  "CMakeFiles/hw_hwdb.dir/rpc_server.cpp.o"
  "CMakeFiles/hw_hwdb.dir/rpc_server.cpp.o.d"
  "CMakeFiles/hw_hwdb.dir/table.cpp.o"
  "CMakeFiles/hw_hwdb.dir/table.cpp.o.d"
  "CMakeFiles/hw_hwdb.dir/udp_transport.cpp.o"
  "CMakeFiles/hw_hwdb.dir/udp_transport.cpp.o.d"
  "CMakeFiles/hw_hwdb.dir/value.cpp.o"
  "CMakeFiles/hw_hwdb.dir/value.cpp.o.d"
  "libhw_hwdb.a"
  "libhw_hwdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_hwdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
