# Empty dependencies file for hw_hwdb.
# This may be replaced when dependencies are built.
