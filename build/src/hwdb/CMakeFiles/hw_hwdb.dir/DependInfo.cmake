
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwdb/cql_parser.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/cql_parser.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/cql_parser.cpp.o.d"
  "/root/repo/src/hwdb/database.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/database.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/database.cpp.o.d"
  "/root/repo/src/hwdb/executor.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/executor.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/executor.cpp.o.d"
  "/root/repo/src/hwdb/persist.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/persist.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/persist.cpp.o.d"
  "/root/repo/src/hwdb/rpc_client.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/rpc_client.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/rpc_client.cpp.o.d"
  "/root/repo/src/hwdb/rpc_codec.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/rpc_codec.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/rpc_codec.cpp.o.d"
  "/root/repo/src/hwdb/rpc_server.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/rpc_server.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/rpc_server.cpp.o.d"
  "/root/repo/src/hwdb/table.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/table.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/table.cpp.o.d"
  "/root/repo/src/hwdb/udp_transport.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/udp_transport.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/udp_transport.cpp.o.d"
  "/root/repo/src/hwdb/value.cpp" "src/hwdb/CMakeFiles/hw_hwdb.dir/value.cpp.o" "gcc" "src/hwdb/CMakeFiles/hw_hwdb.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hw_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
