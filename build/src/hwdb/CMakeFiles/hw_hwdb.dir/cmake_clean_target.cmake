file(REMOVE_RECURSE
  "libhw_hwdb.a"
)
