# CMake generated Testfile for 
# Source directory: /root/repo/src/hwdb
# Build directory: /root/repo/build/src/hwdb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
