file(REMOVE_RECURSE
  "CMakeFiles/hw_sim.dir/event_loop.cpp.o"
  "CMakeFiles/hw_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/hw_sim.dir/host.cpp.o"
  "CMakeFiles/hw_sim.dir/host.cpp.o.d"
  "CMakeFiles/hw_sim.dir/link.cpp.o"
  "CMakeFiles/hw_sim.dir/link.cpp.o.d"
  "CMakeFiles/hw_sim.dir/pcap.cpp.o"
  "CMakeFiles/hw_sim.dir/pcap.cpp.o.d"
  "CMakeFiles/hw_sim.dir/trace.cpp.o"
  "CMakeFiles/hw_sim.dir/trace.cpp.o.d"
  "CMakeFiles/hw_sim.dir/wireless.cpp.o"
  "CMakeFiles/hw_sim.dir/wireless.cpp.o.d"
  "libhw_sim.a"
  "libhw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
