file(REMOVE_RECURSE
  "CMakeFiles/ctrl_perf.dir/ctrl_perf.cpp.o"
  "CMakeFiles/ctrl_perf.dir/ctrl_perf.cpp.o.d"
  "ctrl_perf"
  "ctrl_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrl_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
