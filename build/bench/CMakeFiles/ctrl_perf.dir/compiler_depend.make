# Empty compiler generated dependencies file for ctrl_perf.
# This may be replaced when dependencies are built.
