# Empty compiler generated dependencies file for fig3_control.
# This may be replaced when dependencies are built.
