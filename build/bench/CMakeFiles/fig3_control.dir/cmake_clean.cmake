file(REMOVE_RECURSE
  "CMakeFiles/fig3_control.dir/fig3_control.cpp.o"
  "CMakeFiles/fig3_control.dir/fig3_control.cpp.o.d"
  "fig3_control"
  "fig3_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
