# Empty compiler generated dependencies file for fig2_artifact.
# This may be replaced when dependencies are built.
