file(REMOVE_RECURSE
  "CMakeFiles/fig2_artifact.dir/fig2_artifact.cpp.o"
  "CMakeFiles/fig2_artifact.dir/fig2_artifact.cpp.o.d"
  "fig2_artifact"
  "fig2_artifact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_artifact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
