# Empty compiler generated dependencies file for fig5_router.
# This may be replaced when dependencies are built.
