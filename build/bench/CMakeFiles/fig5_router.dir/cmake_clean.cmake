file(REMOVE_RECURSE
  "CMakeFiles/fig5_router.dir/fig5_router.cpp.o"
  "CMakeFiles/fig5_router.dir/fig5_router.cpp.o.d"
  "fig5_router"
  "fig5_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
