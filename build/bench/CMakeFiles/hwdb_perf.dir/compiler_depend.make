# Empty compiler generated dependencies file for hwdb_perf.
# This may be replaced when dependencies are built.
