file(REMOVE_RECURSE
  "CMakeFiles/hwdb_perf.dir/hwdb_perf.cpp.o"
  "CMakeFiles/hwdb_perf.dir/hwdb_perf.cpp.o.d"
  "hwdb_perf"
  "hwdb_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdb_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
