# Empty dependencies file for hwdb_perf.
# This may be replaced when dependencies are built.
