file(REMOVE_RECURSE
  "CMakeFiles/ofp_perf.dir/ofp_perf.cpp.o"
  "CMakeFiles/ofp_perf.dir/ofp_perf.cpp.o.d"
  "ofp_perf"
  "ofp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
