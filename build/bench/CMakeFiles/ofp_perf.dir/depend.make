# Empty dependencies file for ofp_perf.
# This may be replaced when dependencies are built.
