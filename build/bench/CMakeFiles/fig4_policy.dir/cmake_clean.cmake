file(REMOVE_RECURSE
  "CMakeFiles/fig4_policy.dir/fig4_policy.cpp.o"
  "CMakeFiles/fig4_policy.dir/fig4_policy.cpp.o.d"
  "fig4_policy"
  "fig4_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
