# Empty compiler generated dependencies file for fig4_policy.
# This may be replaced when dependencies are built.
