file(REMOVE_RECURSE
  "CMakeFiles/remote_display.dir/remote_display.cpp.o"
  "CMakeFiles/remote_display.dir/remote_display.cpp.o.d"
  "remote_display"
  "remote_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
