# Empty dependencies file for remote_display.
# This may be replaced when dependencies are built.
