file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_view.dir/bandwidth_view.cpp.o"
  "CMakeFiles/bandwidth_view.dir/bandwidth_view.cpp.o.d"
  "bandwidth_view"
  "bandwidth_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
