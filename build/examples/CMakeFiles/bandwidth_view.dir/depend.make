# Empty dependencies file for bandwidth_view.
# This may be replaced when dependencies are built.
