# Empty compiler generated dependencies file for parental_control.
# This may be replaced when dependencies are built.
