file(REMOVE_RECURSE
  "CMakeFiles/parental_control.dir/parental_control.cpp.o"
  "CMakeFiles/parental_control.dir/parental_control.cpp.o.d"
  "parental_control"
  "parental_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parental_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
