# Empty compiler generated dependencies file for router_shell.
# This may be replaced when dependencies are built.
