file(REMOVE_RECURSE
  "CMakeFiles/router_shell.dir/router_shell.cpp.o"
  "CMakeFiles/router_shell.dir/router_shell.cpp.o.d"
  "router_shell"
  "router_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
