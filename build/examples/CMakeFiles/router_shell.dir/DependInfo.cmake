
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/router_shell.cpp" "examples/CMakeFiles/router_shell.dir/router_shell.cpp.o" "gcc" "examples/CMakeFiles/router_shell.dir/router_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/hw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ui/CMakeFiles/hw_ui.dir/DependInfo.cmake"
  "/root/repo/build/src/homework/CMakeFiles/hw_homework.dir/DependInfo.cmake"
  "/root/repo/build/src/hwdb/CMakeFiles/hw_hwdb.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/hw_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/hw_ofp.dir/DependInfo.cmake"
  "/root/repo/build/src/nox/CMakeFiles/hw_nox.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
