file(REMOVE_RECURSE
  "CMakeFiles/device_admission.dir/device_admission.cpp.o"
  "CMakeFiles/device_admission.dir/device_admission.cpp.o.d"
  "device_admission"
  "device_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
