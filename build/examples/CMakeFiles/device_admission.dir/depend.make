# Empty dependencies file for device_admission.
# This may be replaced when dependencies are built.
