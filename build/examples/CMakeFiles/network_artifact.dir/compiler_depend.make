# Empty compiler generated dependencies file for network_artifact.
# This may be replaced when dependencies are built.
