file(REMOVE_RECURSE
  "CMakeFiles/network_artifact.dir/network_artifact.cpp.o"
  "CMakeFiles/network_artifact.dir/network_artifact.cpp.o.d"
  "network_artifact"
  "network_artifact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_artifact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
