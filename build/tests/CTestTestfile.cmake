# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ofp_match_test[1]_include.cmake")
include("/root/repo/build/tests/ofp_messages_test[1]_include.cmake")
include("/root/repo/build/tests/ofp_flow_table_test[1]_include.cmake")
include("/root/repo/build/tests/ofp_datapath_test[1]_include.cmake")
include("/root/repo/build/tests/nox_test[1]_include.cmake")
include("/root/repo/build/tests/hwdb_test[1]_include.cmake")
include("/root/repo/build/tests/hwdb_rpc_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/homework_dhcp_test[1]_include.cmake")
include("/root/repo/build/tests/homework_dns_test[1]_include.cmake")
include("/root/repo/build/tests/homework_forwarding_test[1]_include.cmake")
include("/root/repo/build/tests/homework_export_test[1]_include.cmake")
include("/root/repo/build/tests/homework_api_test[1]_include.cmake")
include("/root/repo/build/tests/ui_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/homework_upstream_test[1]_include.cmake")
