file(REMOVE_RECURSE
  "CMakeFiles/homework_api_test.dir/homework_api_test.cpp.o"
  "CMakeFiles/homework_api_test.dir/homework_api_test.cpp.o.d"
  "homework_api_test"
  "homework_api_test.pdb"
  "homework_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homework_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
