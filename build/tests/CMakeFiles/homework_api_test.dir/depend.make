# Empty dependencies file for homework_api_test.
# This may be replaced when dependencies are built.
