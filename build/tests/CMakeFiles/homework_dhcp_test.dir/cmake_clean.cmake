file(REMOVE_RECURSE
  "CMakeFiles/homework_dhcp_test.dir/homework_dhcp_test.cpp.o"
  "CMakeFiles/homework_dhcp_test.dir/homework_dhcp_test.cpp.o.d"
  "homework_dhcp_test"
  "homework_dhcp_test.pdb"
  "homework_dhcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homework_dhcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
