# Empty dependencies file for ofp_match_test.
# This may be replaced when dependencies are built.
