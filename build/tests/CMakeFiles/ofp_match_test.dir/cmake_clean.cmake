file(REMOVE_RECURSE
  "CMakeFiles/ofp_match_test.dir/ofp_match_test.cpp.o"
  "CMakeFiles/ofp_match_test.dir/ofp_match_test.cpp.o.d"
  "ofp_match_test"
  "ofp_match_test.pdb"
  "ofp_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofp_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
