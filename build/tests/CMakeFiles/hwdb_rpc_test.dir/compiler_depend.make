# Empty compiler generated dependencies file for hwdb_rpc_test.
# This may be replaced when dependencies are built.
