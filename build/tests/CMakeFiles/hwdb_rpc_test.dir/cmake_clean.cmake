file(REMOVE_RECURSE
  "CMakeFiles/hwdb_rpc_test.dir/hwdb_rpc_test.cpp.o"
  "CMakeFiles/hwdb_rpc_test.dir/hwdb_rpc_test.cpp.o.d"
  "hwdb_rpc_test"
  "hwdb_rpc_test.pdb"
  "hwdb_rpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdb_rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
