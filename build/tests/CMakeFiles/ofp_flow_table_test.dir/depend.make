# Empty dependencies file for ofp_flow_table_test.
# This may be replaced when dependencies are built.
