file(REMOVE_RECURSE
  "CMakeFiles/ofp_flow_table_test.dir/ofp_flow_table_test.cpp.o"
  "CMakeFiles/ofp_flow_table_test.dir/ofp_flow_table_test.cpp.o.d"
  "ofp_flow_table_test"
  "ofp_flow_table_test.pdb"
  "ofp_flow_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofp_flow_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
