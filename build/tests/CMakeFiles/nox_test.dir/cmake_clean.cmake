file(REMOVE_RECURSE
  "CMakeFiles/nox_test.dir/nox_test.cpp.o"
  "CMakeFiles/nox_test.dir/nox_test.cpp.o.d"
  "nox_test"
  "nox_test.pdb"
  "nox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
