# Empty compiler generated dependencies file for nox_test.
# This may be replaced when dependencies are built.
