file(REMOVE_RECURSE
  "CMakeFiles/homework_upstream_test.dir/homework_upstream_test.cpp.o"
  "CMakeFiles/homework_upstream_test.dir/homework_upstream_test.cpp.o.d"
  "homework_upstream_test"
  "homework_upstream_test.pdb"
  "homework_upstream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homework_upstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
