# Empty dependencies file for homework_upstream_test.
# This may be replaced when dependencies are built.
