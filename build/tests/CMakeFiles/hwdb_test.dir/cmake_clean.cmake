file(REMOVE_RECURSE
  "CMakeFiles/hwdb_test.dir/hwdb_test.cpp.o"
  "CMakeFiles/hwdb_test.dir/hwdb_test.cpp.o.d"
  "hwdb_test"
  "hwdb_test.pdb"
  "hwdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
