# Empty dependencies file for hwdb_test.
# This may be replaced when dependencies are built.
