file(REMOVE_RECURSE
  "CMakeFiles/ofp_datapath_test.dir/ofp_datapath_test.cpp.o"
  "CMakeFiles/ofp_datapath_test.dir/ofp_datapath_test.cpp.o.d"
  "ofp_datapath_test"
  "ofp_datapath_test.pdb"
  "ofp_datapath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofp_datapath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
