# Empty compiler generated dependencies file for ofp_datapath_test.
# This may be replaced when dependencies are built.
