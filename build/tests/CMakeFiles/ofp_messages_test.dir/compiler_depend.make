# Empty compiler generated dependencies file for ofp_messages_test.
# This may be replaced when dependencies are built.
