file(REMOVE_RECURSE
  "CMakeFiles/ofp_messages_test.dir/ofp_messages_test.cpp.o"
  "CMakeFiles/ofp_messages_test.dir/ofp_messages_test.cpp.o.d"
  "ofp_messages_test"
  "ofp_messages_test.pdb"
  "ofp_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofp_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
