file(REMOVE_RECURSE
  "CMakeFiles/homework_dns_test.dir/homework_dns_test.cpp.o"
  "CMakeFiles/homework_dns_test.dir/homework_dns_test.cpp.o.d"
  "homework_dns_test"
  "homework_dns_test.pdb"
  "homework_dns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homework_dns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
