file(REMOVE_RECURSE
  "CMakeFiles/homework_export_test.dir/homework_export_test.cpp.o"
  "CMakeFiles/homework_export_test.dir/homework_export_test.cpp.o.d"
  "homework_export_test"
  "homework_export_test.pdb"
  "homework_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homework_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
