# Empty dependencies file for homework_export_test.
# This may be replaced when dependencies are built.
