file(REMOVE_RECURSE
  "CMakeFiles/homework_forwarding_test.dir/homework_forwarding_test.cpp.o"
  "CMakeFiles/homework_forwarding_test.dir/homework_forwarding_test.cpp.o.d"
  "homework_forwarding_test"
  "homework_forwarding_test.pdb"
  "homework_forwarding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homework_forwarding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
