# Empty dependencies file for homework_forwarding_test.
# This may be replaced when dependencies are built.
